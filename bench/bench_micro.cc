// Micro-benchmarks (google-benchmark): throughput of the core operators —
// uniform perturbation (record and count level), MLE reconstruction, SPS,
// group indexing, chi-squared generalization, and query evaluation.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/generalization.h"
#include "core/reconstruction_privacy.h"
#include "core/sps.h"
#include "datagen/adult.h"
#include "exp/experiment.h"
#include "perturb/mle.h"
#include "perturb/uniform_perturbation.h"
#include "query/evaluation.h"
#include "table/flat_group_index.h"
#include "table/group_index.h"

namespace {

using namespace recpriv;  // NOLINT

const table::Table& AdultTable() {
  static const table::Table* t = [] {
    Rng rng(2015);
    return new table::Table(
        *datagen::GenerateAdult({.num_records = 45222}, rng));
  }();
  return *t;
}

const exp::PreparedDataset& Prepared() {
  static const exp::PreparedDataset* ds = [] {
    return new exp::PreparedDataset(
        exp::PrepareAdult(45222, 1000, 2015).ValueOrDie());
  }();
  return *ds;
}

void BM_PerturbValue(benchmark::State& state) {
  Rng rng(1);
  const perturb::UniformPerturbation up{0.5, 50};
  uint32_t v = 7;
  for (auto _ : state) {
    v = perturb::PerturbValue(up, v, rng);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PerturbValue);

void BM_PerturbTable45K(benchmark::State& state) {
  Rng rng(2);
  const perturb::UniformPerturbation up{0.5, 2};
  for (auto _ : state) {
    auto out = perturb::PerturbTable(up, AdultTable(), rng);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * AdultTable().num_rows());
}
BENCHMARK(BM_PerturbTable45K);

void BM_PerturbCounts(benchmark::State& state) {
  Rng rng(3);
  const size_t m = size_t(state.range(0));
  const perturb::UniformPerturbation up{0.5, m};
  std::vector<uint64_t> counts(m, 1000);
  for (auto _ : state) {
    auto out = perturb::PerturbCounts(up, counts, rng);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * m * 1000);
}
BENCHMARK(BM_PerturbCounts)->Arg(2)->Arg(10)->Arg(50);

void BM_MleFrequencies(benchmark::State& state) {
  const size_t m = size_t(state.range(0));
  const perturb::UniformPerturbation up{0.5, m};
  std::vector<uint64_t> observed(m, 321);
  for (auto _ : state) {
    auto out = perturb::MleFrequencies(up, observed, 321 * m);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MleFrequencies)->Arg(2)->Arg(50);

void BM_GroupIndexBuild45K(benchmark::State& state) {
  for (auto _ : state) {
    auto idx = table::GroupIndex::Build(AdultTable());
    benchmark::DoNotOptimize(idx);
  }
  state.SetItemsProcessed(state.iterations() * AdultTable().num_rows());
}
BENCHMARK(BM_GroupIndexBuild45K);

// The columnar counterpart: packed-key radix build (see
// table/flat_group_index.h and bench_group_index for the full old-vs-new
// comparison).
void BM_FlatGroupIndexBuild45K(benchmark::State& state) {
  for (auto _ : state) {
    auto idx = table::FlatGroupIndex::Build(AdultTable());
    benchmark::DoNotOptimize(idx);
  }
  state.SetItemsProcessed(state.iterations() * AdultTable().num_rows());
}
BENCHMARK(BM_FlatGroupIndexBuild45K);

void BM_Generalization45K(benchmark::State& state) {
  for (auto _ : state) {
    auto plan = core::ComputeGeneralization(AdultTable());
    benchmark::DoNotOptimize(plan);
  }
  state.SetItemsProcessed(state.iterations() * AdultTable().num_rows());
}
BENCHMARK(BM_Generalization45K);

void BM_SpsTable45K(benchmark::State& state) {
  Rng rng(5);
  auto params = exp::DefaultParams(2);
  for (auto _ : state) {
    auto out = core::SpsPerturbTable(params, Prepared().generalized, rng);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          Prepared().generalized.num_rows());
}
BENCHMARK(BM_SpsTable45K);

void BM_SpsGroupCounts(benchmark::State& state) {
  Rng rng(6);
  auto params = exp::DefaultParams(2);
  std::vector<uint64_t> counts{8000, 2000};
  for (auto _ : state) {
    auto out = core::SpsPerturbGroupCounts(params, counts, rng);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SpsGroupCounts);

// The two halves of the query/evaluation hot-path fix: building the match
// list with a fresh vector per query (the old behavior) vs. reusing one
// scratch buffer across the pool via the batched MatchingGroupsInto entry
// point (what EvaluateRelativeError and the serving engine now do).
void BM_MatchingGroupsAllocPerQuery(benchmark::State& state) {
  const auto& ds = Prepared();
  for (auto _ : state) {
    size_t matched = 0;
    for (const auto& q : ds.pool) {
      std::vector<size_t> groups = ds.index.MatchingGroups(q.na_predicate);
      matched += groups.size();
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * ds.pool.size());
}
BENCHMARK(BM_MatchingGroupsAllocPerQuery);

void BM_MatchingGroupsScratchReuse(benchmark::State& state) {
  const auto& ds = Prepared();
  std::vector<size_t> scratch;
  for (auto _ : state) {
    size_t matched = 0;
    for (const auto& q : ds.pool) {
      ds.index.MatchingGroupsInto(q.na_predicate, scratch);
      matched += scratch.size();
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * ds.pool.size());
}
BENCHMARK(BM_MatchingGroupsScratchReuse);

void BM_QueryEvaluation1K(benchmark::State& state) {
  Rng rng(7);
  const auto& ds = Prepared();
  auto perturbed = *query::PerturbAllGroups(ds.flat_index, 0.5, rng);
  for (auto _ : state) {
    auto result =
        query::EvaluateRelativeError(ds.pool, ds.flat_index, perturbed, 0.5);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * ds.pool.size());
}
BENCHMARK(BM_QueryEvaluation1K);

void BM_MaxGroupSize(benchmark::State& state) {
  auto params = exp::DefaultParams(50);
  double f = 0.02;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::MaxGroupSize(params, f));
    f = f < 0.9 ? f + 1e-6 : 0.02;
  }
}
BENCHMARK(BM_MaxGroupSize);

}  // namespace
