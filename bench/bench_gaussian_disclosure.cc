// Extra study (paper §2, Corollary 1 generality): the NIR ratio attack
// works for ANY zero-mean fixed-variance noise. We repeat the Table-1 style
// experiment with the Gaussian mechanism alongside Laplace, matching the
// two mechanisms on noise variance so the comparison isolates the
// distribution shape.

#include <cmath>
#include <iostream>

#include "common/random.h"
#include "common/string_util.h"
#include "datagen/adult.h"
#include "dp/gaussian_mechanism.h"
#include "dp/laplace_mechanism.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "stats/ratio_estimator.h"
#include "table/predicate.h"

namespace {

using namespace recpriv;  // NOLINT

int Run() {
  exp::PrintBanner(std::cout,
                   "Gaussian vs Laplace: noise shape does not stop the NIR "
                   "ratio attack",
                   "EDBT'15 Corollary 1 (all zero-mean fixed-variance "
                   "noises)");

  Rng rng(2015);
  auto data = datagen::GenerateAdult({}, rng);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  auto q1 = *table::Predicate::FromBindings(
      *data->schema(), {{"Education", "Prof-school"},
                        {"Occupation", "Prof-specialty"},
                        {"Race", "White"},
                        {"Gender", "Male"}});
  auto q2 = q1;
  q2.Bind(4, *data->schema()->sensitive().domain.GetCode(">50K"));
  const double x = double(q1.CountMatches(*data));
  const double y = double(q2.CountMatches(*data));
  const double conf = y / x;
  std::cout << "target rule Conf = " << FormatDouble(conf, 4)
            << " (ans1 = " << x << ")\n\n";

  const size_t trials = exp::NumRuns(10) * 20;  // smooth the comparison
  exp::AsciiTable out({"noise scale (b)", "Laplace |Conf'-Conf|",
                       "Gaussian |Conf'-Conf| (same variance)",
                       "Lemma-1 predicted sd"});
  for (double b : {4.0, 20.0, 60.0, 200.0}) {
    auto laplace = *dp::LaplaceMechanism::FromScale(b);
    // Match variances: sigma^2 = 2 b^2.
    auto gaussian = *dp::GaussianMechanism::FromSigma(b * std::sqrt(2.0));
    double laplace_err = 0.0, gaussian_err = 0.0;
    for (size_t i = 0; i < trials; ++i) {
      laplace_err += std::abs(laplace.NoisyAnswer(y, rng) /
                                  laplace.NoisyAnswer(x, rng) -
                              conf);
      gaussian_err += std::abs(gaussian.NoisyAnswer(y, rng) /
                                   gaussian.NoisyAnswer(x, rng) -
                               conf);
    }
    stats::RatioMoments predicted =
        stats::ApproximateRatioMoments({x, y, laplace.variance()});
    out.AddRow({FormatDouble(b, 4),
                FormatDouble(laplace_err / double(trials), 4),
                FormatDouble(gaussian_err / double(trials), 4),
                FormatDouble(std::sqrt(predicted.variance), 4)});
  }
  out.Print(std::cout);
  std::cout << "\nreading: at equal variance the two mechanisms leak "
               "equally — the attack depends\nonly on the fixed noise "
               "scale, exactly as Corollary 1 states. Defenses must\n"
               "change the *data* mechanism (reconstruction privacy), not "
               "the noise shape.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
