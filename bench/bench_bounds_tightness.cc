// Extra study (paper §4.2 justification): how much tighter the Chernoff
// bound is than Markov's and Chebyshev's inequalities for the tail
// probabilities that the reconstruction-privacy test relies on — and what
// each bound would imply for the maximum group size s_g.
//
// The paper adopts Chernoff "as it gives exponential fall-off of
// probability with distance from the error"; this bench makes that
// quantitative, including the empirical tail as ground truth.

#include <cmath>
#include <iostream>

#include "common/random.h"
#include "common/string_util.h"
#include "core/reconstruction_privacy.h"
#include "exp/reporting.h"
#include "stats/chernoff.h"
#include "stats/tail_bounds.h"

namespace {

using namespace recpriv;  // NOLINT

int Run() {
  exp::PrintBanner(std::cout,
                   "Bound tightness: Markov vs Chebyshev vs Chernoff",
                   "EDBT'15 Section 4.2 (choice of the Chernoff bound)");

  // Tail probabilities at a typical reconstruction-privacy operating point:
  // a group of |S| records, f = 0.5, p = 0.5, m = 2 -> mu = |S| * 0.5.
  std::cout << "upper-tail bound on Pr[(X-mu)/mu > omega] at omega = 0.2:\n\n";
  exp::AsciiTable bounds({"mu", "Markov", "Chebyshev", "Chernoff",
                          "empirical (binomial MC)"});
  Rng rng(2015);
  const double omega = 0.2;
  for (double mu : {10.0, 50.0, 100.0, 500.0, 2000.0}) {
    // Empirical tail for Binomial(2 mu, 0.5) (a Poisson-trial sum with the
    // right mean).
    const uint64_t n = uint64_t(2 * mu);
    const int reps = 40000;
    int exceed = 0;
    for (int i = 0; i < reps; ++i) {
      double x = double(SampleBinomial(rng, n, 0.5));
      exceed += ((x - mu) / mu > omega);
    }
    auto c = stats::CompareTailBounds(omega, mu);
    bounds.AddRow({FormatDouble(mu, 4), FormatDouble(c.markov, 3),
                   FormatDouble(c.chebyshev, 3),
                   FormatDouble(c.chernoff_upper, 3),
                   FormatDouble(exceed / double(reps), 3)});
  }
  bounds.Print(std::cout);

  // What each bound implies for s_g: the privacy test needs the smallest
  // group size at which the bound drops below delta. Chebyshev's 1/(w^2 mu)
  // gives s ~ 1/(delta w^2 mu_per_record); Chernoff gives the Eq. (10)
  // logarithmic form. Markov never certifies (it is independent of mu).
  std::cout << "\nimplied maximum group size s_g at the paper defaults "
               "(f = 0.6, p = 0.5, m = 2,\nlambda = delta = 0.3):\n\n";
  core::PrivacyParams params;
  params.lambda = 0.3;
  params.delta = 0.3;
  params.retention_p = 0.5;
  params.domain_m = 2;
  const double f = 0.6;
  stats::GroupBoundParams g{1.0, f, params.retention_p, 2.0};
  const double w = stats::OmegaForLambda(g, params.lambda);
  const double mu_per_record = f * 0.5 + 0.25;
  const double chernoff_s = core::MaxGroupSize(params, f);
  // Chebyshev: delta <= 1/(w^2 mu) <=> |g| <= 1/(delta w^2 mu_per_record).
  const double chebyshev_s =
      1.0 / (params.delta * w * w * mu_per_record);
  exp::AsciiTable sg({"bound", "s_g", "vs Chernoff"});
  sg.AddRow({"Markov", "never certifies", "-"});
  sg.AddRow({"Chebyshev", FormatDouble(chebyshev_s, 5),
             FormatDouble(chebyshev_s / chernoff_s, 3) + "x"});
  sg.AddRow({"Chernoff (Eq. 10)", FormatDouble(chernoff_s, 5), "1x"});
  sg.Print(std::cout);
  std::cout << "\nreading: a looser bound inflates s_g, i.e. under-reports "
               "violations and\nunder-samples in SPS — the adversary (who "
               "may use the tighter bound) would\nstill reconstruct "
               "accurately. Using the tightest known bound is a safety\n"
               "requirement, not an optimization.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
