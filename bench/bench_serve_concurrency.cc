// Serving concurrency: aggregate throughput of the TCP front end
// (serve/server.h) vs. number of concurrent client connections, on the
// demo-scale release. Each client is a LineProtocolClient over its own
// TcpTransport issuing synchronous single-query round trips (the
// latency-bound regime a real analyst session lives in), so one connection
// leaves the server mostly idle and added connections should pipeline into
// real throughput.
//
// Gate (CI): with >= 4 hardware threads, 16 concurrent connections must
// deliver >= 4x the single-connection throughput. With 2-3 threads the
// parallel headroom shrinks, so the gate relaxes to >= 1.5x; on a single
// hardware thread every request is CPU-serialized whatever the connection
// count, so the ratio is reported but not gated.
//
// A second table reports batched round trips (8 queries per request) to
// show amortization of the per-line transport cost.

#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "client/in_process_client.h"
#include "client/tcp_transport.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"
#include "serve/server.h"
#include "testing_util.h"

namespace {

using namespace recpriv;  // NOLINT

/// The request rotation every client cycles through (all cache-warm after
/// the first pass, so the measurement isolates the serving stack, not the
/// count kernel).
std::vector<client::QueryRequest> RequestRotation(size_t queries_per_request) {
  const std::vector<client::QuerySpec> specs = {
      {{{"Job", "eng"}}, "flu"},
      {{{"Job", "law"}}, "hiv"},
      {{{"City", "north"}}, "bc"},
      {{{"Job", "eng"}, {"City", "south"}}, "flu"},
      {{}, "hiv"},
      {{{"City", "south"}}, "flu"},
      {{{"Job", "law"}, {"City", "north"}}, "bc"},
      {{{"City", "north"}}, "flu"},
  };
  std::vector<client::QueryRequest> rotation;
  for (size_t start = 0; start < specs.size(); ++start) {
    client::QueryRequest request;
    request.release = "demo";
    for (size_t k = 0; k < queries_per_request; ++k) {
      request.queries.push_back(specs[(start + k) % specs.size()]);
    }
    rotation.push_back(std::move(request));
  }
  return rotation;
}

struct Measurement {
  double seconds = 0.0;
  double qps = 0.0;      ///< queries per second, aggregate
  size_t failures = 0;
};

/// `connections` client threads issue `requests_per_client` synchronous
/// round trips each; returns aggregate queries/sec.
Measurement RunLoad(uint16_t port, size_t connections,
                    size_t requests_per_client, size_t queries_per_request) {
  const std::vector<client::QueryRequest> rotation =
      RequestRotation(queries_per_request);
  std::vector<std::unique_ptr<client::LineProtocolClient>> clients;
  clients.reserve(connections);
  Measurement m;
  for (size_t c = 0; c < connections; ++c) {
    auto client = client::ConnectTcp("127.0.0.1", port);
    if (!client.ok()) {
      ++m.failures;
      return m;
    }
    clients.push_back(std::move(*client));
  }

  std::vector<size_t> failures(connections, 0);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  WallTimer timer;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      client::LineProtocolClient& client = *clients[c];
      for (size_t i = 0; i < requests_per_client; ++i) {
        if (!client.Query(rotation[(c + i) % rotation.size()]).ok()) {
          ++failures[c];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  m.seconds = timer.Seconds();
  for (size_t f : failures) m.failures += f;
  const size_t total_queries =
      connections * requests_per_client * queries_per_request;
  m.qps = m.seconds > 0 ? double(total_queries) / m.seconds : 0.0;
  return m;
}

int Run() {
  exp::PrintBanner(std::cout,
                   "Serving concurrency: aggregate throughput vs concurrent "
                   "TCP connections",
                   "demo release, synchronous wire-v2 round trips per client");

  auto store = std::make_shared<serve::ReleaseStore>();
  auto engine = std::make_shared<serve::QueryEngine>(store);
  client::InProcessClient admin(engine);
  auto bundle = recpriv::testing::DemoBundle(
      recpriv::testing::HarnessSeed(2015), /*base_group_size=*/1000);
  auto desc = admin.PublishBundle("demo", std::move(bundle));
  if (!desc.ok()) {
    std::cerr << "publish: " << desc.status() << "\n";
    return 1;
  }

  serve::ServerOptions options;
  options.max_connections = 64;
  auto server = serve::Server::Start(engine, options);
  if (!server.ok()) {
    std::cerr << "server: " << server.status() << "\n";
    return 1;
  }
  const uint16_t port = (*server)->port();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "release: "
            << FormatWithCommas(int64_t(desc->num_records)) << " records, "
            << desc->num_groups << " groups; engine threads "
            << engine->pool().num_threads() << "; port " << port << "\n\n";

  // Warm the answer cache so every timed round trip is cache-hit serving.
  (void)RunLoad(port, 1, 16, 8);

  const size_t kRequestsTotal = 6000;
  exp::AsciiTable single({"connections", "req/s", "agg_q/s",
                          "scaling_vs_1conn"});
  double qps_1 = 0.0, qps_16 = 0.0;
  size_t failures = 0;
  for (size_t conns : {size_t(1), size_t(2), size_t(4), size_t(8),
                       size_t(16)}) {
    const Measurement m =
        RunLoad(port, conns, kRequestsTotal / conns, /*queries_per_request=*/1);
    failures += m.failures;
    if (conns == 1) qps_1 = m.qps;
    if (conns == 16) qps_16 = m.qps;
    single.AddRow({std::to_string(conns), FormatWithCommas(int64_t(m.qps)),
                   FormatWithCommas(int64_t(m.qps)),
                   qps_1 > 0 ? FormatDouble(m.qps / qps_1, 3) + "x" : "-"});
  }
  std::cout << "single-query round trips (" << kRequestsTotal
            << " requests total):\n";
  single.Print(std::cout);

  exp::AsciiTable batched({"connections", "agg_q/s"});
  for (size_t conns : {size_t(1), size_t(16)}) {
    const Measurement m = RunLoad(port, conns, (kRequestsTotal / 8) / conns,
                                  /*queries_per_request=*/8);
    failures += m.failures;
    batched.AddRow(
        {std::to_string(conns), FormatWithCommas(int64_t(m.qps))});
  }
  std::cout << "\nbatched round trips (8 queries per request):\n";
  batched.Print(std::cout);

  const client::TransportStats metrics = (*server)->Metrics();
  std::cout << "\ntransport: "
            << FormatWithCommas(int64_t(metrics.requests)) << " requests over "
            << metrics.connections_accepted << " connections, "
            << metrics.errors << " errors\n";
  (*server)->Stop();

  // --- verdicts --------------------------------------------------------
  if (failures > 0) {
    std::cout << "\n" << failures << " failed round trips  [FAIL]\n";
    return 1;
  }
  const double scaling = qps_1 > 0 ? qps_16 / qps_1 : 0.0;
  // 16 synchronous connections only turn into throughput if the hardware
  // can run server slices beside the 16 client threads. With >= 4 threads
  // the acceptance gate applies; with 2-3 a relaxed pipelining gate; a
  // single hardware thread has zero parallel headroom (every request is
  // CPU-serialized whatever the connection count), so the ratio is
  // reported but not gated.
  std::cout << "\n16-connection scaling vs single connection: "
            << FormatDouble(scaling, 3) << "x at " << hw
            << " hardware threads  ";
  if (hw >= 4) {
    std::cout << "(gate 4x)  [" << (scaling >= 4.0 ? "PASS" : "FAIL")
              << "]\n";
    return scaling >= 4.0 ? 0 : 1;
  }
  if (hw >= 2) {
    std::cout << "(reduced gate 1.5x)  ["
              << (scaling >= 1.5 ? "PASS" : "FAIL") << "]\n";
    return scaling >= 1.5 ? 0 : 1;
  }
  std::cout << "(single hardware thread: gate SKIPPED)  [PASS]\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
