// Serving concurrency: aggregate throughput of the TCP front end
// (serve/server.h) vs. number of concurrent client connections, on the
// demo-scale release. Each client is a LineProtocolClient over its own
// TcpTransport issuing synchronous single-query round trips (the
// latency-bound regime a real analyst session lives in), so one connection
// leaves the server mostly idle and added connections should pipeline into
// real throughput.
//
// Gate (CI): with >= 4 hardware threads, 16 concurrent connections must
// deliver >= 4x the single-connection throughput. With 2-3 threads the
// parallel headroom shrinks, so the gate relaxes to >= 1.5x; on a single
// hardware thread every request is CPU-serialized whatever the connection
// count, so the ratio is reported but not gated.
//
// A second table reports batched round trips (8 queries per request) to
// show amortization of the per-line transport cost.
//
// A third table measures wire throughput on the byte-heavy path — full
// snapshot transfers via chunked fetch_snapshot — once over JSON lines
// (base64 payloads) and once over negotiated binary frames (raw
// attachments, no base64, no JSON string escaping). Every reassembled
// image is compared byte-for-byte against the serialized reference, so
// the two framings are proven bit-identical before any ratio is reported.
// --frame-gate additionally requires binary >= 2x JSON at 16 connections
// (the PR 9 tentpole claim; CI applies it on main only).

#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "client/in_process_client.h"
#include "client/tcp_transport.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "repl/snapshot_provider.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "store/snapshot_writer.h"
#include "testing_util.h"

namespace {

using namespace recpriv;  // NOLINT

/// The request rotation every client cycles through (all cache-warm after
/// the first pass, so the measurement isolates the serving stack, not the
/// count kernel).
std::vector<client::QueryRequest> RequestRotation(size_t queries_per_request) {
  const std::vector<client::QuerySpec> specs = {
      {{{"Job", "eng"}}, "flu"},
      {{{"Job", "law"}}, "hiv"},
      {{{"City", "north"}}, "bc"},
      {{{"Job", "eng"}, {"City", "south"}}, "flu"},
      {{}, "hiv"},
      {{{"City", "south"}}, "flu"},
      {{{"Job", "law"}, {"City", "north"}}, "bc"},
      {{{"City", "north"}}, "flu"},
  };
  std::vector<client::QueryRequest> rotation;
  for (size_t start = 0; start < specs.size(); ++start) {
    client::QueryRequest request;
    request.release = "demo";
    for (size_t k = 0; k < queries_per_request; ++k) {
      request.queries.push_back(specs[(start + k) % specs.size()]);
    }
    rotation.push_back(std::move(request));
  }
  return rotation;
}

struct Measurement {
  double seconds = 0.0;
  double qps = 0.0;      ///< queries per second, aggregate
  size_t failures = 0;
};

/// `connections` client threads issue `requests_per_client` synchronous
/// round trips each; returns aggregate queries/sec.
Measurement RunLoad(uint16_t port, size_t connections,
                    size_t requests_per_client, size_t queries_per_request) {
  const std::vector<client::QueryRequest> rotation =
      RequestRotation(queries_per_request);
  std::vector<std::unique_ptr<client::LineProtocolClient>> clients;
  clients.reserve(connections);
  Measurement m;
  for (size_t c = 0; c < connections; ++c) {
    auto client = client::ConnectTcp("127.0.0.1", port);
    if (!client.ok()) {
      ++m.failures;
      return m;
    }
    clients.push_back(std::move(*client));
  }

  std::vector<size_t> failures(connections, 0);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  WallTimer timer;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      client::LineProtocolClient& client = *clients[c];
      for (size_t i = 0; i < requests_per_client; ++i) {
        if (!client.Query(rotation[(c + i) % rotation.size()]).ok()) {
          ++failures[c];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  m.seconds = timer.Seconds();
  for (size_t f : failures) m.failures += f;
  const size_t total_queries =
      connections * requests_per_client * queries_per_request;
  m.qps = m.seconds > 0 ? double(total_queries) / m.seconds : 0.0;
  return m;
}

struct WireMeasurement {
  double seconds = 0.0;
  double bytes_per_sec = 0.0;  ///< aggregate payload bytes per second
  size_t failures = 0;
  bool identical = true;  ///< every reassembled image matched the reference
};

/// `connections` client threads each fetch the full snapshot image
/// `fetches_per_client` times via chunked fetch_snapshot; `binary` selects
/// negotiated binary frames vs default JSON lines. Aggregate image bytes
/// per second, with every reassembly checked against `reference`.
WireMeasurement RunSnapshotLoad(uint16_t port, size_t connections,
                                size_t fetches_per_client, bool binary,
                                const std::vector<uint8_t>& reference) {
  WireMeasurement m;
  std::vector<std::unique_ptr<client::LineProtocolClient>> clients;
  clients.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    auto client = client::ConnectTcp("127.0.0.1", port);
    if (!client.ok()) {
      ++m.failures;
      return m;
    }
    if (binary) {
      auto negotiated = (*client)->NegotiateBinaryFrame();
      if (!negotiated.ok() || !*negotiated) {
        ++m.failures;
        return m;
      }
    }
    clients.push_back(std::move(*client));
  }

  std::vector<size_t> failures(connections, 0);
  std::vector<uint8_t> mismatched(connections, 0);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  WallTimer timer;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      client::LineProtocolClient& client = *clients[c];
      std::vector<uint8_t> image;
      for (size_t i = 0; i < fetches_per_client; ++i) {
        image.clear();
        image.reserve(reference.size());
        uint64_t offset = 0;
        for (;;) {
          auto chunk = client.FetchSnapshotChunk(
              "demo", 1, offset, serve::kDefaultFetchChunkBytes);
          if (!chunk.ok()) {
            ++failures[c];
            return;
          }
          image.insert(image.end(), chunk->data.begin(), chunk->data.end());
          offset += chunk->data.size();
          if (chunk->eof) break;
        }
        if (image != reference) mismatched[c] = 1;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  m.seconds = timer.Seconds();
  for (size_t f : failures) m.failures += f;
  for (uint8_t bad : mismatched) {
    if (bad != 0) m.identical = false;
  }
  const double total_bytes = double(connections) *
                             double(fetches_per_client) *
                             double(reference.size());
  m.bytes_per_sec = m.seconds > 0 ? total_bytes / m.seconds : 0.0;
  return m;
}

int Run(bool frame_gate) {
  exp::PrintBanner(std::cout,
                   "Serving concurrency: aggregate throughput vs concurrent "
                   "TCP connections",
                   "demo release, synchronous wire-v2 round trips per client");

  auto store = std::make_shared<serve::ReleaseStore>();
  auto engine = std::make_shared<serve::QueryEngine>(store);
  client::InProcessClient admin(engine);
  auto bundle = recpriv::testing::DemoBundle(
      recpriv::testing::HarnessSeed(2015), /*base_group_size=*/1000);
  auto desc = admin.PublishBundle("demo", std::move(bundle));
  if (!desc.ok()) {
    std::cerr << "publish: " << desc.status() << "\n";
    return 1;
  }

  repl::SnapshotProvider provider(*store);
  serve::ServerOptions options;
  options.max_connections = 64;
  options.snapshot_provider = &provider;
  auto server = serve::Server::Start(engine, options);
  if (!server.ok()) {
    std::cerr << "server: " << server.status() << "\n";
    return 1;
  }
  const uint16_t port = (*server)->port();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "release: "
            << FormatWithCommas(int64_t(desc->num_records)) << " records, "
            << desc->num_groups << " groups; engine threads "
            << engine->pool().num_threads() << "; port " << port << "\n\n";

  // Warm the answer cache so every timed round trip is cache-hit serving.
  (void)RunLoad(port, 1, 16, 8);

  const size_t kRequestsTotal = 6000;
  exp::AsciiTable single({"connections", "req/s", "agg_q/s",
                          "scaling_vs_1conn"});
  double qps_1 = 0.0, qps_16 = 0.0;
  size_t failures = 0;
  for (size_t conns : {size_t(1), size_t(2), size_t(4), size_t(8),
                       size_t(16)}) {
    const Measurement m =
        RunLoad(port, conns, kRequestsTotal / conns, /*queries_per_request=*/1);
    failures += m.failures;
    if (conns == 1) qps_1 = m.qps;
    if (conns == 16) qps_16 = m.qps;
    single.AddRow({std::to_string(conns), FormatWithCommas(int64_t(m.qps)),
                   FormatWithCommas(int64_t(m.qps)),
                   qps_1 > 0 ? FormatDouble(m.qps / qps_1, 3) + "x" : "-"});
  }
  std::cout << "single-query round trips (" << kRequestsTotal
            << " requests total):\n";
  single.Print(std::cout);

  exp::AsciiTable batched({"connections", "agg_q/s"});
  for (size_t conns : {size_t(1), size_t(16)}) {
    const Measurement m = RunLoad(port, conns, (kRequestsTotal / 8) / conns,
                                  /*queries_per_request=*/8);
    failures += m.failures;
    batched.AddRow(
        {std::to_string(conns), FormatWithCommas(int64_t(m.qps))});
  }
  std::cout << "\nbatched round trips (8 queries per request):\n";
  batched.Print(std::cout);

  // --- wire framing: snapshot transfer over JSON lines vs binary frames ---
  auto snap = store->Get("demo");
  if (!snap.ok()) {
    std::cerr << "snapshot: " << snap.status() << "\n";
    return 1;
  }
  auto reference = store::SerializeSnapshot(**snap, "demo");
  if (!reference.ok()) {
    std::cerr << "serialize: " << reference.status() << "\n";
    return 1;
  }
  // Enough traffic per arm for a stable ratio: ~48 MB of image bytes
  // across the fleet, however large the demo image came out.
  const size_t total_target = size_t(48) << 20;
  bool frames_identical = true;
  double json_bps_16 = 0.0, binary_bps_16 = 0.0;
  exp::AsciiTable frames({"framing", "connections", "MB/s", "vs_json"});
  for (size_t conns : {size_t(1), size_t(16)}) {
    const size_t fetches =
        std::max(size_t(1), total_target / (reference->size() * conns));
    double json_bps = 0.0;
    for (const bool binary : {false, true}) {
      const WireMeasurement m =
          RunSnapshotLoad(port, conns, fetches, binary, *reference);
      failures += m.failures;
      frames_identical = frames_identical && m.identical;
      if (!binary) json_bps = m.bytes_per_sec;
      if (conns == 16 && !binary) json_bps_16 = m.bytes_per_sec;
      if (conns == 16 && binary) binary_bps_16 = m.bytes_per_sec;
      frames.AddRow({binary ? "binary" : "json", std::to_string(conns),
                     FormatWithCommas(int64_t(m.bytes_per_sec / (1 << 20))),
                     binary && json_bps > 0
                         ? FormatDouble(m.bytes_per_sec / json_bps, 2) + "x"
                         : "-"});
    }
  }
  std::cout << "\nsnapshot wire throughput ("
            << FormatWithCommas(int64_t(reference->size()))
            << "-byte image, chunked fetch_snapshot):\n";
  frames.Print(std::cout);

  const client::TransportStats metrics = (*server)->Metrics();
  std::cout << "\ntransport: "
            << FormatWithCommas(int64_t(metrics.requests)) << " requests over "
            << metrics.connections_accepted << " connections, "
            << metrics.errors << " errors\n";
  (*server)->Stop();

  // --- verdicts --------------------------------------------------------
  if (failures > 0) {
    std::cout << "\n" << failures << " failed round trips  [FAIL]\n";
    return 1;
  }
  if (!frames_identical) {
    std::cout << "\nbinary-framed snapshot bytes differ from the JSON "
                 "session's  [FAIL]\n";
    return 1;
  }
  const double frame_ratio =
      json_bps_16 > 0 ? binary_bps_16 / json_bps_16 : 0.0;
  std::cout << "\nbinary vs json wire throughput at 16 connections: "
            << FormatDouble(frame_ratio, 2) << "x (images bit-identical)  ";
  if (frame_gate) {
    std::cout << "(gate 2x)  [" << (frame_ratio >= 2.0 ? "PASS" : "FAIL")
              << "]\n";
    if (frame_ratio < 2.0) return 1;
  } else {
    std::cout << "(gate off; --frame-gate enables the 2x check)\n";
  }
  const double scaling = qps_1 > 0 ? qps_16 / qps_1 : 0.0;
  // 16 synchronous connections only turn into throughput if the hardware
  // can run server slices beside the 16 client threads. With >= 4 threads
  // the acceptance gate applies; with 2-3 a relaxed pipelining gate; a
  // single hardware thread has zero parallel headroom (every request is
  // CPU-serialized whatever the connection count), so the ratio is
  // reported but not gated.
  std::cout << "\n16-connection scaling vs single connection: "
            << FormatDouble(scaling, 3) << "x at " << hw
            << " hardware threads  ";
  if (hw >= 4) {
    std::cout << "(gate 4x)  [" << (scaling >= 4.0 ? "PASS" : "FAIL")
              << "]\n";
    return scaling >= 4.0 ? 0 : 1;
  }
  if (hw >= 2) {
    std::cout << "(reduced gate 1.5x)  ["
              << (scaling >= 1.5 ? "PASS" : "FAIL") << "]\n";
    return scaling >= 1.5 ? 0 : 1;
  }
  std::cout << "(single hardware thread: gate SKIPPED)  [PASS]\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = recpriv::FlagSet::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 2;
  }
  return Run(*flags->GetBool("frame-gate", false));
}
