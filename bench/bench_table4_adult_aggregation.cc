// Reproduces Table 4 (paper §6.1): the impact of the chi-squared NA-value
// aggregation (§3.4) on ADULT — per-attribute domain sizes before/after,
// the number of personal groups |G|, and the average group size |D|/|G|.
//
// Paper values: 16/14/5/2 -> 7/4/2/2, |G| 2240 -> 112, |D|/|G| 20 -> 404.

#include <iostream>

#include "common/string_util.h"
#include "core/generalization.h"
#include "datagen/adult.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "table/group_index.h"

namespace {

using namespace recpriv;  // NOLINT

int Run() {
  exp::PrintBanner(std::cout, "Table 4: NA aggregation impact on ADULT",
                   "EDBT'15 Table 4");

  auto ds = exp::PrepareAdult(45222, /*pool_size=*/0, /*seed=*/2015);
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }

  exp::AsciiTable out({"", "Education", "Occupation", "Race", "Gender", "|G|",
                       "|D|/|G|"});
  auto domain_row = [&](const std::string& label, bool after) {
    std::vector<std::string> row{label};
    for (size_t a = 0; a < 4; ++a) {
      const auto& merge = ds->plan.merges[a];
      row.push_back(std::to_string(after ? merge.domain_after
                                         : merge.domain_before));
    }
    const table::GroupIndex& idx = after ? ds->index : ds->raw_index;
    row.push_back(std::to_string(idx.num_groups()));
    row.push_back(FormatDouble(idx.AverageGroupSize(), 4));
    out.AddRow(std::move(row));
  };
  domain_row("Before Aggregation", false);
  domain_row("After Aggregation", true);
  out.Print(std::cout);

  std::cout << "\npaper: 16/14/5/2 -> 7/4/2/2, |G| 2240 -> 112, avg 20 -> "
               "404\n(|G| before aggregation depends on the empirical joint "
               "distribution; the\nsynthetic generator reproduces the "
               "post-aggregation class structure).\n";

  std::cout << "\ngeneralized values:\n";
  for (size_t a = 0; a < 4; ++a) {
    std::cout << "  " << ds->raw.schema()->attribute(a).name << ":\n";
    for (const auto& name : ds->plan.merges[a].merged_names) {
      std::cout << "    [" << name << "]\n";
    }
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
