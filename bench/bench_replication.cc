// Replication fleet bench: one publisher, two followers (src/repl), on the
// CENSUS release the paper's experiments run at.
//
//   publisher        a ReleaseStore + QueryEngine + TCP server with the
//                    replication ops enabled, publishing CENSUS epochs;
//   follower-clean   a Replicator over a loopback TCP link;
//   follower-faulty  the same, but every byte crosses a fault injector
//                    (drops, disconnects, mid-line truncation) — the
//                    regime replication exists to survive.
//
// Gates (CI):
//   bit-identical    every follower answer is verified by the workload
//                    oracle against the PRIMARY's registered snapshots,
//                    and fingerprints match the primary's own answers;
//   convergence      after a publish, the clean follower serves the new
//                    epoch within 500 ms at CENSUS 300k (the fault-injected
//                    follower must also converge, with no time bound — its
//                    schedule is probabilistic — but answer-clean and with
//                    zero digest mismatches).
//
// --quick shrinks CENSUS to 8k rows and skips the latency gate (the
// correctness gates always apply). Results go to BENCH_replication.json.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "client/in_process_client.h"
#include "common/flags.h"
#include "common/json.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/sps.h"
#include "datagen/census.h"
#include "exp/reporting.h"
#include "net/fault_injector.h"
#include "repl/replicator.h"
#include "repl/snapshot_provider.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"
#include "serve/server.h"
#include "testing_util.h"
#include "workload/oracle.h"

namespace {

namespace fs = std::filesystem;
using namespace recpriv;  // NOLINT
using recpriv::client::QueryRequest;
using recpriv::client::QuerySpec;

constexpr const char* kRelease = "census";

/// A follower: durable store + engine over it + the Replicator.
struct Follower {
  std::shared_ptr<serve::ReleaseStore> store;
  std::shared_ptr<serve::QueryEngine> engine;
  std::unique_ptr<repl::Replicator> replicator;
  std::string dir;
};

Result<Follower> StartFollower(const std::string& name, uint16_t primary_port,
                               repl::ReplicatorOptions repl_options) {
  Follower f;
  // tmpfs when the host has it: the gate measures replication, and sharing
  // a disk writeback queue with whatever else the machine is doing would
  // put hundreds of ms of noise on the persist-before-install step.
  const fs::path base = fs::is_directory("/dev/shm")
                            ? fs::path("/dev/shm")
                            : fs::temp_directory_path();
  f.dir = (base / ("recpriv_bench_repl_" + name)).string();
  fs::remove_all(f.dir);
  fs::create_directories(f.dir);
  serve::ReleaseStore::Options store_options;
  store_options.snapshot_dir = f.dir;
  f.store = std::make_shared<serve::ReleaseStore>(store_options);
  RECPRIV_RETURN_NOT_OK(f.store->RecoverFromDir());
  serve::QueryEngineOptions engine_options;
  engine_options.num_threads = 2;
  f.engine = std::make_shared<serve::QueryEngine>(f.store, engine_options);
  repl_options.primary_port = primary_port;
  RECPRIV_ASSIGN_OR_RETURN(f.replicator,
                           repl::Replicator::Start(*f.store, repl_options));
  return f;
}

/// Deterministic census query mix: a full-table count, one single-predicate
/// query per public attribute, and a couple of multi-predicate queries —
/// every value string read straight out of the snapshot's own schema.
std::vector<QuerySpec> CensusQueries(const table::Schema& schema) {
  std::vector<QuerySpec> specs;
  const std::string sa0 = schema.sensitive().domain.value(0);
  const std::string sa1 =
      schema.sensitive().domain.value(schema.sa_domain_size() / 2);
  specs.push_back(QuerySpec{{}, sa0});
  for (size_t a : schema.public_indices()) {
    const table::Attribute& attr = schema.attribute(a);
    specs.push_back(QuerySpec{
        {{attr.name, attr.domain.value(uint32_t(attr.domain.size() / 2))}},
        sa1});
  }
  const auto pub = schema.public_indices();
  if (pub.size() >= 2) {
    const table::Attribute& a0 = schema.attribute(pub[0]);
    const table::Attribute& a1 = schema.attribute(pub[1]);
    specs.push_back(QuerySpec{{{a0.name, a0.domain.value(0)},
                               {a1.name, a1.domain.value(0)}},
                              sa0});
  }
  return specs;
}

int Run(int argc, char** argv) {
  auto flags = FlagSet::Parse(argc, argv, {"quick"});
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 2;
  }
  const bool quick = *flags->GetBool("quick", false);
  const std::string out_path =
      flags->GetString("out", "BENCH_replication.json");
  const size_t rows = size_t(
      *flags->GetInt("rows", quick ? 8000 : 300000));
  const int sync_timeout_ms = quick ? 30000 : 120000;

  exp::PrintBanner(std::cout,
                   "Replication: publisher + 2 followers, bit-identical "
                   "answers and bounded convergence",
                   quick ? "quick smoke size (latency gate skipped)"
                         : "CENSUS 300k over loopback TCP");

  // --- the release under replication ---------------------------------------
  Rng rng(recpriv::testing::HarnessSeed(20150315));
  auto raw = datagen::GenerateCensus({.num_records = rows}, rng);
  if (!raw.ok()) {
    std::cerr << raw.status() << "\n";
    return 1;
  }
  core::PrivacyParams params;
  params.lambda = 0.3;
  params.delta = 0.3;
  params.retention_p = 0.5;
  params.domain_m = raw->schema()->sa_domain_size();
  auto sps = core::SpsPerturbTable(params, *raw, rng);
  if (!sps.ok()) {
    std::cerr << sps.status() << "\n";
    return 1;
  }
  const std::string sensitive = sps->table.schema()->sensitive().name;
  analysis::ReleaseBundle bundle{std::move(sps->table), params, sensitive,
                                 {}};

  // --- publisher ------------------------------------------------------------
  auto store = std::make_shared<serve::ReleaseStore>();
  serve::QueryEngineOptions engine_options;
  engine_options.num_threads = 2;
  auto engine = std::make_shared<serve::QueryEngine>(store, engine_options);
  repl::SnapshotProvider provider(*store);
  serve::ServerOptions server_options;
  server_options.snapshot_provider = &provider;
  auto server = serve::Server::Start(engine, server_options);
  if (!server.ok()) {
    std::cerr << server.status() << "\n";
    return 1;
  }
  client::InProcessClient admin(engine);
  if (auto d = admin.PublishBundle(kRelease, bundle); !d.ok()) {
    std::cerr << d.status() << "\n";
    return 1;
  }

  // --- the fleet ------------------------------------------------------------
  repl::ReplicatorOptions clean_options;
  clean_options.retry.initial_backoff_ms = 1;
  clean_options.retry.max_backoff_ms = 50;
  clean_options.idle_poll_ms = 10;  // event-to-fetch latency under test
  auto clean = StartFollower("clean", (*server)->port(), clean_options);
  if (!clean.ok()) {
    std::cerr << clean.status() << "\n";
    return 1;
  }

  net::FaultOptions fault_options;
  fault_options.seed = recpriv::testing::HarnessSeed(2015);
  fault_options.drop_rate = 0.02;
  fault_options.disconnect_rate = 0.02;
  fault_options.truncate_rate = 0.02;
  repl::ReplicatorOptions faulty_options = clean_options;
  faulty_options.chunk_bytes = 64 * 1024;  // more lines, more fault exposure
  faulty_options.fault_injector =
      std::make_shared<net::FaultInjector>(fault_options);
  auto faulty = StartFollower("faulty", (*server)->port(), faulty_options);
  if (!faulty.ok()) {
    std::cerr << faulty.status() << "\n";
    return 1;
  }

  // --- initial sync, then the timed publish --------------------------------
  if (!clean->replicator->WaitForEpoch(kRelease, 1, sync_timeout_ms) ||
      !faulty->replicator->WaitForEpoch(kRelease, 1, sync_timeout_ms)) {
    std::cerr << "followers failed to sync epoch 1 within "
              << sync_timeout_ms << " ms\n";
    return 1;
  }

  // Convergence is measured from the moment the new epoch is visible on
  // the primary (PublishBundle returned): replication lag is the window in
  // which a follower serves older data than the primary, and the
  // publisher's own index build is not part of that window.
  if (auto d = admin.PublishBundle(kRelease, bundle); !d.ok()) {
    std::cerr << d.status() << "\n";
    return 1;
  }
  WallTimer publish_timer;
  if (!clean->replicator->WaitForEpoch(kRelease, 2, sync_timeout_ms)) {
    std::cerr << "clean follower failed to converge on epoch 2\n";
    return 1;
  }
  const double clean_convergence_ms = publish_timer.Millis();
  if (!faulty->replicator->WaitForEpoch(kRelease, 2, sync_timeout_ms)) {
    std::cerr << "fault-injected follower failed to converge on epoch 2\n";
    return 1;
  }
  const double faulty_convergence_ms = publish_timer.Millis();

  // --- oracle verification: followers must answer bit-identically ----------
  workload::Oracle oracle;
  for (uint64_t epoch = 1; epoch <= 2; ++epoch) {
    auto snap = store->Get(kRelease, epoch);
    if (!snap.ok()) {
      std::cerr << snap.status() << "\n";
      return 1;
    }
    oracle.Register(kRelease, *snap);
  }
  auto primary_snap = store->Get(kRelease);
  if (!primary_snap.ok()) {
    std::cerr << primary_snap.status() << "\n";
    return 1;
  }
  const std::vector<QuerySpec> specs =
      CensusQueries(*(*primary_snap)->bundle.data.schema());

  client::InProcessClient clean_reader(clean->engine);
  client::InProcessClient faulty_reader(faulty->engine);
  size_t verified = 0, mismatches = 0;
  bool answers_identical = true;
  for (uint64_t epoch = 1; epoch <= 2; ++epoch) {
    QueryRequest request;
    request.release = kRelease;
    request.epoch = epoch;
    request.queries = specs;
    auto want = admin.Query(request);
    auto got_clean = clean_reader.Query(request);
    auto got_faulty = faulty_reader.Query(request);
    if (!want.ok() || !got_clean.ok() || !got_faulty.ok()) {
      std::cerr << "query failed at epoch " << epoch << "\n";
      return 1;
    }
    for (const auto* answer : {&*got_clean, &*got_faulty}) {
      std::string detail;
      if (oracle.Verify(kRelease, specs, *answer, &detail) ==
          workload::Oracle::Verdict::kVerified) {
        ++verified;
      } else {
        ++mismatches;
        std::cerr << "oracle mismatch at epoch " << epoch << ": " << detail
                  << "\n";
      }
    }
    const std::string want_fp = recpriv::testing::AnswerFingerprint(*want);
    if (recpriv::testing::AnswerFingerprint(*got_clean) != want_fp ||
        recpriv::testing::AnswerFingerprint(*got_faulty) != want_fp) {
      answers_identical = false;
    }
  }

  const client::ReplicationStats clean_stats = clean->replicator->Stats();
  const client::ReplicationStats faulty_stats = faulty->replicator->Stats();

  exp::AsciiTable table({"follower", "installs", "bytes fetched",
                         "reconnects", "digest mismatches",
                         "convergence ms"});
  table.AddRow({"clean", std::to_string(clean_stats.installs),
                FormatWithCommas(int64_t(clean_stats.bytes_fetched)),
                std::to_string(clean_stats.reconnects),
                std::to_string(clean_stats.digest_mismatches),
                FormatDouble(clean_convergence_ms, 4)});
  table.AddRow({"fault-injected", std::to_string(faulty_stats.installs),
                FormatWithCommas(int64_t(faulty_stats.bytes_fetched)),
                std::to_string(faulty_stats.reconnects),
                std::to_string(faulty_stats.digest_mismatches),
                FormatDouble(faulty_convergence_ms, 4)});
  table.Print(std::cout);

  const bool identical_ok = mismatches == 0 && answers_identical &&
                            verified == 4;
  const bool faulty_clean_ok = faulty_stats.digest_mismatches == 0;
  const bool gate_latency = !quick;
  const bool latency_ok = !gate_latency || clean_convergence_ms <= 500.0;

  std::cout << "\nbit-identical follower answers (oracle-verified): "
            << (identical_ok ? "PASS" : "FAIL") << "\n";
  std::cout << "fault-injected follower answer-clean (0 digest mismatches, "
            << faulty_stats.reconnects << " reconnects): "
            << (faulty_clean_ok ? "PASS" : "FAIL") << "\n";
  std::cout << "clean-follower convergence "
            << FormatDouble(clean_convergence_ms, 4) << " ms ";
  if (gate_latency) {
    std::cout << "(gate 500 ms)  [" << (latency_ok ? "PASS" : "FAIL")
              << "]\n";
  } else {
    std::cout << "(gate skipped: --quick)  [PASS]\n";
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("bench_replication/v1"));
  doc.Set("quick", JsonValue::Bool(quick));
  doc.Set("rows", JsonValue::Int(int64_t(rows)));
  doc.Set("queries_per_epoch", JsonValue::Int(int64_t(specs.size())));
  auto follower_json = [](const client::ReplicationStats& s,
                          double convergence_ms) {
    JsonValue out = JsonValue::Object();
    out.Set("installs", JsonValue::Int(int64_t(s.installs)));
    out.Set("snapshots_fetched",
            JsonValue::Int(int64_t(s.snapshots_fetched)));
    out.Set("bytes_fetched", JsonValue::Int(int64_t(s.bytes_fetched)));
    out.Set("reconnects", JsonValue::Int(int64_t(s.reconnects)));
    out.Set("digest_mismatches",
            JsonValue::Int(int64_t(s.digest_mismatches)));
    out.Set("convergence_ms", JsonValue::Number(convergence_ms));
    return out;
  };
  doc.Set("clean", follower_json(clean_stats, clean_convergence_ms));
  doc.Set("faulty", follower_json(faulty_stats, faulty_convergence_ms));
  doc.Set("answers_bit_identical", JsonValue::Bool(identical_ok));
  doc.Set("faulty_answer_clean", JsonValue::Bool(faulty_clean_ok));
  doc.Set("latency_gated", JsonValue::Bool(gate_latency));
  doc.Set("convergence_gate_ms", JsonValue::Number(500.0));
  {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << doc.ToString(2) << "\n";
  }
  std::cout << "results written to " << out_path << "\n";

  clean->replicator->Stop();
  faulty->replicator->Stop();
  fs::remove_all(clean->dir);
  fs::remove_all(faulty->dir);

  if (!identical_ok || !faulty_clean_ok) return 1;
  if (gate_latency && !latency_ok) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
