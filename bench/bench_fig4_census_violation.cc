// Reproduces Figure 4 (paper §6.3): violation rates v_g / v_r on CENSUS,
// swept over p, lambda, delta, and the dataset size |D| in {100K..500K}.
//
// Paper shape: v_g much smaller than on ADULT (balanced 50-value SA makes
// f small and s_g large), but the few violating groups are the largest
// ones, so v_r stays high; violations grow with |D|.

#include <iostream>

#include "common/string_util.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "exp/sweeps.h"

namespace {

using namespace recpriv;  // NOLINT

int Run() {
  exp::PrintBanner(std::cout, "Figure 4: CENSUS privacy violation (vg, vr)",
                   "EDBT'15 Figure 4");

  const size_t default_size = exp::FullScale() ? 300000 : 100000;
  auto ds = exp::PrepareCensus(default_size, /*pool_size=*/0, /*seed=*/2015);
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  std::cout << "CENSUS " << FormatWithCommas(int64_t(default_size)) << ": "
            << ds->index.num_groups() << " generalized groups\n";

  for (auto axis : {exp::SweepAxis::kRetentionP, exp::SweepAxis::kLambda,
                    exp::SweepAxis::kDelta}) {
    const auto values = exp::DefaultAxisValues(axis);
    exp::ViolationSweep sweep = exp::SweepViolations(ds->index, axis, values);
    std::cout << "\n--- (" << exp::AxisName(axis)
              << " sweep, others at defaults) ---\n";
    std::vector<std::string> labels;
    for (double v : values) labels.push_back(FormatDouble(v, 2));
    exp::PrintSeries(std::cout, exp::AxisName(axis), labels,
                     {exp::Series{"vg", sweep.vg},
                      exp::Series{"vr", sweep.vr}});
  }

  // (d) |D| sweep.
  std::cout << "\n--- (|D| sweep at defaults) ---\n";
  const std::vector<size_t> sizes =
      exp::FullScale()
          ? std::vector<size_t>{100000, 200000, 300000, 400000, 500000}
          : std::vector<size_t>{50000, 100000, 150000, 200000, 250000};
  std::vector<std::string> labels;
  std::vector<double> vg, vr;
  for (size_t n : sizes) {
    auto sized = exp::PrepareCensus(n, 0, /*seed=*/2015);
    if (!sized.ok()) {
      std::cerr << sized.status() << "\n";
      return 1;
    }
    auto point = exp::MeasureViolation(
        sized->index, exp::DefaultParams(50));
    labels.push_back(std::to_string(n / 1000) + "K");
    vg.push_back(point.vg);
    vr.push_back(point.vr);
  }
  exp::PrintSeries(std::cout, "|D|", labels,
                   {exp::Series{"vg", vg}, exp::Series{"vr", vr}});

  std::cout << "\npaper shape: vg small (few, large groups violate), vr much "
               "larger (those groups\nhold many records); both grow with "
               "|D|.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
