// Group-index layout bench: legacy row-oriented GroupIndex vs the columnar
// FlatGroupIndex, head to head on the operations every scan-bound workload
// in the repo reduces to (paper §3.2, §5):
//
//   build            index construction from a table (comparator sort vs
//                    packed-key radix sort + run-length pass)
//   scan_match       MatchingGroupsInto over a query-pool's NA predicates
//                    (one linear pass of the NA keys per query)
//   count_answer     a full count-query answer: observed O* + matched |S*|
//                    (legacy: match list + per-group gather; flat: the
//                    fused AnswerInto kernel, no match list)
//   posting_*        the inverted GroupPostingIndex over the flat layout
//                    (intersection-based matching; no legacy counterpart
//                    since PR 2 — reported for the perf trajectory only)
//
// Datasets are the paper's two scales, synthesized: ADULT (45,222 records)
// and CENSUS (300,000 records — the >=100k "serving-relevant" scale the
// speedup gate runs on). Both are indexed on their raw (ungeneralized)
// public attributes, the group-rich regime where layout matters.
//
// Results go to stdout as tables and to --out (default
// BENCH_group_index.json) as machine-readable JSON:
//
//   {
//     "schema": "bench_group_index/v1",
//     "quick": false,
//     "datasets": { "<name>": {"rows": R, "groups": G, "pool": Q} },
//     "benchmarks": { "<dataset>/<op>/<layout>":
//         {"ns_per_op": N, "throughput": T, "unit": "<ops>/s", "iters": I} },
//     "speedups": { "<dataset>/<op>": legacy_ns / flat_ns }
//   }
//
// Exits non-zero unless the flat layout wins >=2x on at least one of
// {build, scan_match, count_answer} at the >=100k-row scale, so CI can gate
// on the tentpole claim. --quick shrinks both datasets for smoke runs
// (the gate is skipped below 100k rows, but the JSON is still emitted).

#include <functional>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "datagen/adult.h"
#include "datagen/census.h"
#include "exp/reporting.h"
#include "query/count_query.h"
#include "query/query_pool.h"
#include "table/flat_group_index.h"
#include "table/simd/dispatch.h"
#include "testing_util.h"
#include "table/group_index.h"

namespace {

using namespace recpriv;  // NOLINT

struct Measurement {
  double ns_per_op = 0.0;
  double per_sec = 0.0;  ///< ops per second
  size_t iters = 0;      ///< timed repetitions of the workload
};

/// Times `fn` (a workload of `ops` logical operations): one warmup run,
/// then repeats until `min_seconds` of wall time has accumulated.
Measurement Measure(size_t ops, double min_seconds,
                    const std::function<void()>& fn) {
  fn();  // warmup: faults pages, fills allocator caches
  Measurement m;
  WallTimer timer;
  double elapsed = 0.0;
  do {
    fn();
    ++m.iters;
    elapsed = timer.Seconds();
  } while (elapsed < min_seconds);
  const double total_ops = double(m.iters) * double(ops);
  m.ns_per_op = elapsed * 1e9 / total_ops;
  m.per_sec = total_ops / elapsed;
  return m;
}

/// Best (fastest) of `rounds` Measure calls. Used for the arms a speedup
/// gate compares: on a busy or thermally-throttling host the mean drifts
/// between two runs of the *same* code by more than the gate margin, while
/// the per-round minimum converges on the code's actual cost.
Measurement MeasureBest(size_t rounds, size_t ops, double min_seconds,
                        const std::function<void()>& fn) {
  Measurement best = Measure(ops, min_seconds, fn);
  for (size_t r = 1; r < rounds; ++r) {
    const Measurement m = Measure(ops, min_seconds, fn);
    if (m.ns_per_op < best.ns_per_op) best = m;
  }
  return best;
}

struct Dataset {
  std::string name;
  table::Table table;
  std::vector<query::CountQuery> pool;
};

/// One dataset's results, keyed "<op>/<layout>".
using Results = std::map<std::string, Measurement>;

Results RunDataset(const Dataset& ds, double min_seconds) {
  Results out;

  // --- build ---------------------------------------------------------------
  out["build/legacy"] = Measure(ds.table.num_rows(), min_seconds, [&] {
    auto idx = table::GroupIndex::Build(ds.table);
    if (idx.num_groups() == 0) std::abort();
  });
  out["build/flat"] = Measure(ds.table.num_rows(), min_seconds, [&] {
    auto idx = table::FlatGroupIndex::Build(ds.table);
    if (idx.num_groups() == 0) std::abort();
  });

  const table::GroupIndex legacy = table::GroupIndex::Build(ds.table);
  const table::FlatGroupIndex flat = table::FlatGroupIndex::Build(ds.table);
  const table::GroupPostingIndex postings(flat);

  // --- scan_match: matching group ids per pool predicate -------------------
  uint64_t sink = 0;
  {
    std::vector<size_t> matches;
    out["scan_match/legacy"] = Measure(ds.pool.size(), min_seconds, [&] {
      for (const auto& q : ds.pool) {
        legacy.MatchingGroupsInto(q.na_predicate, matches);
        sink += matches.size();
      }
    });
  }
  {
    std::vector<uint32_t> matches;
    out["scan_match/flat"] = Measure(ds.pool.size(), min_seconds, [&] {
      for (const auto& q : ds.pool) {
        flat.MatchingGroupsInto(q.na_predicate, matches);
        sink += matches.size();
      }
    });
  }
  {
    std::vector<uint32_t> scratch, matches;
    out["posting_match/flat"] = Measure(ds.pool.size(), min_seconds, [&] {
      for (const auto& q : ds.pool) {
        postings.MatchingGroupsInto(q.na_predicate, scratch, matches);
        sink += matches.size();
      }
    });
  }

  // --- count_answer: observed O* + matched |S*| per pool query -------------
  {
    // The pre-PR-2 serving hot path: materialize the match list, then
    // gather from each group's separately-allocated vectors.
    std::vector<size_t> matches;
    out["count_answer/legacy"] = Measure(ds.pool.size(), min_seconds, [&] {
      for (const auto& q : ds.pool) {
        legacy.MatchingGroupsInto(q.na_predicate, matches);
        uint64_t observed = 0, matched_size = 0;
        for (size_t gi : matches) {
          const auto& g = legacy.groups()[gi];
          observed += g.sa_counts[q.sa_code];
          matched_size += g.size();
        }
        sink += observed + matched_size;
      }
    });
  }
  out["count_answer/flat"] = Measure(ds.pool.size(), min_seconds, [&] {
    for (const auto& q : ds.pool) {
      uint64_t observed = 0, matched_size = 0;
      flat.AnswerInto(q.na_predicate, q.sa_code, &observed, &matched_size);
      sink += observed + matched_size;
    }
  });
  out["posting_count/flat"] = Measure(ds.pool.size(), min_seconds, [&] {
    for (const auto& q : ds.pool) {
      sink += postings.CountAnswer(q.na_predicate, q.sa_code);
    }
  });

  // --- count_answer under pinned kernel dispatch levels --------------------
  // The "flat" arm above runs at the as-shipped auto level; these arms pin
  // the level so the SIMD speedup is measured against the scalar kernel on
  // identical data. Bit-identity across levels is asserted per pool query
  // before anything is timed — a wrong fast kernel must fail loudly here,
  // not surface as a serving discrepancy.
  {
    const table::simd::DispatchLevel restore = table::simd::ActiveLevel();
    table::simd::SetDispatchLevel(table::simd::DispatchLevel::kScalar);
    if (table::simd::HostSupportsAvx2()) {
      for (const auto& q : ds.pool) {
        uint64_t scalar_observed = 0, scalar_matched = 0;
        flat.AnswerInto(q.na_predicate, q.sa_code, &scalar_observed,
                        &scalar_matched);
        table::simd::SetDispatchLevel(table::simd::DispatchLevel::kAvx2);
        uint64_t avx2_observed = 0, avx2_matched = 0;
        flat.AnswerInto(q.na_predicate, q.sa_code, &avx2_observed,
                        &avx2_matched);
        table::simd::SetDispatchLevel(table::simd::DispatchLevel::kScalar);
        if (avx2_observed != scalar_observed ||
            avx2_matched != scalar_matched) {
          std::cerr << "SIMD kernel answer mismatch on " << ds.name
                    << ": scalar (" << scalar_observed << ", "
                    << scalar_matched << ") vs avx2 (" << avx2_observed
                    << ", " << avx2_matched << ")\n";
          std::abort();
        }
      }
    }
    out["count_answer/flat_scalar"] =
        MeasureBest(3, ds.pool.size(), min_seconds, [&] {
          for (const auto& q : ds.pool) {
            uint64_t observed = 0, matched_size = 0;
            flat.AnswerInto(q.na_predicate, q.sa_code, &observed,
                            &matched_size);
            sink += observed + matched_size;
          }
        });
    if (table::simd::HostSupportsAvx2()) {
      table::simd::SetDispatchLevel(table::simd::DispatchLevel::kAvx2);
      out["count_answer/flat_avx2"] =
          MeasureBest(3, ds.pool.size(), min_seconds, [&] {
            for (const auto& q : ds.pool) {
              uint64_t observed = 0, matched_size = 0;
              flat.AnswerInto(q.na_predicate, q.sa_code, &observed,
                              &matched_size);
              sink += observed + matched_size;
            }
          });
    }
    table::simd::SetDispatchLevel(restore);
  }
  if (sink == uint64_t(-1)) std::abort();  // keep the loops observable

  return out;
}

Result<Dataset> MakeDataset(std::string name, table::Table table,
                            size_t pool_size, Rng& rng) {
  const table::FlatGroupIndex index = table::FlatGroupIndex::Build(table);
  query::QueryPoolConfig config;
  config.pool_size = pool_size;
  RECPRIV_ASSIGN_OR_RETURN(std::vector<query::CountQuery> pool,
                           query::GenerateQueryPool(index, config, rng));
  if (pool.empty()) return Status::Internal("empty query pool for " + name);
  return Dataset{std::move(name), std::move(table), std::move(pool)};
}

int Run(int argc, char** argv) {
  auto flags = FlagSet::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 2;
  }
  const bool quick = *flags->GetBool("quick", false);
  const std::string out_path =
      flags->GetString("out", "BENCH_group_index.json");
  // Long enough for stable numbers; --quick only needs the plumbing to run.
  const double min_seconds = quick ? 0.01 : 0.25;
  const size_t adult_rows = quick ? 4000 : 45222;
  const size_t census_rows = quick ? 8000 : 300000;
  const size_t pool_size = quick ? 200 : 1000;

  exp::PrintBanner(std::cout,
                   "Group-index layouts: row-oriented GroupIndex vs columnar "
                   "FlatGroupIndex",
                   quick ? "quick smoke sizes (gate skipped)"
                         : "ADULT 45k / CENSUS 300k, 1,000-query pools");

  Rng rng(recpriv::testing::HarnessSeed(20150315));
  std::vector<Dataset> datasets;
  {
    auto adult = datagen::GenerateAdult({.num_records = adult_rows}, rng);
    if (!adult.ok()) {
      std::cerr << adult.status() << "\n";
      return 1;
    }
    auto ds = MakeDataset("adult", *std::move(adult), pool_size, rng);
    if (!ds.ok()) {
      std::cerr << ds.status() << "\n";
      return 1;
    }
    datasets.push_back(*std::move(ds));
  }
  {
    auto census = datagen::GenerateCensus({.num_records = census_rows}, rng);
    if (!census.ok()) {
      std::cerr << census.status() << "\n";
      return 1;
    }
    auto ds = MakeDataset("census", *std::move(census), pool_size, rng);
    if (!ds.ok()) {
      std::cerr << ds.status() << "\n";
      return 1;
    }
    datasets.push_back(*std::move(ds));
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("bench_group_index/v1"));
  doc.Set("quick", JsonValue::Bool(quick));
  JsonValue json_datasets = JsonValue::Object();
  JsonValue json_benchmarks = JsonValue::Object();
  JsonValue json_speedups = JsonValue::Object();

  // The tentpole gate: >=2x on one of these ops at >=100k rows.
  const std::vector<std::string> gated_ops = {"build", "scan_match",
                                              "count_answer"};
  bool gate_applicable = false;
  bool gate_passed = false;
  // The kernel-dispatch gate (PR 9): on AVX2 hosts, the vector kernel must
  // win >=2x over the pinned scalar kernel on count_answer at >=100k rows.
  bool simd_gate_applicable = false;
  bool simd_gate_passed = false;

  for (const Dataset& ds : datasets) {
    const table::FlatGroupIndex index = table::FlatGroupIndex::Build(ds.table);
    std::cout << "\n" << ds.name << ": "
              << FormatWithCommas(int64_t(ds.table.num_rows())) << " records, "
              << FormatWithCommas(int64_t(index.num_groups())) << " groups, "
              << ds.pool.size() << "-query pool ("
              << (index.packed() ? "packed 64-bit keys" : "wide keys")
              << ")\n";
    JsonValue meta = JsonValue::Object();
    meta.Set("rows", JsonValue::Int(int64_t(ds.table.num_rows())));
    meta.Set("groups", JsonValue::Int(int64_t(index.num_groups())));
    meta.Set("pool", JsonValue::Int(int64_t(ds.pool.size())));
    json_datasets.Set(ds.name, std::move(meta));

    const Results results = RunDataset(ds, min_seconds);
    exp::AsciiTable table(
        {"benchmark", "ns/op", "throughput", "unit", "iters"});
    for (const auto& [key, m] : results) {
      const bool is_build = key.rfind("build/", 0) == 0;
      const std::string unit = is_build ? "rows/s" : "queries/s";
      table.AddRow({key, FormatWithCommas(int64_t(m.ns_per_op)),
                    FormatWithCommas(int64_t(m.per_sec)), unit,
                    std::to_string(m.iters)});
      JsonValue entry = JsonValue::Object();
      entry.Set("ns_per_op", JsonValue::Number(m.ns_per_op));
      entry.Set("throughput", JsonValue::Number(m.per_sec));
      entry.Set("unit", JsonValue::String(unit));
      entry.Set("iters", JsonValue::Int(int64_t(m.iters)));
      json_benchmarks.Set(ds.name + "/" + key, std::move(entry));
    }
    table.Print(std::cout);

    std::cout << "flat vs legacy:";
    for (const std::string& op : gated_ops) {
      const double speedup = results.at(op + "/legacy").ns_per_op /
                             results.at(op + "/flat").ns_per_op;
      json_speedups.Set(ds.name + "/" + op, JsonValue::Number(speedup));
      std::cout << "  " << op << " " << FormatDouble(speedup, 2) << "x";
      if (ds.table.num_rows() >= 100000) {
        gate_applicable = true;
        if (speedup >= 2.0) gate_passed = true;
      }
    }
    std::cout << "\n";

    if (table::simd::HostSupportsAvx2()) {
      const double simd_speedup =
          results.at("count_answer/flat_scalar").ns_per_op /
          results.at("count_answer/flat_avx2").ns_per_op;
      json_speedups.Set(ds.name + "/count_answer_simd",
                        JsonValue::Number(simd_speedup));
      std::cout << "avx2 vs scalar kernel:  count_answer "
                << FormatDouble(simd_speedup, 2) << "x (answers identical)\n";
      if (ds.table.num_rows() >= 100000) {
        simd_gate_applicable = true;
        if (simd_speedup >= 2.0) simd_gate_passed = true;
      }
    }
  }

  doc.Set("datasets", std::move(json_datasets));
  doc.Set("benchmarks", std::move(json_benchmarks));
  doc.Set("speedups", std::move(json_speedups));
  doc.Set("simd_level",
          JsonValue::String(table::simd::LevelName(
              table::simd::ActiveLevel())));
  // Scalar/AVX2 answer identity is abort-checked per pool query before any
  // timing; reaching the report at all means it held.
  doc.Set("simd_identical", JsonValue::Bool(true));
  {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << doc.ToString(2) << "\n";
  }
  std::cout << "\nresults written to " << out_path << "\n";

  int exit_code = 0;
  if (gate_applicable) {
    std::cout << ">=2x on {build, scan_match, count_answer} at >=100k rows: "
              << (gate_passed ? "PASS" : "FAIL") << "\n";
    if (!gate_passed) exit_code = 1;
  } else {
    std::cout
        << "speedup gate skipped (no >=100k-row dataset at this size)\n";
  }
  if (simd_gate_applicable) {
    std::cout << ">=2x avx2 vs scalar on count_answer at >=100k rows: "
              << (simd_gate_passed ? "PASS" : "FAIL") << "\n";
    if (!simd_gate_passed) exit_code = 1;
  } else {
    std::cout << "simd kernel gate skipped ("
              << (table::simd::HostSupportsAvx2()
                      ? "no >=100k-row dataset at this size"
                      : "no AVX2 on this host")
              << ")\n";
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
