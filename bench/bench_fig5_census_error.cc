// Reproduces Figure 5 (paper §6.3): the average relative query error on
// CENSUS for UP vs SPS, swept over p, lambda, delta, and |D|.
//
// Paper shape: unlike ADULT, the SPS error stays close to UP (the paper
// reports < 10 percentage points of extra error for most settings) because
// few groups need sampling; error decreases as |D| grows.

#include <iostream>

#include "common/string_util.h"
#include "common/timer.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "exp/sweeps.h"

namespace {

using namespace recpriv;  // NOLINT

int Run() {
  exp::PrintBanner(std::cout,
                   "Figure 5: CENSUS relative query error, SPS vs UP",
                   "EDBT'15 Figure 5");

  const size_t default_size = exp::FullScale() ? 300000 : 100000;
  const size_t pool_size = exp::FullScale() ? 5000 : 2000;
  const size_t runs = exp::NumRuns(10);
  WallTimer timer;
  auto ds = exp::PrepareCensus(default_size, pool_size, /*seed=*/2015);
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  std::cout << "prepared CENSUS " << FormatWithCommas(int64_t(default_size))
            << " in " << FormatDouble(timer.Seconds(), 3) << "s: "
            << ds->index.num_groups() << " groups, " << ds->pool.size()
            << " queries, " << runs << " runs/point\n";

  uint64_t seed = 99;
  for (auto axis : {exp::SweepAxis::kRetentionP, exp::SweepAxis::kLambda,
                    exp::SweepAxis::kDelta}) {
    const auto values = exp::DefaultAxisValues(axis);
    auto sweep =
        exp::SweepErrors(ds->flat_index, ds->pool, axis, values, runs, seed++);
    if (!sweep.ok()) {
      std::cerr << sweep.status() << "\n";
      return 1;
    }
    std::cout << "\n--- (" << exp::AxisName(axis)
              << " sweep, others at defaults) ---\n";
    std::vector<std::string> labels;
    for (double v : values) labels.push_back(FormatDouble(v, 2));
    exp::PrintSeries(std::cout, exp::AxisName(axis), labels,
                     {exp::Series{"UP err", sweep->up_error},
                      exp::Series{"SPS err", sweep->sps_error}});
  }

  // (d) |D| sweep.
  std::cout << "\n--- (|D| sweep at defaults) ---\n";
  const std::vector<size_t> sizes =
      exp::FullScale()
          ? std::vector<size_t>{100000, 200000, 300000, 400000, 500000}
          : std::vector<size_t>{50000, 100000, 150000, 200000, 250000};
  std::vector<std::string> labels;
  std::vector<double> up_err, sps_err;
  Rng rng(4242);
  for (size_t n : sizes) {
    auto sized = exp::PrepareCensus(n, pool_size, /*seed=*/2015);
    if (!sized.ok()) {
      std::cerr << sized.status() << "\n";
      return 1;
    }
    auto point = exp::MeasureRelativeError(sized->flat_index, sized->pool,
                                           exp::DefaultParams(50), runs, rng);
    if (!point.ok()) {
      std::cerr << point.status() << "\n";
      return 1;
    }
    labels.push_back(std::to_string(n / 1000) + "K");
    up_err.push_back(point->up.mean);
    sps_err.push_back(point->sps.mean);
  }
  exp::PrintSeries(std::cout, "|D|", labels,
                   {exp::Series{"UP err", up_err},
                    exp::Series{"SPS err", sps_err}});

  std::cout << "\npaper shape: SPS stays within a few percentage points of "
               "UP across settings;\nboth errors shrink as |D| grows even "
               "though violations increase (Fig. 4d vs 5d).\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
