// Reproduces Figure 3 (paper §6.2): the average relative error of the
// 5,000-query pool on ADULT for plain uniform perturbation (UP) vs the SPS
// algorithm, swept over p, lambda, and delta (10 randomized runs each).
//
// Paper shape: SPS costs up to ~50 percentage points of extra error on
// ADULT (m = 2 means every group has f >= 0.5, so most groups need heavy
// sampling).

#include <iostream>

#include "common/string_util.h"
#include "common/timer.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "exp/sweeps.h"

namespace {

using namespace recpriv;  // NOLINT

int Run() {
  exp::PrintBanner(std::cout,
                   "Figure 3: ADULT relative query error, SPS vs UP",
                   "EDBT'15 Figure 3");

  const size_t pool_size = exp::FullScale() ? 5000 : 2000;
  const size_t runs = exp::NumRuns(10);
  WallTimer timer;
  auto ds = exp::PrepareAdult(45222, pool_size, /*seed=*/2015);
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  std::cout << "prepared ADULT in " << FormatDouble(timer.Seconds(), 3)
            << "s: " << ds->index.num_groups() << " generalized groups, "
            << ds->pool.size() << " queries, " << runs << " runs/point\n";

  uint64_t seed = 77;
  for (auto axis : {exp::SweepAxis::kRetentionP, exp::SweepAxis::kLambda,
                    exp::SweepAxis::kDelta}) {
    const auto values = exp::DefaultAxisValues(axis);
    auto sweep =
        exp::SweepErrors(ds->flat_index, ds->pool, axis, values, runs, seed++);
    if (!sweep.ok()) {
      std::cerr << sweep.status() << "\n";
      return 1;
    }
    std::cout << "\n--- (" << exp::AxisName(axis)
              << " sweep, others at defaults) ---\n";
    std::vector<std::string> labels;
    for (double v : values) labels.push_back(FormatDouble(v, 2));
    exp::PrintSeries(
        std::cout, exp::AxisName(axis), labels,
        {exp::Series{"UP err", sweep->up_error},
         exp::Series{"SPS err", sweep->sps_error},
         exp::Series{"UP SE", sweep->up_se},
         exp::Series{"SPS SE", sweep->sps_se}});
  }
  std::cout << "\npaper shape: SPS error exceeds UP substantially on ADULT "
               "(tens of percentage\npoints at defaults) because m = 2 "
               "forces f >= 0.5 in every group; small p\ninflates both "
               "curves (data become pure noise).\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
