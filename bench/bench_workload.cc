// Micro-batching scheduler throughput on a same-release burst workload.
//
// The scenario the scheduler exists for: a republish invalidates the
// epoch-keyed answer cache, and every dashboard client re-issues its broad
// count queries at the fresh epoch at once — a thundering herd of
// one-query requests, heavily duplicated (the hottest templates are the
// m full-release 0-dimensional counts) but cache-cold. Per-request
// execution pays a full index pass per RIDER; the micro-batcher fuses the
// concurrent arrivals into one engine batch, which evaluates each distinct
// query ONCE (the batch dedup + one shared FlatGroupIndex pass) and fans
// the answers back out.
//
// The bench drives M submitter threads through the engine's scheduled
// entry point twice over identical deterministic Zipf-hot query streams
// against a ~10^5-group release, caches off (the cold regime above):
//
//   unbatched  window = 0: every request evaluates alone (PR-4 behavior);
//   batched    window > 0: same-snapshot requests fuse via MicroBatcher.
//
// Answers are checked bit-identical between the arms (the scheduler's
// core invariant), results go to BENCH_workload.json, and the run FAILS
// unless batched throughput is >= 1.5x unbatched — the PR's acceptance
// gate, so CI holds the line.
//
// --quick shrinks the dataset and skips the gate (plumbing smoke only).

#include <algorithm>
#include <atomic>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "exp/reporting.h"
#include "query/count_query.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"
#include "workload/synthetic.h"

namespace {

using namespace recpriv;  // NOLINT

struct ArmResult {
  double seconds = 0.0;
  double qps = 0.0;
  client::SchedulerStats scheduler;  ///< zero-valued for the unbatched arm
  /// Per-thread answer streams for the bit-identity check.
  std::vector<std::vector<serve::Answer>> answers;
};

/// Deterministic per-thread query streams drawn Zipf-hot from a shared
/// template pool: the broad 0-dimensional counts (full-release scans, one
/// per SA value) are the hottest templates, followed by 1-dimensional
/// slices. That is the post-republish thundering-herd shape: every
/// dashboard re-issues the same handful of broad counts at a fresh epoch,
/// so concurrent requests are largely DUPLICATES — which the fused batch
/// evaluates once, while per-request execution scans once per rider.
std::vector<std::vector<query::CountQuery>> MakeStreams(
    const workload::SyntheticReleaseSpec& spec, size_t threads, size_t ops,
    size_t num_attributes, uint64_t seed) {
  Rng master(seed);

  // Template pool: 4 broad 0-dim counts, then 28 one-dim slices.
  std::vector<query::CountQuery> pool;
  for (size_t sa = 0; sa < spec.sa_domain; ++sa) {
    query::CountQuery q(num_attributes);
    q.sa_code = uint32_t(sa);
    pool.push_back(std::move(q));
  }
  while (pool.size() < 32) {
    query::CountQuery q(num_attributes);
    const size_t attr = master.NextUint64(2);  // A0 or A1
    q.na_predicate.Bind(attr,
                        uint32_t(master.NextUint64(spec.public_domains[attr])));
    q.dimensionality = 1;
    q.sa_code = uint32_t(master.NextUint64(spec.sa_domain));
    pool.push_back(std::move(q));
  }
  const AliasSampler hot(workload::ZipfWeights(pool.size(), 1.1));

  std::vector<std::vector<query::CountQuery>> streams(threads);
  for (size_t t = 0; t < threads; ++t) {
    Rng rng = master.Fork();
    streams[t].reserve(ops);
    for (size_t i = 0; i < ops; ++i) {
      streams[t].push_back(pool[hot.Sample(rng)]);
    }
  }
  return streams;
}

/// Runs one arm: every thread replays its stream as single-query requests
/// through the scheduled serving path (store lookup per request, exactly
/// like a wire request).
ArmResult RunArm(std::shared_ptr<serve::ReleaseStore> store,
                 const serve::QueryEngineOptions& options,
                 const std::vector<std::vector<query::CountQuery>>& streams) {
  serve::QueryEngine engine(store, options);
  ArmResult result;
  result.answers.resize(streams.size());
  std::atomic<size_t> failures{0};

  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(streams.size());
  for (size_t t = 0; t < streams.size(); ++t) {
    threads.emplace_back([&, t] {
      auto& out = result.answers[t];
      out.reserve(streams[t].size());
      for (const query::CountQuery& q : streams[t]) {
        auto snap = store->Get("burst");
        if (!snap.ok()) {
          failures.fetch_add(1);
          return;
        }
        auto batch = engine.AnswerBatchScheduled("burst", *std::move(snap),
                                                 {q});
        if (!batch.ok() || batch->answers.size() != 1) {
          failures.fetch_add(1);
          return;
        }
        out.push_back(batch->answers[0]);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  result.seconds = timer.Seconds();

  size_t total = 0;
  for (const auto& stream : streams) total += stream.size();
  result.qps = result.seconds > 0 ? double(total) / result.seconds : 0.0;
  if (failures.load() > 0) {
    std::cerr << "arm had " << failures.load() << " failed requests\n";
    std::exit(1);
  }
  if (auto stats = engine.scheduler_stats(); stats.has_value()) {
    result.scheduler = *stats;
  }
  return result;
}

int Run(int argc, char** argv) {
  auto flags = FlagSet::Parse(argc, argv, {"quick"});
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 2;
  }
  const bool quick = *flags->GetBool("quick", false);
  const std::string out_path = flags->GetString("out", "BENCH_workload.json");
  const size_t threads = size_t(*flags->GetInt("threads", 16));
  const size_t ops = size_t(*flags->GetInt("ops", quick ? 40 : 150));
  const int window_us = int(*flags->GetInt("window-us", 100));

  exp::PrintBanner(std::cout,
                   "Micro-batching scheduler: fused vs per-request "
                   "evaluation on a same-release burst",
                   quick ? "quick smoke sizes (gate skipped)"
                         : "broad single-query bursts from concurrent "
                           "clients");

  workload::SyntheticReleaseSpec spec;
  spec.name = "burst";
  spec.data_seed = 2015;
  spec.records = quick ? 20000 : 220000;
  spec.public_domains = {16, 64, 128};
  spec.sa_domain = 4;
  std::cout << "building release (" << FormatWithCommas(int64_t(spec.records))
            << " records)...\n";
  auto bundle = workload::MakeBundle(spec, /*perturb_seed=*/7);
  if (!bundle.ok()) {
    std::cerr << bundle.status() << "\n";
    return 1;
  }
  auto store = std::make_shared<serve::ReleaseStore>();
  auto snap = store->Publish("burst", *std::move(bundle));
  if (!snap.ok()) {
    std::cerr << snap.status() << "\n";
    return 1;
  }
  const size_t num_groups = (*snap)->index.num_groups();
  const size_t num_attributes = spec.public_domains.size() + 1;
  std::cout << "release: " << FormatWithCommas(int64_t(num_groups))
            << " groups; " << threads << " threads x "
            << FormatWithCommas(int64_t(ops)) << " single-query requests\n\n";

  const auto streams = MakeStreams(spec, threads, ops, num_attributes, 42);

  // Caching off in both arms: the bench measures evaluation sharing on a
  // cold burst, not the LRU (which serves repeats either way).
  serve::QueryEngineOptions unbatched_options;
  unbatched_options.cache_capacity = 0;
  serve::QueryEngineOptions batched_options = unbatched_options;
  batched_options.micro_batch_window_us = window_us;

  const ArmResult unbatched = RunArm(store, unbatched_options, streams);
  const ArmResult batched = RunArm(store, batched_options, streams);

  // The scheduler's core invariant: fused answers are bit-identical.
  bool identical = true;
  for (size_t t = 0; t < streams.size() && identical; ++t) {
    for (size_t i = 0; i < streams[t].size() && identical; ++i) {
      const serve::Answer& a = unbatched.answers[t][i];
      const serve::Answer& b = batched.answers[t][i];
      identical = a.observed == b.observed &&
                  a.matched_size == b.matched_size &&
                  a.estimate == b.estimate;
    }
  }

  const double speedup =
      unbatched.qps > 0 ? batched.qps / unbatched.qps : 0.0;
  const client::SchedulerStats& s = batched.scheduler;
  const double avg_batch =
      s.batches > 0 ? double(s.batched_queries) / double(s.batches) : 0.0;

  exp::AsciiTable table({"arm", "seconds", "queries/s", "fused batches",
                         "avg queries/batch"});
  table.AddRow({"unbatched (window 0)", FormatDouble(unbatched.seconds, 3),
                FormatWithCommas(int64_t(unbatched.qps)), "-", "-"});
  table.AddRow({"batched (" + std::to_string(window_us) + "us)",
                FormatDouble(batched.seconds, 3),
                FormatWithCommas(int64_t(batched.qps)),
                std::to_string(s.batches), FormatDouble(avg_batch, 2)});
  table.Print(std::cout);
  std::cout << "\ncoalesced submissions: " << s.coalesced_submissions << "/"
            << s.submissions << " (max batch " << s.max_batch_queries
            << " queries)\n";
  std::cout << "answers bit-identical across arms: "
            << (identical ? "PASS" : "FAIL") << "\n";
  std::cout << "micro-batching speedup: " << FormatDouble(speedup, 3)
            << "x  [" << (quick ? "gate skipped (--quick)"
                                : (speedup >= 1.5 ? "PASS (>= 1.5x)"
                                                  : "FAIL (< 1.5x)"))
            << "]\n";

  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("bench_workload/v1"));
  doc.Set("quick", JsonValue::Bool(quick));
  doc.Set("threads", JsonValue::Int(int64_t(threads)));
  doc.Set("ops_per_thread", JsonValue::Int(int64_t(ops)));
  doc.Set("groups", JsonValue::Int(int64_t(num_groups)));
  doc.Set("records", JsonValue::Int(int64_t(spec.records)));
  JsonValue arm_a = JsonValue::Object();
  arm_a.Set("seconds", JsonValue::Number(unbatched.seconds));
  arm_a.Set("qps", JsonValue::Number(unbatched.qps));
  doc.Set("unbatched", std::move(arm_a));
  JsonValue arm_b = JsonValue::Object();
  arm_b.Set("seconds", JsonValue::Number(batched.seconds));
  arm_b.Set("qps", JsonValue::Number(batched.qps));
  arm_b.Set("window_us", JsonValue::Int(window_us));
  arm_b.Set("batches", JsonValue::Int(int64_t(s.batches)));
  arm_b.Set("avg_batch_queries", JsonValue::Number(avg_batch));
  arm_b.Set("coalesced_submissions",
            JsonValue::Int(int64_t(s.coalesced_submissions)));
  arm_b.Set("max_batch_queries", JsonValue::Int(int64_t(s.max_batch_queries)));
  doc.Set("batched", std::move(arm_b));
  doc.Set("speedup", JsonValue::Number(speedup));
  doc.Set("answers_identical", JsonValue::Bool(identical));
  {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << doc.ToString(2) << "\n";
  }
  std::cout << "results written to " << out_path << "\n";

  if (!identical) return 1;
  if (!quick && speedup < 1.5) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
