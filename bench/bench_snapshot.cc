// Snapshot-store bench: cold-start cost of serving a release from the
// persisted binary snapshot (mmap + verify + zero-parse open) vs from its
// CSV release bundle (parse + dictionary decode + index rebuild) — the
// restart path `recpriv_serve --snapshot-dir` replaces.
//
// Dataset: synthesized CENSUS at 300,000 records (the >=100k
// serving-relevant scale), SPS-perturbed once, written both ways, then
// each open path timed end to end to a query-ready ReleaseSnapshot.
// Content equality of the two paths is asserted array by array — a faster
// open that changed one answer would be a correctness bug, not a win.
//
// Results go to stdout and to --out (default BENCH_snapshot.json):
//
//   {
//     "schema": "bench_snapshot/v1",
//     "quick": false,
//     "dataset": {"rows": R, "groups": G, "snapshot_bytes": B,
//                 "csv_bytes": C},
//     "benchmarks": {
//       "open/csv":      {"ms_per_open": M, "iters": I},
//       "open/snapshot": {"ms_per_open": M, "iters": I},
//       "write/snapshot":{"ms_per_open": M, "iters": I}
//     },
//     "speedup": csv_ms / snapshot_ms,
//     "identical": true
//   }
//
// Exits non-zero unless the snapshot open is >=10x faster than the CSV
// open at the >=100k-row scale (the gate CI pins); --quick shrinks the
// dataset for smoke runs (gate skipped, JSON still emitted).

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/release.h"
#include "common/flags.h"
#include "common/json.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/sps.h"
#include "datagen/census.h"
#include "exp/reporting.h"
#include "store/snapshot_reader.h"
#include "store/snapshot_writer.h"
#include "table/flat_group_index.h"
#include "testing_util.h"

namespace {

using namespace recpriv;  // NOLINT
namespace fs = std::filesystem;

using recpriv::analysis::ReleaseBundle;
using recpriv::analysis::ReleaseSnapshot;

template <typename A, typename B>
bool SpanEqual(A a, B b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

/// Array-by-array content equality of two query-ready snapshots.
bool Identical(const ReleaseSnapshot& a, const ReleaseSnapshot& b) {
  const auto sa = a.index.storage();
  const auto sb = b.index.storage();
  if (sa.packed != sb.packed || sa.num_groups != sb.num_groups ||
      sa.num_records != sb.num_records) {
    return false;
  }
  if (!SpanEqual(sa.packed_keys, sb.packed_keys) ||
      !SpanEqual(sa.na_codes, sb.na_codes) ||
      !SpanEqual(sa.sa_counts, sb.sa_counts) ||
      !SpanEqual(sa.row_offsets, sb.row_offsets) ||
      !SpanEqual(sa.row_values, sb.row_values)) {
    return false;
  }
  if (a.bundle.data.num_columns() != b.bundle.data.num_columns()) return false;
  for (size_t c = 0; c < a.bundle.data.num_columns(); ++c) {
    if (!SpanEqual(a.bundle.data.column(c), b.bundle.data.column(c))) {
      return false;
    }
  }
  const auto& schema_a = *a.bundle.data.schema();
  const auto& schema_b = *b.bundle.data.schema();
  if (schema_a.num_attributes() != schema_b.num_attributes()) return false;
  for (size_t at = 0; at < schema_a.num_attributes(); ++at) {
    if (schema_a.attribute(at).name != schema_b.attribute(at).name ||
        schema_a.attribute(at).domain.values() !=
            schema_b.attribute(at).domain.values()) {
      return false;
    }
  }
  return a.bundle.params.retention_p == b.bundle.params.retention_p &&
         a.bundle.params.domain_m == b.bundle.params.domain_m &&
         a.epoch == b.epoch;
}

struct OpenTiming {
  double ms_per_open = 0.0;
  size_t iters = 0;
};

int Run(int argc, char** argv) {
  auto flags = FlagSet::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 2;
  }
  const bool quick = *flags->GetBool("quick", false);
  const std::string out_path = flags->GetString("out", "BENCH_snapshot.json");
  const size_t rows = quick ? 8000 : 300000;
  const size_t iters = quick ? 1 : 3;

  exp::PrintBanner(std::cout,
                   "Snapshot store: mmap'd zero-parse open vs CSV parse + "
                   "index rebuild",
                   quick ? "quick smoke size (gate skipped)"
                         : "CENSUS 300k, cold-start to query-ready");

  const fs::path dir = fs::temp_directory_path() / "recpriv_bench_snapshot";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string base = (dir / "census_release").string();
  const std::string rps = (dir / "census.rps").string();

  // --- publish once: CENSUS -> SPS release -> CSV bundle on disk -----------
  Rng rng(recpriv::testing::HarnessSeed(20150315));
  auto raw = datagen::GenerateCensus({.num_records = rows}, rng);
  if (!raw.ok()) {
    std::cerr << raw.status() << "\n";
    return 1;
  }
  core::PrivacyParams params;
  params.lambda = 0.3;
  params.delta = 0.3;
  params.retention_p = 0.5;
  params.domain_m = raw->schema()->sa_domain_size();
  auto sps = core::SpsPerturbTable(params, *raw, rng);
  if (!sps.ok()) {
    std::cerr << sps.status() << "\n";
    return 1;
  }
  const std::string sensitive = sps->table.schema()->sensitive().name;
  ReleaseBundle bundle{std::move(sps->table), params, sensitive, {}};
  if (Status s = analysis::WriteRelease(bundle, base); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // --- the CSV cold-start path: parse + rebuild to query-ready -------------
  auto open_csv = [&]() -> Result<std::shared_ptr<const ReleaseSnapshot>> {
    RECPRIV_ASSIGN_OR_RETURN(ReleaseBundle loaded,
                             analysis::LoadRelease(base));
    return analysis::SnapshotRelease(std::move(loaded), /*epoch=*/1);
  };

  // Reference content: one CSV open, persisted once so both timed paths
  // open byte-for-byte the same release.
  auto reference = open_csv();
  if (!reference.ok()) {
    std::cerr << reference.status() << "\n";
    return 1;
  }
  double write_ms = 0.0;
  {
    WallTimer timer;
    if (Status s = store::WriteSnapshot(**reference, "census", rps);
        !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    write_ms = timer.Millis();
  }

  auto time_path = [&](auto open_fn) -> Result<OpenTiming> {
    RECPRIV_RETURN_NOT_OK(open_fn().status());  // warmup: page cache, dicts
    OpenTiming t;
    WallTimer timer;
    for (size_t i = 0; i < iters; ++i) {
      RECPRIV_RETURN_NOT_OK(open_fn().status());
      ++t.iters;
    }
    t.ms_per_open = timer.Millis() / double(t.iters);
    return t;
  };

  auto csv_timing = time_path(open_csv);
  if (!csv_timing.ok()) {
    std::cerr << csv_timing.status() << "\n";
    return 1;
  }
  auto open_snapshot = [&]() -> Result<std::shared_ptr<const ReleaseSnapshot>> {
    RECPRIV_ASSIGN_OR_RETURN(store::OpenedSnapshot opened,
                             store::OpenSnapshot(rps));
    return opened.snapshot;
  };
  auto snap_timing = time_path(open_snapshot);
  if (!snap_timing.ok()) {
    std::cerr << snap_timing.status() << "\n";
    return 1;
  }

  // --- bit-identical across the round trip ---------------------------------
  auto reopened = open_snapshot();
  if (!reopened.ok()) {
    std::cerr << reopened.status() << "\n";
    return 1;
  }
  const bool identical = Identical(**reference, **reopened);

  const uint64_t snapshot_bytes = fs::file_size(rps);
  const uint64_t csv_bytes =
      fs::file_size(base + ".csv") + fs::file_size(base + ".manifest.json");
  const double speedup =
      csv_timing->ms_per_open / std::max(snap_timing->ms_per_open, 1e-9);
  const auto index = table::FlatGroupIndex::Build((*reference)->bundle.data);

  std::cout << "\ncensus: " << FormatWithCommas(int64_t(rows)) << " records, "
            << FormatWithCommas(int64_t(index.num_groups())) << " groups\n"
            << "  release csv:    " << FormatWithCommas(int64_t(csv_bytes))
            << " bytes\n"
            << "  snapshot (.rps): "
            << FormatWithCommas(int64_t(snapshot_bytes)) << " bytes, written"
            << " in " << FormatDouble(write_ms, 4) << " ms\n\n";
  exp::AsciiTable table({"path", "ms/open", "iters"});
  table.AddRow({"csv parse + rebuild",
                FormatDouble(csv_timing->ms_per_open, 4),
                std::to_string(csv_timing->iters)});
  table.AddRow({"snapshot mmap open",
                FormatDouble(snap_timing->ms_per_open, 4),
                std::to_string(snap_timing->iters)});
  table.Print(std::cout);
  std::cout << "speedup: " << FormatDouble(speedup, 3)
            << "x, content identical: " << (identical ? "yes" : "NO")
            << "\n";

  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("bench_snapshot/v1"));
  doc.Set("quick", JsonValue::Bool(quick));
  JsonValue dataset = JsonValue::Object();
  dataset.Set("rows", JsonValue::Int(int64_t(rows)));
  dataset.Set("groups", JsonValue::Int(int64_t(index.num_groups())));
  dataset.Set("snapshot_bytes", JsonValue::Int(int64_t(snapshot_bytes)));
  dataset.Set("csv_bytes", JsonValue::Int(int64_t(csv_bytes)));
  doc.Set("dataset", std::move(dataset));
  JsonValue benchmarks = JsonValue::Object();
  auto entry = [](const OpenTiming& t) {
    JsonValue e = JsonValue::Object();
    e.Set("ms_per_open", JsonValue::Number(t.ms_per_open));
    e.Set("iters", JsonValue::Int(int64_t(t.iters)));
    return e;
  };
  benchmarks.Set("open/csv", entry(*csv_timing));
  benchmarks.Set("open/snapshot", entry(*snap_timing));
  benchmarks.Set("write/snapshot", entry(OpenTiming{write_ms, 1}));
  doc.Set("benchmarks", std::move(benchmarks));
  doc.Set("speedup", JsonValue::Number(speedup));
  doc.Set("identical", JsonValue::Bool(identical));
  {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << doc.ToString(2) << "\n";
  }
  std::cout << "results written to " << out_path << "\n";
  fs::remove_all(dir);

  if (!identical) {
    std::cout << "content equality: FAIL\n";
    return 1;
  }
  if (rows >= 100000) {
    const bool pass = speedup >= 10.0;
    std::cout << ">=10x snapshot open vs csv open at >=100k rows: "
              << (pass ? "PASS" : "FAIL") << "\n";
    return pass ? 0 : 1;
  }
  std::cout << "speedup gate skipped (below 100k rows at this size)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
