// Reproduces Figure 2 (paper §6.2): the extent to which plain uniform
// perturbation violates (lambda,delta)-reconstruction-privacy on ADULT,
// as v_g (fraction of violating personal groups) and v_r (fraction of
// records covered by violating groups), swept over p, lambda, and delta.
//
// Paper shape at defaults (p=0.5, lambda=0.3, delta=0.3): ~85% of groups
// violating, covering > 99% of records.

#include <iostream>

#include "common/string_util.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "exp/sweeps.h"

namespace {

using namespace recpriv;  // NOLINT

int Run() {
  exp::PrintBanner(std::cout, "Figure 2: ADULT privacy violation (vg, vr)",
                   "EDBT'15 Figure 2");

  auto ds = exp::PrepareAdult(45222, /*pool_size=*/0, /*seed=*/2015);
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  std::cout << "generalized personal groups: " << ds->index.num_groups()
            << ", records: " << ds->index.num_records() << "\n";

  for (auto axis : {exp::SweepAxis::kRetentionP, exp::SweepAxis::kLambda,
                    exp::SweepAxis::kDelta}) {
    const auto values = exp::DefaultAxisValues(axis);
    exp::ViolationSweep sweep = exp::SweepViolations(ds->index, axis, values);
    std::cout << "\n--- (" << exp::AxisName(axis)
              << " sweep, others at defaults p=0.5, lambda=0.3, delta=0.3) "
                 "---\n";
    std::vector<std::string> labels;
    for (double v : values) labels.push_back(FormatDouble(v, 2));
    exp::PrintSeries(std::cout, exp::AxisName(axis), labels,
                     {exp::Series{"vg", sweep.vg}, exp::Series{"vr", sweep.vr}});
  }
  std::cout << "\npaper shape: violations widespread across all settings; "
               "vr ~ 1 because the\nlargest groups violate first; lower p "
               "reduces violations.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
