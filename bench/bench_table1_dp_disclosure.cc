// Reproduces Table 1 (paper §1.1, Example 1): the NIR ratio attack on
// differentially private answers over the ADULT rule
//   {Prof-school, Prof-specialty, White, Male} -> >50K  (Conf ~ 0.84).
//
// For epsilon in {0.01, 0.1, 0.5} (b = 200, 20, 4 at sensitivity 2), runs
// 10 trials of Laplace noise and reports the mean and standard error of
// Conf' = ans2'/ans1' and of the relative answer errors.

#include <iostream>

#include "datagen/adult.h"
#include "dp/count_query_engine.h"
#include "dp/laplace_mechanism.h"
#include "dp/nir_attack.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "common/string_util.h"

namespace {

using namespace recpriv;  // NOLINT

int Run() {
  exp::PrintBanner(std::cout, "Table 1: disclosure through DP noisy answers",
                   "EDBT'15 Table 1 (Example 1, ADULT)");

  Rng rng(2015);
  datagen::AdultConfig config;  // 45,222 records as in the paper
  auto data = datagen::GenerateAdult(config, rng);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }

  auto q1 = table::Predicate::FromBindings(
      *data->schema(), {{"Education", "Prof-school"},
                        {"Occupation", "Prof-specialty"},
                        {"Race", "White"},
                        {"Gender", "Male"}});
  auto q2 = table::Predicate::FromBindings(
      *data->schema(), {{"Education", "Prof-school"},
                        {"Occupation", "Prof-specialty"},
                        {"Race", "White"},
                        {"Gender", "Male"},
                        {"Income", ">50K"}});
  if (!q1.ok() || !q2.ok()) {
    std::cerr << "predicate construction failed\n";
    return 1;
  }

  const size_t trials = exp::NumRuns(10);  // paper: 10 trials
  exp::AsciiTable out({"epsilon", "b", "Conf' mean", "Conf' SE",
                       "relerr(ans1) mean", "relerr(ans1) SE",
                       "relerr(ans2) mean", "relerr(ans2) SE"});
  double true_conf = 0.0;
  uint64_t ans1 = 0, ans2 = 0;
  for (double epsilon : {0.01, 0.1, 0.5}) {
    auto mech = dp::LaplaceMechanism::Make(epsilon, /*sensitivity=*/2.0);
    dp::CountQueryEngine engine(&*data, *mech);
    Rng attack_rng(uint64_t(epsilon * 1000) + 7);
    auto report = dp::RunRatioAttack(engine, *q1, *q2, trials, attack_rng);
    if (!report.ok()) {
      std::cerr << report.status() << "\n";
      return 1;
    }
    true_conf = report->true_confidence;
    ans1 = report->true_ans1;
    ans2 = report->true_ans2;
    out.AddRow({FormatDouble(epsilon, 3), FormatDouble(mech->scale(), 4),
                FormatDouble(report->conf.mean, 6),
                FormatDouble(report->conf.standard_error, 6),
                FormatDouble(report->rel_err_q1.mean, 6),
                FormatDouble(report->rel_err_q1.standard_error, 6),
                FormatDouble(report->rel_err_q2.mean, 6),
                FormatDouble(report->rel_err_q2.standard_error, 6)});
  }
  std::cout << "rule: {Prof-school, Prof-specialty, White, Male} -> >50K\n"
            << "ans1 = " << ans1 << ", ans2 = " << ans2
            << ", Conf = " << FormatDouble(true_conf, 4)
            << "  (paper: 501, 420, 0.8383)\n"
            << "trials per setting: " << trials << "\n\n";
  out.Print(std::cout);
  std::cout << "\npaper shape: at eps=0.5, Conf' within ~1% of Conf with "
               "small SE while answer\nerrors are small; at eps=0.01 the "
               "estimate is useless but so are the answers.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
