// Reproduces Table 2 (paper §2): the disclosure-condition indicator
// 2 (b/x)^2 over the grid b in {10, 20, 40, 200} x x in {5000...100},
// plus the epsilon corresponding to each b at sensitivity 2.
//
// This table is analytic (Corollary 2); the bench also cross-validates two
// grid cells against Monte-Carlo ratio moments.

#include <cmath>
#include <iostream>

#include "common/random.h"
#include "common/string_util.h"
#include "exp/reporting.h"
#include "stats/ratio_estimator.h"

namespace {

using namespace recpriv;  // NOLINT

int Run() {
  exp::PrintBanner(std::cout, "Table 2: disclosure condition 2(b/x)^2",
                   "EDBT'15 Table 2 (Corollary 2)");

  const double xs[] = {5000, 1000, 500, 200, 100};
  const double bs[] = {10, 20, 40, 200};

  exp::AsciiTable out(
      {"b (eps@delta=2)", "x=5000", "x=1000", "x=500", "x=200", "x=100"});
  for (double b : bs) {
    std::vector<std::string> row;
    row.push_back(FormatDouble(b, 4) + " (eps=" + FormatDouble(2.0 / b, 3) +
                  ")");
    for (double x : xs) {
      row.push_back(FormatDouble(stats::LaplaceRatioBiasBound(b, x), 4));
    }
    out.AddRow(std::move(row));
  }
  out.Print(std::cout);

  std::cout << "\nrule of thumb: b/x <= 1/20 (cells <= 0.005) makes Y/X a "
               "good indicator of y/x.\n";

  // Monte-Carlo cross-check of the bound at two cells.
  std::cout << "\nMonte-Carlo cross-check (|E[Y/X] - y/x| vs bound, y = "
               "0.8 x, 200k draws):\n";
  Rng rng(42);
  for (auto [b, x] : {std::pair<double, double>{20, 500},
                      std::pair<double, double>{40, 200}}) {
    const double y = 0.8 * x;
    double sum = 0.0;
    const int reps = 200000;
    for (int i = 0; i < reps; ++i) {
      sum += (y + SampleLaplace(rng, b)) / (x + SampleLaplace(rng, b));
    }
    const double bias = std::abs(sum / reps - y / x);
    std::cout << "  b=" << b << " x=" << x << ": |bias| = "
              << FormatDouble(bias, 4)
              << " <= " << FormatDouble(stats::LaplaceRatioBiasBound(b, x), 4)
              << (bias <= stats::LaplaceRatioBiasBound(b, x) ? "  OK" : "  !!")
              << "\n";
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
