// Tests for the Eq. (4) two-sample binned chi-squared test.

#include "stats/chi_squared.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace recpriv::stats {
namespace {

TEST(ChiSquaredTest, IdenticalHistogramsDoNotReject) {
  std::vector<uint64_t> a{500, 300, 200};
  auto r = TwoSampleBinnedChiSquared(a, a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->statistic, 0.0, 1e-9);
  EXPECT_FALSE(r->reject_null);
  EXPECT_EQ(r->df, 3.0);
}

TEST(ChiSquaredTest, ProportionalHistogramsDoNotReject) {
  // Same distribution, different totals: statistic is exactly zero.
  std::vector<uint64_t> a{500, 300, 200};
  std::vector<uint64_t> b{50, 30, 20};
  auto r = TwoSampleBinnedChiSquared(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->statistic, 0.0, 1e-9);
  EXPECT_FALSE(r->reject_null);
}

TEST(ChiSquaredTest, VeryDifferentHistogramsReject) {
  std::vector<uint64_t> a{900, 100};
  std::vector<uint64_t> b{100, 900};
  auto r = TwoSampleBinnedChiSquared(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->reject_null);
  EXPECT_GT(r->statistic, r->critical_value);
  EXPECT_LT(r->p_value, 0.001);
}

TEST(ChiSquaredTest, EmptyBinsAreSkipped) {
  std::vector<uint64_t> a{500, 0, 500};
  std::vector<uint64_t> b{480, 0, 520};
  auto r = TwoSampleBinnedChiSquared(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->reject_null);
}

TEST(ChiSquaredTest, SmallSamplesLackPower) {
  // n = 12 vs 10 with a moderate difference: cannot reject at 0.05.
  std::vector<uint64_t> a{8, 4};
  std::vector<uint64_t> b{4, 6};
  auto r = TwoSampleBinnedChiSquared(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->reject_null);
}

TEST(ChiSquaredTest, SignificanceControlsThreshold) {
  // A borderline pair: rejected at a loose significance, kept at a strict
  // one.
  std::vector<uint64_t> a{520, 480};
  std::vector<uint64_t> b{455, 545};
  auto strict = TwoSampleBinnedChiSquared(a, b, 0.001);
  auto loose = TwoSampleBinnedChiSquared(a, b, 0.2);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_GT(strict->critical_value, loose->critical_value);
  EXPECT_TRUE(loose->reject_null);
  EXPECT_FALSE(strict->reject_null);
}

TEST(ChiSquaredTest, InvalidInputs) {
  std::vector<uint64_t> a{1, 2};
  std::vector<uint64_t> b{1, 2, 3};
  EXPECT_FALSE(TwoSampleBinnedChiSquared(a, b).ok());
  EXPECT_FALSE(TwoSampleBinnedChiSquared({}, {}).ok());
  EXPECT_FALSE(TwoSampleBinnedChiSquared({0, 0}, {1, 1}).ok());
  EXPECT_FALSE(TwoSampleBinnedChiSquared(a, a, 0.0).ok());
  EXPECT_FALSE(TwoSampleBinnedChiSquared(a, a, 1.0).ok());
}

TEST(ChiSquaredTest, FalsePositiveRateIsNearSignificance) {
  // Draw many same-distribution pairs; the rejection rate should be below
  // ~ the significance level (conservative because df is set to m while
  // the two-bin statistic has fewer effective degrees of freedom).
  Rng rng(123);
  const double p = 0.3;
  const int pairs = 400;
  int rejections = 0;
  for (int i = 0; i < pairs; ++i) {
    std::vector<uint64_t> a(2, 0), b(2, 0);
    uint64_t heads_a = SampleBinomial(rng, 1000, p);
    uint64_t heads_b = SampleBinomial(rng, 800, p);
    a = {heads_a, 1000 - heads_a};
    b = {heads_b, 800 - heads_b};
    auto r = TwoSampleBinnedChiSquared(a, b);
    ASSERT_TRUE(r.ok());
    rejections += r->reject_null;
  }
  EXPECT_LT(rejections / double(pairs), 0.08);
}

TEST(SameImpactTest, WrapsDecision) {
  std::vector<uint64_t> a{900, 100};
  std::vector<uint64_t> b{880, 120};
  std::vector<uint64_t> c{100, 900};
  EXPECT_TRUE(*SameImpactOnSA(a, b));
  EXPECT_FALSE(*SameImpactOnSA(a, c));
}

}  // namespace
}  // namespace recpriv::stats
