// Tests for the special functions against published reference values
// (Abramowitz & Stegun / standard chi-squared tables).

#include "stats/special_functions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace recpriv::stats {
namespace {

TEST(LogGammaTest, IntegerFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(11.0), std::log(3628800.0), 1e-9);
}

TEST(LogGammaTest, HalfInteger) {
  // Gamma(1/2) = sqrt(pi).
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
  // Gamma(3/2) = sqrt(pi)/2.
  EXPECT_NEAR(LogGamma(1.5), std::log(std::sqrt(M_PI) / 2.0), 1e-10);
}

TEST(LogGammaTest, RecurrenceHolds) {
  // Gamma(x+1) = x Gamma(x)  =>  lgamma(x+1) - lgamma(x) = ln x.
  for (double x : {0.7, 1.3, 4.5, 20.0, 123.25}) {
    EXPECT_NEAR(LogGamma(x + 1.0) - LogGamma(x), std::log(x), 1e-9);
  }
}

TEST(RegularizedGammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 30.0), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(RegularizedGammaTest, PPlusQIsOne) {
  for (double a : {0.5, 1.0, 3.7, 25.0}) {
    for (double x : {0.1, 1.0, 3.0, 10.0, 40.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-12);
    }
  }
}

TEST(ChiSquaredCdfTest, MedianOfDf2) {
  // For df=2 the chi-squared is Exp(1/2): CDF(x) = 1 - exp(-x/2).
  for (double x : {0.5, 1.0, 2.0, 5.99, 10.0}) {
    EXPECT_NEAR(ChiSquaredCdf(x, 2.0), 1.0 - std::exp(-x / 2.0), 1e-12);
  }
}

TEST(ChiSquaredQuantileTest, StandardCriticalValues) {
  // Classic 95th-percentile table values.
  EXPECT_NEAR(ChiSquaredQuantile(0.95, 1), 3.841, 5e-3);
  EXPECT_NEAR(ChiSquaredQuantile(0.95, 2), 5.991, 5e-3);
  EXPECT_NEAR(ChiSquaredQuantile(0.95, 5), 11.070, 5e-3);
  EXPECT_NEAR(ChiSquaredQuantile(0.95, 10), 18.307, 5e-3);
  EXPECT_NEAR(ChiSquaredQuantile(0.95, 50), 67.505, 5e-3);
  // 99th percentile.
  EXPECT_NEAR(ChiSquaredQuantile(0.99, 2), 9.210, 5e-3);
  EXPECT_NEAR(ChiSquaredQuantile(0.99, 10), 23.209, 5e-3);
}

TEST(ChiSquaredQuantileTest, InvertsCdf) {
  for (double df : {1.0, 2.0, 7.0, 50.0}) {
    for (double prob : {0.05, 0.5, 0.9, 0.95, 0.999}) {
      const double q = ChiSquaredQuantile(prob, df);
      EXPECT_NEAR(ChiSquaredCdf(q, df), prob, 1e-9)
          << "df=" << df << " prob=" << prob;
    }
  }
}

TEST(ChiSquaredCdfTest, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x <= 30.0; x += 0.5) {
    double c = ChiSquaredCdf(x, 5.0);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(ErfTest, ReferenceValues) {
  EXPECT_DOUBLE_EQ(Erf(0.0), 0.0);
  EXPECT_NEAR(Erf(1.0), 0.8427007929, 1e-9);
  EXPECT_NEAR(Erf(-1.0), -0.8427007929, 1e-9);
  EXPECT_NEAR(Erf(2.0), 0.9953222650, 1e-9);
}

TEST(NormalCdfTest, StandardValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.9750021, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.96), 0.0249979, 1e-6);
}

}  // namespace
}  // namespace recpriv::stats
