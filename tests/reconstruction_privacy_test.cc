// Tests for the (lambda, delta)-reconstruction-privacy criterion:
// Eq. (10) closed form, Corollary 4 test, and consistency with the
// Chernoff-bound diagnostics.

#include "core/reconstruction_privacy.h"

#include <gtest/gtest.h>

#include <cmath>

namespace recpriv::core {
namespace {

PrivacyParams Params(double lambda, double delta, double p, size_t m) {
  PrivacyParams params;
  params.lambda = lambda;
  params.delta = delta;
  params.retention_p = p;
  params.domain_m = m;
  return params;
}

TEST(PrivacyParamsTest, Validation) {
  EXPECT_TRUE(Params(0.3, 0.3, 0.5, 2).Validate().ok());
  EXPECT_FALSE(Params(0.0, 0.3, 0.5, 2).Validate().ok());
  EXPECT_FALSE(Params(0.3, -0.1, 0.5, 2).Validate().ok());
  EXPECT_FALSE(Params(0.3, 1.1, 0.5, 2).Validate().ok());
  EXPECT_FALSE(Params(0.3, 0.3, 0.0, 2).Validate().ok());
  EXPECT_FALSE(Params(0.3, 0.3, 1.0, 2).Validate().ok());
  EXPECT_FALSE(Params(0.3, 0.3, 0.5, 1).Validate().ok());
}

TEST(MaxGroupSizeTest, MatchesEq10ClosedForm) {
  // s_g = -2 (f p + (1-p)/m) ln(delta) / (lambda p f)^2.
  const double lambda = 0.3, delta = 0.3, p = 0.5, f = 0.6;
  const size_t m = 2;
  const double expected = -2.0 * (f * p + (1 - p) / m) * std::log(delta) /
                          ((lambda * p * f) * (lambda * p * f));
  EXPECT_NEAR(MaxGroupSize(Params(lambda, delta, p, m), f), expected, 1e-9);
}

TEST(MaxGroupSizeTest, PaperFigure1Shape) {
  // Figure 1: s_g decreases in f and (for fixed f) increases as p falls.
  auto params_p5 = Params(0.3, 0.3, 0.5, 2);
  EXPECT_GT(MaxGroupSize(params_p5, 0.5), MaxGroupSize(params_p5, 0.7));
  EXPECT_GT(MaxGroupSize(params_p5, 0.7), MaxGroupSize(params_p5, 0.9));

  auto params_p3 = Params(0.3, 0.3, 0.3, 2);
  auto params_p7 = Params(0.3, 0.3, 0.7, 2);
  EXPECT_GT(MaxGroupSize(params_p3, 0.7), MaxGroupSize(params_p7, 0.7));
}

TEST(MaxGroupSizeTest, SmallFrequencyBoostsThreshold) {
  // CENSUS effect: f small => s_g large (paper §6.1 discussion of Fig. 1).
  auto params = Params(0.3, 0.3, 0.5, 50);
  EXPECT_GT(MaxGroupSize(params, 0.05), MaxGroupSize(params, 0.5));
  EXPECT_GT(MaxGroupSize(params, 0.05), 1000.0);
}

TEST(MaxGroupSizeTest, DegenerateParameters) {
  EXPECT_TRUE(std::isinf(MaxGroupSize(Params(0.3, 0.3, 0.5, 2), 0.0)));
  EXPECT_TRUE(std::isinf(MaxGroupSize(Params(0.3, 0.0, 0.5, 2), 0.5)));
  EXPECT_EQ(MaxGroupSize(Params(0.3, 1.0, 0.5, 2), 0.5), 0.0);
}

TEST(MaxGroupSizeTest, LambdaBeyondLowerTailUsesUpperBound) {
  // For lambda > 1 + ((1-p)/m)/(p f) the lower-tail Chernoff form does not
  // apply and the threshold switches to the upper-tail expression. It must
  // remain positive, finite, and decreasing in lambda (the exponent
  // omega^2/(2+omega) grows with omega).
  stats::GroupBoundParams g{1.0, 0.9, 0.5, 2.0};
  const double lambda_max = stats::MaxLambdaForLowerTail(g);
  const double s_at = MaxGroupSize(Params(lambda_max, 0.3, 0.5, 2), 0.9);
  const double s_beyond =
      MaxGroupSize(Params(lambda_max * 1.5, 0.3, 0.5, 2), 0.9);
  EXPECT_GT(s_at, 0.0);
  EXPECT_GT(s_beyond, 0.0);
  EXPECT_TRUE(std::isfinite(s_beyond));
  EXPECT_LT(s_beyond, s_at);
}

TEST(MaxGroupSizeTest, MonotoneDecreasingInLambdaTimesConstant) {
  // s_g ~ 1/lambda^2: doubling lambda quarters the threshold (within the
  // lower-tail regime).
  auto p1 = Params(0.1, 0.3, 0.5, 10);
  auto p2 = Params(0.2, 0.3, 0.5, 10);
  EXPECT_NEAR(MaxGroupSize(p1, 0.3) / MaxGroupSize(p2, 0.3), 4.0, 1e-9);
}

TEST(MaxGroupSizeTest, LogarithmicInDelta) {
  auto d1 = Params(0.3, 0.5, 0.5, 10);
  auto d2 = Params(0.3, 0.25, 0.5, 10);
  EXPECT_NEAR(MaxGroupSize(d2, 0.3) / MaxGroupSize(d1, 0.3),
              std::log(0.25) / std::log(0.5), 1e-9);
}

TEST(CorollaryFourTest, ThresholdIsSharp) {
  auto params = Params(0.3, 0.3, 0.5, 2);
  const double f = 0.7;
  const double s = MaxGroupSize(params, f);
  EXPECT_TRUE(ValueIsPrivate(params, uint64_t(std::floor(s)), f));
  EXPECT_FALSE(ValueIsPrivate(params, uint64_t(std::ceil(s)) + 1, f));
}

TEST(CorollaryFourTest, ZeroFrequencyAlwaysPrivate) {
  auto params = Params(0.3, 0.3, 0.5, 2);
  EXPECT_TRUE(ValueIsPrivate(params, 1'000'000'000ULL, 0.0));
}

TEST(CorollaryFourTest, ConsistentWithBestTailBound) {
  // A value is private iff the best Chernoff bound is >= delta, within the
  // lower-tail lambda range. Cross-check the two code paths on a grid.
  for (double p : {0.3, 0.5, 0.7}) {
    for (double f : {0.1, 0.4, 0.8}) {
      for (uint64_t size : {10ULL, 100ULL, 1000ULL, 20000ULL}) {
        auto params = Params(0.3, 0.3, p, 4);
        const bool via_threshold = ValueIsPrivate(params, size, f);
        const bool via_bound = BestTailBound(params, size, f) >= 0.3;
        EXPECT_EQ(via_threshold, via_bound)
            << "p=" << p << " f=" << f << " size=" << size;
      }
    }
  }
}

TEST(GroupIsPrivateTest, UsesMaxFrequency) {
  recpriv::table::PersonalGroup g;
  g.rows.resize(1000);
  g.sa_counts = {800, 200};
  auto params = Params(0.3, 0.3, 0.5, 2);
  EXPECT_EQ(GroupIsPrivate(params, g),
            GroupIsPrivate(params, 1000, 0.8));
  EXPECT_FALSE(GroupIsPrivate(params, g));  // 1000 > s_g(0.8) ~ 90
}

TEST(BestTailBoundTest, OneForZeroFrequency) {
  EXPECT_EQ(BestTailBound(Params(0.3, 0.3, 0.5, 2), 100, 0.0), 1.0);
}

TEST(BestTailBoundTest, DecaysWithGroupSize) {
  auto params = Params(0.3, 0.3, 0.5, 2);
  double prev = 1.1;
  for (uint64_t size : {10ULL, 100ULL, 1000ULL, 10000ULL}) {
    double bound = BestTailBound(params, size, 0.6);
    EXPECT_LT(bound, prev);
    prev = bound;
  }
}

}  // namespace
}  // namespace recpriv::core
