// Integration tests: the full publish pipeline of the paper —
// generate -> generalize -> audit -> enforce (SPS) -> reconstruct -> query —
// exercised end-to-end on small but realistic datasets.

#include <gtest/gtest.h>

#include "core/generalization.h"
#include "core/reconstruction_privacy.h"
#include "core/sps.h"
#include "core/violation.h"
#include "datagen/adult.h"
#include "datagen/census.h"
#include "exp/experiment.h"
#include "perturb/mle.h"
#include "perturb/uniform_perturbation.h"
#include "query/evaluation.h"
#include "query/query_pool.h"
#include "table/group_index.h"

namespace recpriv {
namespace {

using core::PrivacyParams;
using exp::PreparedDataset;
using table::GroupIndex;
using table::Table;

TEST(IntegrationTest, AdultPipelineEndToEnd) {
  auto ds = exp::PrepareAdult(8000, 300, 2015);
  ASSERT_TRUE(ds.ok()) << ds.status();

  // Generalization shrinks the group space.
  EXPECT_LT(ds->index.num_groups(), ds->raw_index.num_groups());
  EXPECT_EQ(ds->index.num_records(), 8000u);
  EXPECT_EQ(ds->pool.size(), 300u);

  // Violations exist under plain UP on the generalized groups.
  PrivacyParams params = exp::DefaultParams(2);
  core::ViolationReport before = core::AuditViolations(ds->index, params);
  EXPECT_GT(before.violating_groups, 0u);

  // SPS releases a table of roughly the same size, with sampled groups.
  Rng rng(1);
  auto sps = core::SpsPerturbTable(params, ds->generalized, rng);
  ASSERT_TRUE(sps.ok());
  EXPECT_EQ(sps->stats.groups_sampled, before.violating_groups);
  EXPECT_NEAR(double(sps->table.num_rows()), 8000.0, 0.15 * 8000.0);
}

TEST(IntegrationTest, SpsOutputsSampledWithinCapEverywhere) {
  auto ds = exp::PrepareAdult(6000, 0, 7);
  ASSERT_TRUE(ds.ok());
  PrivacyParams params = exp::DefaultParams(2);
  Rng rng(3);
  // Count-level run over every generalized personal group: each sampled
  // group's trial count must respect Eq. (10) — Theorem 4's premise.
  for (const auto& g : ds->index.groups()) {
    auto r = core::SpsPerturbGroupCounts(params, g.sa_counts, rng);
    ASSERT_TRUE(r.ok());
    if (r->sampled) {
      const double s_g = core::MaxGroupSize(params, g.MaxFrequency());
      EXPECT_LE(double(r->sample_size), s_g + double(params.domain_m));
    }
  }
}

TEST(IntegrationTest, AggregateReconstructionStaysAccurate) {
  // Theorem 5 in action: aggregate over ALL groups, reconstruct the global
  // SA distribution from the SPS release, compare with truth.
  auto ds = exp::PrepareAdult(20000, 0, 2015);
  ASSERT_TRUE(ds.ok());
  PrivacyParams params = exp::DefaultParams(2);
  const perturb::UniformPerturbation up{params.retention_p, params.domain_m};

  auto truth = ds->generalized.SaHistogram();
  const double true_f1 = double(truth[1]) / 20000.0;

  Rng rng(11);
  double sum = 0.0;
  const int runs = 30;
  for (int i = 0; i < runs; ++i) {
    auto sps = *query::SpsAllGroups(ds->flat_index, params, rng);
    uint64_t o1 = 0, total = 0;
    for (size_t gi = 0; gi < sps.observed.size(); ++gi) {
      o1 += sps.observed[gi][1];
      total += sps.sizes[gi];
    }
    sum += perturb::MleFrequency(up, o1, total);
  }
  EXPECT_NEAR(sum / runs, true_f1, 0.02);
}

TEST(IntegrationTest, PersonalReconstructionDegradedBySps) {
  // The split-role principle measured directly: pick the largest violating
  // group; the MLE error for its top SA value is much worse under SPS than
  // under plain UP.
  auto ds = exp::PrepareAdult(30000, 0, 2015);
  ASSERT_TRUE(ds.ok());
  PrivacyParams params = exp::DefaultParams(2);
  const perturb::UniformPerturbation up{params.retention_p, params.domain_m};

  const table::PersonalGroup* target = nullptr;
  for (const auto& g : ds->index.groups()) {
    if (!core::GroupIsPrivate(params, g)) {
      if (target == nullptr || g.size() > target->size()) target = &g;
    }
  }
  ASSERT_NE(target, nullptr) << "no violating group found";
  const double f = target->MaxFrequency();
  size_t sa = 0;
  for (size_t i = 0; i < target->sa_counts.size(); ++i) {
    if (target->Frequency(i) == f) sa = i;
  }

  Rng rng(13);
  const int runs = 200;
  double up_sq = 0.0, sps_sq = 0.0;
  for (int i = 0; i < runs; ++i) {
    auto up_obs = *perturb::PerturbCounts(up, target->sa_counts, rng);
    double up_est = perturb::MleFrequency(up, up_obs[sa], target->size());
    up_sq += (up_est - f) * (up_est - f);

    auto sps_r = *core::SpsPerturbGroupCounts(params, target->sa_counts, rng);
    uint64_t total = 0;
    for (uint64_t c : sps_r.observed) total += c;
    ASSERT_GT(total, 0u);
    double sps_est = perturb::MleFrequency(up, sps_r.observed[sa], total);
    sps_sq += (sps_est - f) * (sps_est - f);
  }
  // SPS inflates the personal-reconstruction MSE substantially.
  EXPECT_GT(sps_sq, 3.0 * up_sq);
}

TEST(IntegrationTest, CensusPipelineSmall) {
  auto ds = exp::PrepareCensus(40000, 300, 2015);
  ASSERT_TRUE(ds.ok()) << ds.status();
  // Age collapses; the generalized group space is near 2*14*6*9.
  EXPECT_EQ(ds->plan.merges[0].domain_after, 1u);
  EXPECT_LE(ds->index.num_groups(), 1512u);
  EXPECT_GT(ds->index.num_groups(), 400u);

  PrivacyParams params = exp::DefaultParams(50);
  Rng rng(5);
  auto point = exp::MeasureRelativeError(ds->flat_index, ds->pool, params, 3, rng);
  ASSERT_TRUE(point.ok());
  // UP is accurate; SPS stays close (the paper's CENSUS utility claim).
  EXPECT_LT(point->up.mean, 0.5);
  EXPECT_GE(point->sps.mean, point->up.mean * 0.8);
}

TEST(IntegrationTest, RecordAndCountEvaluationsAgree) {
  // The count-level fast path used by the sweep harness must agree with a
  // record-level SPS release evaluated the long way.
  auto ds = exp::PrepareAdult(10000, 200, 42);
  ASSERT_TRUE(ds.ok());
  PrivacyParams params = exp::DefaultParams(2);
  const double p = params.retention_p;

  // Record path: materialize D*2, index it, and build PerturbedGroups from
  // its observed histograms keyed by the same NA codes.
  Rng rng_rec(21);
  auto sps_table = *core::SpsPerturbTable(params, ds->generalized, rng_rec);
  GroupIndex out_idx = GroupIndex::Build(sps_table.table);
  query::PerturbedGroups from_records;
  from_records.observed.resize(ds->index.num_groups());
  from_records.sizes.resize(ds->index.num_groups(), 0);
  for (size_t gi = 0; gi < ds->index.num_groups(); ++gi) {
    from_records.observed[gi].assign(params.domain_m, 0);
    auto found = out_idx.FindGroup(ds->index.groups()[gi].na_codes);
    if (found.ok()) {
      const auto& g = out_idx.groups()[*found];
      from_records.observed[gi] = g.sa_counts;
      from_records.sizes[gi] = g.size();
    }
  }
  auto rec_result =
      query::EvaluateRelativeError(ds->pool, ds->flat_index, from_records, p);

  // Count path, averaged over a few runs to smooth run-to-run noise.
  Rng rng_cnt(22);
  double count_err = 0.0;
  const int runs = 5;
  for (int i = 0; i < runs; ++i) {
    auto sps_counts = *query::SpsAllGroups(ds->flat_index, params, rng_cnt);
    count_err += query::EvaluateRelativeError(ds->pool, ds->flat_index,
                                              sps_counts, p)
                     .mean_relative_error;
  }
  count_err /= runs;
  EXPECT_NEAR(rec_result.mean_relative_error, count_err,
              0.5 * count_err + 0.02);
}

TEST(IntegrationTest, EnvOverridesAreHonoured) {
  EXPECT_EQ(exp::NumRuns(10), 10u);  // no env var in tests
  EXPECT_FALSE(exp::FullScale());
  auto params = exp::DefaultParams(7);
  EXPECT_EQ(params.domain_m, 7u);
  EXPECT_DOUBLE_EQ(params.lambda, 0.3);
  EXPECT_DOUBLE_EQ(params.delta, 0.3);
  EXPECT_DOUBLE_EQ(params.retention_p, 0.5);
}

}  // namespace
}  // namespace recpriv
