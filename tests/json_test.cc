// Tests for the JSON model, writer, and parser.

#include "common/json.h"

#include <gtest/gtest.h>

namespace recpriv {
namespace {

TEST(JsonTest, BuildAndAccess) {
  JsonValue root = JsonValue::Object();
  root.Set("name", JsonValue::String("recpriv"));
  root.Set("p", JsonValue::Number(0.5));
  root.Set("m", JsonValue::Int(50));
  root.Set("ok", JsonValue::Bool(true));
  root.Set("nothing", JsonValue::Null());
  JsonValue& arr = root.Set("values", JsonValue::Array());
  arr.Append(JsonValue::Int(1));
  arr.Append(JsonValue::Int(2));

  EXPECT_EQ(*(*root.Get("name"))->AsString(), "recpriv");
  EXPECT_DOUBLE_EQ(*(*root.Get("p"))->AsDouble(), 0.5);
  EXPECT_EQ(*(*root.Get("m"))->AsInt(), 50);
  EXPECT_TRUE(*(*root.Get("ok"))->AsBool());
  EXPECT_TRUE((*root.Get("nothing"))->is_null());
  EXPECT_EQ((*root.Get("values"))->size(), 2u);
  EXPECT_EQ(*(*(*root.Get("values"))->At(1))->AsInt(), 2);
  EXPECT_FALSE(root.Get("missing").ok());
}

TEST(JsonTest, TypeErrors) {
  JsonValue s = JsonValue::String("x");
  EXPECT_FALSE(s.AsBool().ok());
  EXPECT_FALSE(s.AsDouble().ok());
  JsonValue n = JsonValue::Number(1.5);
  EXPECT_FALSE(n.AsInt().ok());  // non-integral
  EXPECT_FALSE(n.AsString().ok());
  EXPECT_FALSE(n.Get("k").ok());
  EXPECT_FALSE(n.At(0).ok());
}

TEST(JsonTest, CompactSerialization) {
  JsonValue root = JsonValue::Object();
  root.Set("a", JsonValue::Int(1));
  root.Set("b", JsonValue::String("x"));
  EXPECT_EQ(root.ToString(), "{\"a\":1,\"b\":\"x\"}");
}

TEST(JsonTest, StringEscaping) {
  JsonValue v = JsonValue::String("quote\" slash\\ nl\n tab\t");
  EXPECT_EQ(v.ToString(), "\"quote\\\" slash\\\\ nl\\n tab\\t\"");
}

TEST(JsonTest, ParseScalars) {
  EXPECT_TRUE((*JsonValue::Parse("null")).is_null());
  EXPECT_TRUE(*(*JsonValue::Parse("true")).AsBool());
  EXPECT_FALSE(*(*JsonValue::Parse("false")).AsBool());
  EXPECT_DOUBLE_EQ(*(*JsonValue::Parse("-3.25e2")).AsDouble(), -325.0);
  EXPECT_EQ(*(*JsonValue::Parse("\"hi\"")).AsString(), "hi");
}

TEST(JsonTest, ParseNested) {
  auto v = JsonValue::Parse(
      R"({"outer": {"list": [1, {"x": true}, "s"], "n": 7}})");
  ASSERT_TRUE(v.ok()) << v.status();
  auto* outer = *v->Get("outer");
  auto* list = *outer->Get("list");
  EXPECT_EQ(list->size(), 3u);
  EXPECT_TRUE(*(*(*list->At(1))->Get("x"))->AsBool());
  EXPECT_EQ(*(*outer->Get("n"))->AsInt(), 7);
}

TEST(JsonTest, ParseEscapes) {
  auto v = JsonValue::Parse(R"("a\"b\\c\nA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v->AsString(), "a\"b\\c\nA");
}

TEST(JsonTest, ParseUnicodeBmp) {
  auto v = JsonValue::Parse(R"("é")");  // é
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v->AsString(), "\xC3\xA9");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("tru").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());          // trailing garbage
  // Surrogate-pair \u escapes are unsupported (raw UTF-8 bytes are fine).
  EXPECT_FALSE(JsonValue::Parse("\"\\uD834\\uDD1E\"").ok());
  EXPECT_TRUE(JsonValue::Parse("\"\xF0\x9D\x84\x9E\"").ok());
  EXPECT_FALSE(JsonValue::Parse("1.2.3").ok());
}

TEST(JsonTest, RoundTripCompact) {
  const std::string doc =
      R"({"arr":[1,2.5,"three",null,true],"obj":{"k":"v"}})";
  auto v = JsonValue::Parse(doc);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToString(), doc);
}

TEST(JsonTest, RoundTripPretty) {
  JsonValue root = JsonValue::Object();
  root.Set("x", JsonValue::Int(1));
  JsonValue& arr = root.Set("list", JsonValue::Array());
  arr.Append(JsonValue::String("a"));
  const std::string pretty = root.ToString(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto back = JsonValue::Parse(pretty);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToString(), root.ToString());
}

TEST(JsonTest, ExactIntegersSurviveAboveTwoToThe53) {
  // 2^53 + 1 is the first integer a double cannot represent; the exact-int
  // sidecar must carry it (and everything up to UINT64_MAX) through
  // build -> serialize -> parse -> accessor without rounding.
  const uint64_t cases[] = {(1ull << 53) + 1, (1ull << 60) + 7,
                            uint64_t(INT64_MAX), UINT64_MAX};
  for (uint64_t u : cases) {
    JsonValue v = JsonValue::Uint(u);
    EXPECT_EQ(v.ToString(), std::to_string(u));
    auto back = JsonValue::Parse(v.ToString());
    ASSERT_TRUE(back.ok()) << u;
    EXPECT_EQ(*back->AsUint64(), u);
  }
  JsonValue min = JsonValue::Int(INT64_MIN);
  EXPECT_EQ(min.ToString(), "-9223372036854775808");
  auto back = JsonValue::Parse(min.ToString());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back->AsInt(), INT64_MIN);
  EXPECT_FALSE(back->AsUint64().ok());  // negative
}

TEST(JsonTest, AsUint64Rejections) {
  EXPECT_FALSE(JsonValue::Number(1.5).AsUint64().ok());    // non-integral
  EXPECT_FALSE(JsonValue::Number(-1.0).AsUint64().ok());   // negative
  EXPECT_FALSE(JsonValue::Int(-1).AsUint64().ok());        // negative, exact
  EXPECT_FALSE(JsonValue::String("7").AsUint64().ok());    // wrong type
  // An integral double above 2^53 is not exact and must not be trusted.
  EXPECT_FALSE(JsonValue::Number(1e18).AsUint64().ok());
  EXPECT_FALSE((*JsonValue::Parse("1e18")).AsUint64().ok());
  // But the same magnitude in pure integer syntax parses exactly.
  EXPECT_EQ(*(*JsonValue::Parse("1000000000000000000")).AsUint64(),
            1000000000000000000ull);
  // Beyond uint64 range, integer syntax degrades to a double and is
  // rejected by the exact accessor rather than silently rounded.
  EXPECT_FALSE((*JsonValue::Parse("18446744073709551616")).AsUint64().ok());
  EXPECT_EQ(*JsonValue::Uint(0).AsUint64(), 0u);  // zero is fine
}

TEST(JsonTest, AsIntExactBounds) {
  EXPECT_EQ(*JsonValue::Int(INT64_MAX).AsInt(), INT64_MAX);
  EXPECT_EQ(*JsonValue::Int(INT64_MIN).AsInt(), INT64_MIN);
  EXPECT_FALSE(JsonValue::Uint(uint64_t(INT64_MAX) + 1).AsInt().ok());
  EXPECT_FALSE((*JsonValue::Parse("9223372036854775808")).AsInt().ok());
  EXPECT_EQ(*(*JsonValue::Parse("-9223372036854775808")).AsInt(), INT64_MIN);
  // One past INT64_MIN overflows the exact path and degrades to a double;
  // the unsigned exact accessor still rejects it for being negative.
  EXPECT_FALSE((*JsonValue::Parse("-9223372036854775809")).AsUint64().ok());
}

TEST(JsonTest, ExactIntegerOutputMatchesLegacyFormatBelow2To53) {
  // Golden transcripts pin wire bytes: exact-int nodes must print the same
  // digits the old double path produced for every value below 2^53.
  for (int64_t v : {int64_t(0), int64_t(1), int64_t(-1), int64_t(45222),
                    int64_t(-1000000), (int64_t(1) << 53) - 1}) {
    EXPECT_EQ(JsonValue::Int(v).ToString(), std::to_string(v));
  }
}

TEST(JsonTest, DeterministicKeyOrder) {
  JsonValue a = JsonValue::Object();
  a.Set("z", JsonValue::Int(1));
  a.Set("a", JsonValue::Int(2));
  JsonValue b = JsonValue::Object();
  b.Set("a", JsonValue::Int(2));
  b.Set("z", JsonValue::Int(1));
  EXPECT_EQ(a.ToString(), b.ToString());
}

}  // namespace
}  // namespace recpriv
