// Tests for the JSON model, writer, and parser.

#include "common/json.h"

#include <gtest/gtest.h>

namespace recpriv {
namespace {

TEST(JsonTest, BuildAndAccess) {
  JsonValue root = JsonValue::Object();
  root.Set("name", JsonValue::String("recpriv"));
  root.Set("p", JsonValue::Number(0.5));
  root.Set("m", JsonValue::Int(50));
  root.Set("ok", JsonValue::Bool(true));
  root.Set("nothing", JsonValue::Null());
  JsonValue& arr = root.Set("values", JsonValue::Array());
  arr.Append(JsonValue::Int(1));
  arr.Append(JsonValue::Int(2));

  EXPECT_EQ(*(*root.Get("name"))->AsString(), "recpriv");
  EXPECT_DOUBLE_EQ(*(*root.Get("p"))->AsDouble(), 0.5);
  EXPECT_EQ(*(*root.Get("m"))->AsInt(), 50);
  EXPECT_TRUE(*(*root.Get("ok"))->AsBool());
  EXPECT_TRUE((*root.Get("nothing"))->is_null());
  EXPECT_EQ((*root.Get("values"))->size(), 2u);
  EXPECT_EQ(*(*(*root.Get("values"))->At(1))->AsInt(), 2);
  EXPECT_FALSE(root.Get("missing").ok());
}

TEST(JsonTest, TypeErrors) {
  JsonValue s = JsonValue::String("x");
  EXPECT_FALSE(s.AsBool().ok());
  EXPECT_FALSE(s.AsDouble().ok());
  JsonValue n = JsonValue::Number(1.5);
  EXPECT_FALSE(n.AsInt().ok());  // non-integral
  EXPECT_FALSE(n.AsString().ok());
  EXPECT_FALSE(n.Get("k").ok());
  EXPECT_FALSE(n.At(0).ok());
}

TEST(JsonTest, CompactSerialization) {
  JsonValue root = JsonValue::Object();
  root.Set("a", JsonValue::Int(1));
  root.Set("b", JsonValue::String("x"));
  EXPECT_EQ(root.ToString(), "{\"a\":1,\"b\":\"x\"}");
}

TEST(JsonTest, StringEscaping) {
  JsonValue v = JsonValue::String("quote\" slash\\ nl\n tab\t");
  EXPECT_EQ(v.ToString(), "\"quote\\\" slash\\\\ nl\\n tab\\t\"");
}

TEST(JsonTest, ParseScalars) {
  EXPECT_TRUE((*JsonValue::Parse("null")).is_null());
  EXPECT_TRUE(*(*JsonValue::Parse("true")).AsBool());
  EXPECT_FALSE(*(*JsonValue::Parse("false")).AsBool());
  EXPECT_DOUBLE_EQ(*(*JsonValue::Parse("-3.25e2")).AsDouble(), -325.0);
  EXPECT_EQ(*(*JsonValue::Parse("\"hi\"")).AsString(), "hi");
}

TEST(JsonTest, ParseNested) {
  auto v = JsonValue::Parse(
      R"({"outer": {"list": [1, {"x": true}, "s"], "n": 7}})");
  ASSERT_TRUE(v.ok()) << v.status();
  auto* outer = *v->Get("outer");
  auto* list = *outer->Get("list");
  EXPECT_EQ(list->size(), 3u);
  EXPECT_TRUE(*(*(*list->At(1))->Get("x"))->AsBool());
  EXPECT_EQ(*(*outer->Get("n"))->AsInt(), 7);
}

TEST(JsonTest, ParseEscapes) {
  auto v = JsonValue::Parse(R"("a\"b\\c\nA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v->AsString(), "a\"b\\c\nA");
}

TEST(JsonTest, ParseUnicodeBmp) {
  auto v = JsonValue::Parse(R"("é")");  // é
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v->AsString(), "\xC3\xA9");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("tru").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());          // trailing garbage
  // Surrogate-pair \u escapes are unsupported (raw UTF-8 bytes are fine).
  EXPECT_FALSE(JsonValue::Parse("\"\\uD834\\uDD1E\"").ok());
  EXPECT_TRUE(JsonValue::Parse("\"\xF0\x9D\x84\x9E\"").ok());
  EXPECT_FALSE(JsonValue::Parse("1.2.3").ok());
}

TEST(JsonTest, RoundTripCompact) {
  const std::string doc =
      R"({"arr":[1,2.5,"three",null,true],"obj":{"k":"v"}})";
  auto v = JsonValue::Parse(doc);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToString(), doc);
}

TEST(JsonTest, RoundTripPretty) {
  JsonValue root = JsonValue::Object();
  root.Set("x", JsonValue::Int(1));
  JsonValue& arr = root.Set("list", JsonValue::Array());
  arr.Append(JsonValue::String("a"));
  const std::string pretty = root.ToString(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto back = JsonValue::Parse(pretty);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToString(), root.ToString());
}

TEST(JsonTest, DeterministicKeyOrder) {
  JsonValue a = JsonValue::Object();
  a.Set("z", JsonValue::Int(1));
  a.Set("a", JsonValue::Int(2));
  JsonValue b = JsonValue::Object();
  b.Set("a", JsonValue::Int(2));
  b.Set("z", JsonValue::Int(1));
  EXPECT_EQ(a.ToString(), b.ToString());
}

}  // namespace
}  // namespace recpriv
