// Tests for the legacy personal-group index and the posting-list index
// (which is built over the columnar FlatGroupIndex; the two layouts share
// group ids, so the posting tests cross-check against the legacy scan).

#include "table/group_index.h"

#include <gtest/gtest.h>

#include <memory>

#include "table/flat_group_index.h"

namespace recpriv::table {
namespace {

SchemaPtr MakeTestSchema() {
  std::vector<Attribute> attrs;
  attrs.push_back(
      Attribute{"Gender", *Dictionary::FromValues({"male", "female"})});
  attrs.push_back(
      Attribute{"Job", *Dictionary::FromValues({"eng", "law"})});
  attrs.push_back(
      Attribute{"Disease", *Dictionary::FromValues({"flu", "hiv", "bc"})});
  return std::make_shared<Schema>(*Schema::Make(std::move(attrs), 2));
}

Table MakeTestTable() {
  Table t(MakeTestSchema());
  // (male, eng): flu, flu, hiv    (male, law): bc
  // (female, eng): hiv, hiv       (female, law): flu, bc
  const uint32_t rows[][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 1}, {0, 1, 2},
                              {1, 0, 1}, {1, 0, 1}, {1, 1, 0}, {1, 1, 2}};
  for (const auto& r : rows) {
    EXPECT_TRUE(t.AppendRow(std::vector<uint32_t>{r[0], r[1], r[2]}).ok());
  }
  return t;
}

TEST(GroupIndexTest, BuildsAllPersonalGroups) {
  Table t = MakeTestTable();
  GroupIndex idx = GroupIndex::Build(t);
  EXPECT_EQ(idx.num_groups(), 4u);
  EXPECT_EQ(idx.num_records(), 8u);
  EXPECT_DOUBLE_EQ(idx.AverageGroupSize(), 2.0);

  size_t gi = *idx.FindGroup({0, 0});  // male, eng
  const PersonalGroup& g = idx.groups()[gi];
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.sa_counts, (std::vector<uint64_t>{2, 1, 0}));
  EXPECT_NEAR(g.Frequency(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(g.MaxFrequency(), 2.0 / 3.0, 1e-12);
}

TEST(GroupIndexTest, GroupRowsPointIntoTable) {
  Table t = MakeTestTable();
  GroupIndex idx = GroupIndex::Build(t);
  for (const auto& g : idx.groups()) {
    for (size_t r : g.rows) {
      EXPECT_EQ(t.at(r, 0), g.na_codes[0]);
      EXPECT_EQ(t.at(r, 1), g.na_codes[1]);
    }
  }
}

TEST(GroupIndexTest, SaCountsSumToGroupSize) {
  Table t = MakeTestTable();
  GroupIndex idx = GroupIndex::Build(t);
  for (const auto& g : idx.groups()) {
    uint64_t total = 0;
    for (uint64_t c : g.sa_counts) total += c;
    EXPECT_EQ(total, g.size());
  }
}

TEST(GroupIndexTest, MatchingGroupsHonoursWildcards) {
  Table t = MakeTestTable();
  GroupIndex idx = GroupIndex::Build(t);

  Predicate all(3);
  EXPECT_EQ(idx.MatchingGroups(all).size(), 4u);

  Predicate male(3);
  male.Bind(0, 0);
  EXPECT_EQ(idx.MatchingGroups(male).size(), 2u);

  Predicate male_law(3);
  male_law.Bind(0, 0);
  male_law.Bind(1, 1);
  auto matches = idx.MatchingGroups(male_law);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(idx.groups()[matches[0]].na_codes, (std::vector<uint32_t>{0, 1}));
}

TEST(GroupIndexTest, FindGroupLocatesEveryGroup) {
  // The legacy FindGroup is a binary search over the NA-sorted groups; it
  // must locate every group id and reject near-miss keys.
  Table t = MakeTestTable();
  GroupIndex idx = GroupIndex::Build(t);
  for (size_t gi = 0; gi < idx.num_groups(); ++gi) {
    auto found = idx.FindGroup(idx.groups()[gi].na_codes);
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(*found, gi);
  }
  EXPECT_FALSE(idx.FindGroup({0, 7}).ok());
  EXPECT_FALSE(idx.FindGroup({7, 0}).ok());
  EXPECT_FALSE(idx.FindGroup({0}).ok());          // short key
  EXPECT_FALSE(idx.FindGroup({0, 1, 0}).ok());    // long key
}

TEST(GroupIndexTest, FindGroupMissing) {
  Table t(MakeTestSchema());
  ASSERT_TRUE(t.AppendRow(std::vector<uint32_t>{0, 0, 0}).ok());
  GroupIndex idx = GroupIndex::Build(t);
  EXPECT_FALSE(idx.FindGroup({1, 1}).ok());
}

TEST(GroupIndexTest, EmptyTable) {
  Table t(MakeTestSchema());
  GroupIndex idx = GroupIndex::Build(t);
  EXPECT_EQ(idx.num_groups(), 0u);
  EXPECT_EQ(idx.AverageGroupSize(), 0.0);
}

TEST(GroupIndexTest, MaxFrequencyOfEmptyGroupIsZero) {
  PersonalGroup g;
  g.sa_counts = {0, 0};
  EXPECT_EQ(g.MaxFrequency(), 0.0);
  EXPECT_EQ(g.Frequency(0), 0.0);
}

TEST(GroupPostingIndexTest, AgreesWithLinearScan) {
  Table t = MakeTestTable();
  GroupIndex idx = GroupIndex::Build(t);
  FlatGroupIndex flat = FlatGroupIndex::Build(t);
  GroupPostingIndex postings(flat);

  for (int g = -1; g < 2; ++g) {
    for (int j = -1; j < 2; ++j) {
      Predicate p(3);
      if (g >= 0) p.Bind(0, uint32_t(g));
      if (j >= 0) p.Bind(1, uint32_t(j));
      auto slow = idx.MatchingGroups(p);
      auto fast = postings.MatchingGroups(p);
      std::vector<size_t> fast_sz(fast.begin(), fast.end());
      EXPECT_EQ(fast_sz, slow) << "g=" << g << " j=" << j;
    }
  }
}

TEST(GroupPostingIndexTest, CountAnswerSumsHistograms) {
  Table t = MakeTestTable();
  FlatGroupIndex flat = FlatGroupIndex::Build(t);
  GroupPostingIndex postings(flat);
  Predicate eng(3);
  eng.Bind(1, 0);  // Job = eng
  // eng groups: (male,eng) flu=2, (female,eng) flu=0.
  EXPECT_EQ(postings.CountAnswer(eng, 0), 2u);
  EXPECT_EQ(postings.CountAnswer(eng, 1), 3u);  // hiv: 1 + 2
}

TEST(GroupPostingIndexTest, OutOfDomainCodeMatchesNothing) {
  Table t = MakeTestTable();
  FlatGroupIndex flat = FlatGroupIndex::Build(t);
  GroupPostingIndex postings(flat);
  Predicate p(3);
  p.Bind(0, 77);  // no such code
  EXPECT_TRUE(postings.MatchingGroups(p).empty());
}

}  // namespace
}  // namespace recpriv::table
