// Tests for Schema, Table, and Predicate.

#include <gtest/gtest.h>

#include <memory>

#include "table/predicate.h"
#include "table/schema.h"
#include "table/table.h"

namespace recpriv::table {
namespace {

SchemaPtr MakeTestSchema() {
  std::vector<Attribute> attrs;
  attrs.push_back(
      Attribute{"Gender", *Dictionary::FromValues({"male", "female"})});
  attrs.push_back(
      Attribute{"Job", *Dictionary::FromValues({"eng", "law", "doc"})});
  attrs.push_back(
      Attribute{"Disease", *Dictionary::FromValues({"flu", "hiv", "bc"})});
  return std::make_shared<Schema>(*Schema::Make(std::move(attrs), 2));
}

TEST(SchemaTest, BasicAccessors) {
  auto schema = MakeTestSchema();
  EXPECT_EQ(schema->num_attributes(), 3u);
  EXPECT_EQ(schema->num_public(), 2u);
  EXPECT_EQ(schema->sensitive_index(), 2u);
  EXPECT_EQ(schema->sensitive().name, "Disease");
  EXPECT_EQ(schema->sa_domain_size(), 3u);
  EXPECT_EQ(schema->public_indices(), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(*schema->IndexOf("Job"), 1u);
  EXPECT_FALSE(schema->IndexOf("Nope").ok());
  EXPECT_TRUE(schema->is_sensitive(2));
  EXPECT_FALSE(schema->is_sensitive(0));
}

TEST(SchemaTest, MakeValidation) {
  EXPECT_FALSE(Schema::Make({}, 0).ok());
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"A", Dictionary()});
  EXPECT_FALSE(Schema::Make(std::move(attrs), 5).ok());

  std::vector<Attribute> dup;
  dup.push_back(Attribute{"A", Dictionary()});
  dup.push_back(Attribute{"A", Dictionary()});
  EXPECT_FALSE(Schema::Make(std::move(dup), 0).ok());
}

TEST(TableTest, AppendAndAccess) {
  Table t(MakeTestSchema());
  ASSERT_TRUE(t.AppendRow(std::vector<uint32_t>{0, 1, 2}).ok());
  ASSERT_TRUE(t.AppendRow(std::vector<uint32_t>{1, 0, 0}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, 1), 1u);
  EXPECT_EQ(*t.ValueAt(0, 2), "bc");
  EXPECT_EQ(*t.ValueAt(1, 0), "female");
}

TEST(TableTest, AppendValidation) {
  Table t(MakeTestSchema());
  EXPECT_FALSE(t.AppendRow(std::vector<uint32_t>{0, 1}).ok());      // arity
  EXPECT_FALSE(t.AppendRow(std::vector<uint32_t>{0, 9, 0}).ok());   // domain
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, ValueAtRangeChecks) {
  Table t(MakeTestSchema());
  ASSERT_TRUE(t.AppendRow(std::vector<uint32_t>{0, 0, 0}).ok());
  EXPECT_FALSE(t.ValueAt(1, 0).ok());
  EXPECT_FALSE(t.ValueAt(0, 9).ok());
}

TEST(TableTest, SaHistogram) {
  Table t(MakeTestSchema());
  for (uint32_t sa : {0u, 0u, 1u, 2u, 2u, 2u}) {
    ASSERT_TRUE(t.AppendRow(std::vector<uint32_t>{0, 0, sa}).ok());
  }
  EXPECT_EQ(t.SaHistogram(), (std::vector<uint64_t>{2, 1, 3}));
}

TEST(TableTest, SelectCopiesRows) {
  Table t(MakeTestSchema());
  for (uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(t.AppendRow(std::vector<uint32_t>{i % 2, i % 3, i % 3}).ok());
  }
  std::vector<size_t> rows{2, 0};
  Table s = t.Select(rows);
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.at(0, 1), t.at(2, 1));
  EXPECT_EQ(s.at(1, 1), t.at(0, 1));
}

TEST(TableTest, CloneIsDeep) {
  Table t(MakeTestSchema());
  ASSERT_TRUE(t.AppendRow(std::vector<uint32_t>{0, 0, 0}).ok());
  Table c = t.Clone();
  c.set(0, 2, 1);
  EXPECT_EQ(t.at(0, 2), 0u);
  EXPECT_EQ(c.at(0, 2), 1u);
}

TEST(PredicateTest, WildcardsMatchEverything) {
  Table t(MakeTestSchema());
  ASSERT_TRUE(t.AppendRow(std::vector<uint32_t>{0, 1, 2}).ok());
  Predicate p(3);
  EXPECT_EQ(p.num_bound(), 0u);
  EXPECT_TRUE(p.Matches(t, 0));
  EXPECT_EQ(p.CountMatches(t), 1u);
}

TEST(PredicateTest, BoundConditionsFilter) {
  Table t(MakeTestSchema());
  ASSERT_TRUE(t.AppendRow(std::vector<uint32_t>{0, 0, 0}).ok());
  ASSERT_TRUE(t.AppendRow(std::vector<uint32_t>{0, 1, 1}).ok());
  ASSERT_TRUE(t.AppendRow(std::vector<uint32_t>{1, 1, 2}).ok());
  Predicate p(3);
  p.Bind(0, 0);
  EXPECT_EQ(p.CountMatches(t), 2u);
  p.Bind(1, 1);
  EXPECT_EQ(p.MatchingRows(t), (std::vector<size_t>{1}));
  p.Unbind(0);
  EXPECT_EQ(p.CountMatches(t), 2u);
}

TEST(PredicateTest, FromBindings) {
  auto schema = MakeTestSchema();
  auto p = Predicate::FromBindings(
      *schema, {{"Gender", "female"}, {"Disease", "hiv"}});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->is_bound(0));
  EXPECT_EQ(p->code(0), 1u);
  EXPECT_FALSE(p->is_bound(1));
  EXPECT_EQ(p->code(2), 1u);
  EXPECT_FALSE(
      Predicate::FromBindings(*schema, {{"Nope", "x"}}).ok());
  EXPECT_FALSE(
      Predicate::FromBindings(*schema, {{"Gender", "none"}}).ok());
}

TEST(PredicateTest, ToStringShowsWildcards) {
  auto schema = MakeTestSchema();
  Predicate p(3);
  p.Bind(1, 2);
  EXPECT_EQ(p.ToString(*schema), "Gender=* AND Job=doc AND Disease=*");
}

}  // namespace
}  // namespace recpriv::table
