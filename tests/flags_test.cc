// Tests for the command-line flag parser.

#include "common/flags.h"

#include <gtest/gtest.h>

namespace recpriv {
namespace {

FlagSet Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "tool");
  return *FlagSet::Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, EqualsForm) {
  FlagSet fs = Parse({"--name=value", "--num=3.5"});
  EXPECT_EQ(fs.GetString("name"), "value");
  EXPECT_DOUBLE_EQ(*fs.GetDouble("num", 0.0), 3.5);
}

TEST(FlagsTest, SpaceForm) {
  FlagSet fs = Parse({"--input", "file.csv", "--p", "0.5"});
  EXPECT_EQ(fs.GetString("input"), "file.csv");
  EXPECT_DOUBLE_EQ(*fs.GetDouble("p", 0.0), 0.5);
}

TEST(FlagsTest, BareBooleanAndNoPrefix) {
  FlagSet fs = Parse({"--verbose", "--no-generalize"});
  EXPECT_TRUE(*fs.GetBool("verbose", false));
  EXPECT_FALSE(*fs.GetBool("generalize", true));
}

TEST(FlagsTest, BoolSpellings) {
  EXPECT_TRUE(*Parse({"--x=true"}).GetBool("x", false));
  EXPECT_TRUE(*Parse({"--x=1"}).GetBool("x", false));
  EXPECT_TRUE(*Parse({"--x=YES"}).GetBool("x", false));
  EXPECT_FALSE(*Parse({"--x=false"}).GetBool("x", true));
  EXPECT_FALSE(*Parse({"--x=0"}).GetBool("x", true));
  EXPECT_FALSE(Parse({"--x=maybe"}).GetBool("x", true).ok());
}

TEST(FlagsTest, Positional) {
  FlagSet fs = Parse({"first", "--flag=v", "second"});
  EXPECT_EQ(fs.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(FlagsTest, DoubleDashEndsFlagParsing) {
  FlagSet fs = Parse({"--a=1", "--", "--not-a-flag"});
  EXPECT_TRUE(fs.Has("a"));
  EXPECT_EQ(fs.positional(),
            (std::vector<std::string>{"--not-a-flag"}));
}

TEST(FlagsTest, Fallbacks) {
  FlagSet fs = Parse({});
  EXPECT_EQ(fs.GetString("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(*fs.GetDouble("missing", 2.5), 2.5);
  EXPECT_EQ(*fs.GetInt("missing", 7), 7);
  EXPECT_TRUE(*fs.GetBool("missing", true));
}

TEST(FlagsTest, ParseErrors) {
  FlagSet fs = Parse({"--num=abc", "--int=1.5"});
  EXPECT_FALSE(fs.GetDouble("num", 0.0).ok());
  EXPECT_FALSE(fs.GetInt("int", 0).ok());
}

TEST(FlagsTest, IntParsing) {
  FlagSet fs = Parse({"--n=-42"});
  EXPECT_EQ(*fs.GetInt("n", 0), -42);
}

TEST(FlagsTest, FlagNamesEnumerates) {
  FlagSet fs = Parse({"--b=1", "--a=2"});
  auto names = fs.FlagNames();
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));  // map order
}

FlagSet ParseWithBooleans(std::vector<const char*> args,
                          const std::vector<std::string>& boolean_flags) {
  args.insert(args.begin(), "tool");
  return *FlagSet::Parse(static_cast<int>(args.size()), args.data(),
                         boolean_flags);
}

// The recpriv_serve footgun: without the declaration, "--demo NAME=BASE"
// parses as demo="NAME=BASE" and the release silently vanishes from the
// positional list.
TEST(FlagsTest, DeclaredBooleanDoesNotSwallowPositional) {
  FlagSet fs = ParseWithBooleans({"--demo", "extra=bundles/extra"}, {"demo"});
  EXPECT_TRUE(*fs.GetBool("demo", false));
  EXPECT_EQ(fs.positional(),
            (std::vector<std::string>{"extra=bundles/extra"}));
}

TEST(FlagsTest, UndeclaredFlagStillConsumesValue) {
  FlagSet fs = ParseWithBooleans({"--name", "patients", "--demo", "x=y"},
                                 {"demo"});
  EXPECT_EQ(fs.GetString("name"), "patients");
  EXPECT_TRUE(*fs.GetBool("demo", false));
  EXPECT_EQ(fs.positional(), (std::vector<std::string>{"x=y"}));
}

TEST(FlagsTest, DeclaredBooleanEqualsAndNoFormsStillWork) {
  FlagSet fs = ParseWithBooleans({"--demo=false"}, {"demo"});
  EXPECT_FALSE(*fs.GetBool("demo", true));

  FlagSet no_form = ParseWithBooleans({"--no-demo", "a=b"}, {"demo"});
  EXPECT_FALSE(*no_form.GetBool("demo", true));
  EXPECT_EQ(no_form.positional(), (std::vector<std::string>{"a=b"}));
}

TEST(FlagsTest, BooleanDeclarationDoesNotAffectOtherFlags) {
  // Identical to the legacy two-argument Parse for everything undeclared.
  FlagSet fs = ParseWithBooleans(
      {"--threads", "4", "--verbose", "--", "--literal"}, {"help"});
  EXPECT_EQ(*fs.GetInt("threads", 0), 4);
  EXPECT_TRUE(*fs.GetBool("verbose", false));
  EXPECT_EQ(fs.positional(), (std::vector<std::string>{"--literal"}));
}

}  // namespace
}  // namespace recpriv
