// Tests for the command-line flag parser.

#include "common/flags.h"

#include <gtest/gtest.h>

namespace recpriv {
namespace {

FlagSet Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "tool");
  return *FlagSet::Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, EqualsForm) {
  FlagSet fs = Parse({"--name=value", "--num=3.5"});
  EXPECT_EQ(fs.GetString("name"), "value");
  EXPECT_DOUBLE_EQ(*fs.GetDouble("num", 0.0), 3.5);
}

TEST(FlagsTest, SpaceForm) {
  FlagSet fs = Parse({"--input", "file.csv", "--p", "0.5"});
  EXPECT_EQ(fs.GetString("input"), "file.csv");
  EXPECT_DOUBLE_EQ(*fs.GetDouble("p", 0.0), 0.5);
}

TEST(FlagsTest, BareBooleanAndNoPrefix) {
  FlagSet fs = Parse({"--verbose", "--no-generalize"});
  EXPECT_TRUE(*fs.GetBool("verbose", false));
  EXPECT_FALSE(*fs.GetBool("generalize", true));
}

TEST(FlagsTest, BoolSpellings) {
  EXPECT_TRUE(*Parse({"--x=true"}).GetBool("x", false));
  EXPECT_TRUE(*Parse({"--x=1"}).GetBool("x", false));
  EXPECT_TRUE(*Parse({"--x=YES"}).GetBool("x", false));
  EXPECT_FALSE(*Parse({"--x=false"}).GetBool("x", true));
  EXPECT_FALSE(*Parse({"--x=0"}).GetBool("x", true));
  EXPECT_FALSE(Parse({"--x=maybe"}).GetBool("x", true).ok());
}

TEST(FlagsTest, Positional) {
  FlagSet fs = Parse({"first", "--flag=v", "second"});
  EXPECT_EQ(fs.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(FlagsTest, DoubleDashEndsFlagParsing) {
  FlagSet fs = Parse({"--a=1", "--", "--not-a-flag"});
  EXPECT_TRUE(fs.Has("a"));
  EXPECT_EQ(fs.positional(),
            (std::vector<std::string>{"--not-a-flag"}));
}

TEST(FlagsTest, Fallbacks) {
  FlagSet fs = Parse({});
  EXPECT_EQ(fs.GetString("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(*fs.GetDouble("missing", 2.5), 2.5);
  EXPECT_EQ(*fs.GetInt("missing", 7), 7);
  EXPECT_TRUE(*fs.GetBool("missing", true));
}

TEST(FlagsTest, ParseErrors) {
  FlagSet fs = Parse({"--num=abc", "--int=1.5"});
  EXPECT_FALSE(fs.GetDouble("num", 0.0).ok());
  EXPECT_FALSE(fs.GetInt("int", 0).ok());
}

TEST(FlagsTest, IntParsing) {
  FlagSet fs = Parse({"--n=-42"});
  EXPECT_EQ(*fs.GetInt("n", 0), -42);
}

TEST(FlagsTest, FlagNamesEnumerates) {
  FlagSet fs = Parse({"--b=1", "--a=2"});
  auto names = fs.FlagNames();
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));  // map order
}

}  // namespace
}  // namespace recpriv
