// Tests for the typed client API and wire protocol v2: the error-code
// taxonomy, ReleaseStore epoch retention + Drop, both client backends
// (in-process and line-protocol over a loopback transport), v1/v2
// compatibility, wire error paths (malformed JSON, unknown op, wrong-type
// fields, unknown attribute/value, stale pinned epoch, id echo), the
// publish/drop/schema admin ops, per-release stats, and a property test
// that the two backends return identical answers and identical errors for
// the same requests.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "client/api.h"
#include "client/in_process_client.h"
#include "client/line_protocol_client.h"
#include "common/json.h"
#include "common/random.h"
#include "core/sps.h"
#include "datagen/simple.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"
#include "serve/wire.h"

namespace recpriv::client {
namespace {

using recpriv::analysis::ReleaseBundle;
using recpriv::core::PrivacyParams;
using recpriv::datagen::GroupSpec;
using recpriv::datagen::SimpleDatasetSpec;
using recpriv::serve::QueryEngine;
using recpriv::serve::QueryEngineOptions;
using recpriv::serve::ReleaseStore;
using recpriv::table::Table;

// --- fixtures --------------------------------------------------------------

SimpleDatasetSpec MakeSpec() {
  SimpleDatasetSpec spec;
  spec.public_attributes = {"Job", "City"};
  spec.sensitive_attribute = "Disease";
  spec.sa_domain = {"flu", "hiv", "bc"};
  spec.groups.push_back(GroupSpec{{"eng", "north"}, 4000, {70, 20, 10}});
  spec.groups.push_back(GroupSpec{{"eng", "south"}, 3000, {70, 20, 10}});
  spec.groups.push_back(GroupSpec{{"law", "north"}, 2000, {20, 30, 50}});
  spec.groups.push_back(GroupSpec{{"law", "south"}, 1000, {20, 30, 50}});
  return spec;
}

ReleaseBundle MakeBundle(uint64_t seed = 2015) {
  Table raw = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  PrivacyParams params;
  params.domain_m = raw.schema()->sa_domain_size();
  Rng rng(seed);
  auto sps = *recpriv::core::SpsPerturbTable(params, raw, rng);
  return ReleaseBundle{std::move(sps.table), params, "Disease", {}};
}

/// A store + engine + both client backends over the same engine, with
/// MakeBundle() published under "simple".
struct Backends {
  std::shared_ptr<ReleaseStore> store;
  std::shared_ptr<QueryEngine> engine;
  std::unique_ptr<InProcessClient> embedded;
  std::unique_ptr<LineProtocolClient> remote;
};

Backends MakeBackends(size_t retained_epochs = 2,
                      QueryEngineOptions options = {}) {
  Backends b;
  b.store = std::make_shared<ReleaseStore>(retained_epochs);
  b.engine = std::make_shared<QueryEngine>(b.store, options);
  b.embedded = std::make_unique<InProcessClient>(b.engine);
  b.remote = std::make_unique<LineProtocolClient>(
      std::make_unique<LoopbackTransport>(*b.engine));
  EXPECT_TRUE(b.embedded->PublishBundle("simple", MakeBundle()).ok());
  return b;
}

/// Every (d<=2, sa) conjunctive query over the simple schema as QuerySpecs.
std::vector<QuerySpec> AllSpecs() {
  const char* jobs[] = {nullptr, "eng", "law"};
  const char* cities[] = {nullptr, "north", "south"};
  const char* sas[] = {"flu", "hiv", "bc"};
  std::vector<QuerySpec> out;
  for (const char* job : jobs) {
    for (const char* city : cities) {
      for (const char* sa : sas) {
        QuerySpec spec;
        if (job != nullptr) spec.where.emplace_back("Job", job);
        if (city != nullptr) spec.where.emplace_back("City", city);
        spec.sa = sa;
        out.push_back(std::move(spec));
      }
    }
  }
  return out;
}

std::string Respond(QueryEngine& engine, const std::string& line) {
  return recpriv::serve::HandleRequestLine(line, engine);
}

// --- error-code taxonomy ---------------------------------------------------

TEST(ApiErrorTest, CodeNamesRoundTrip) {
  for (ErrorCode code :
       {ErrorCode::kOk, ErrorCode::kInvalidRequest, ErrorCode::kOutOfRange,
        ErrorCode::kNotFound, ErrorCode::kAlreadyExists, ErrorCode::kIoError,
        ErrorCode::kStaleEpoch, ErrorCode::kInternal, ErrorCode::kUnsupported,
        ErrorCode::kMalformed, ErrorCode::kUnavailable, ErrorCode::kDataLoss,
        ErrorCode::kResourceExhausted, ErrorCode::kDeadlineExceeded}) {
    auto back = ErrorCodeFromName(ErrorCodeName(code));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, code);
  }
  EXPECT_FALSE(ErrorCodeFromName("NO_SUCH_CODE").has_value());
}

TEST(ApiErrorTest, StatusMappingIsStableBothWays) {
  // Every StatusCode maps onto the taxonomy and back to the same category,
  // so both backends report identical Status for the same failure.
  const Status statuses[] = {
      Status::InvalidArgument("m"), Status::OutOfRange("m"),
      Status::NotFound("m"),        Status::AlreadyExists("m"),
      Status::IOError("m"),         Status::FailedPrecondition("m"),
      Status::Internal("m"),        Status::NotImplemented("m"),
      Status::Unavailable("m"),     Status::DataLoss("m"),
  };
  for (const Status& status : statuses) {
    ApiError error = ApiError::FromStatus(status);
    EXPECT_EQ(error.ToStatus(), status) << status.ToString();
  }
  EXPECT_EQ(ErrorCodeFromStatus(Status::FailedPrecondition("x")),
            ErrorCode::kStaleEpoch);
  EXPECT_EQ(ApiError{}.code, ErrorCode::kInternal);
}

// --- ReleaseStore retention + Drop -----------------------------------------

TEST(ReleaseStoreRetentionTest, WindowKeepsRecentEpochsPinnable) {
  ReleaseStore store(/*retained_epochs=*/2);
  ASSERT_TRUE(store.Publish("r", MakeBundle(1)).ok());
  ASSERT_TRUE(store.Publish("r", MakeBundle(2)).ok());
  // Both epochs pinnable while the window holds them.
  EXPECT_EQ((*store.Get("r", 1))->epoch, 1u);
  EXPECT_EQ((*store.Get("r", 2))->epoch, 2u);
  EXPECT_EQ((*store.Get("r"))->epoch, 2u);

  ASSERT_TRUE(store.Publish("r", MakeBundle(3)).ok());
  auto stale = store.Get("r", 1);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*store.Get("r", 2))->epoch, 2u);
  EXPECT_EQ((*store.Get("r", 3))->epoch, 3u);
  // A never-published (future) epoch is also a failed precondition, not a
  // silent wrong answer.
  EXPECT_EQ(store.Get("r", 9).status().code(),
            StatusCode::kFailedPrecondition);
  // Unknown names stay NotFound on the pinned path too.
  EXPECT_EQ(store.Get("nope", 1).status().code(), StatusCode::kNotFound);

  auto info = store.Info("r");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->epoch, 3u);
  EXPECT_EQ(info->retained_epochs, 2u);
  EXPECT_EQ(info->oldest_epoch, 2u);
}

TEST(ReleaseStoreRetentionTest, DropRetiresAndEpochsNeverRewind) {
  ReleaseStore store(2);
  ASSERT_TRUE(store.Publish("r", MakeBundle(1)).ok());
  ASSERT_TRUE(store.Publish("r", MakeBundle(2)).ok());

  auto dropped = store.Drop("r");
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped->epoch, 2u);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.Get("r").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Drop("r").status().code(), StatusCode::kNotFound);

  // Republication continues the epoch sequence: a pinned epoch can fail
  // stale but can never silently alias different data.
  auto again = store.Publish("r", MakeBundle(3));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->epoch, 3u);
}

// --- both backends, one behavior -------------------------------------------

TEST(ClientBackendsTest, ListSchemaStatsAgree) {
  Backends b = MakeBackends();

  auto list_a = *b.embedded->List();
  auto list_b = *b.remote->List();
  ASSERT_EQ(list_a.size(), 1u);
  ASSERT_EQ(list_b.size(), 1u);
  EXPECT_EQ(list_a[0].name, list_b[0].name);
  EXPECT_EQ(list_a[0].epoch, list_b[0].epoch);
  EXPECT_EQ(list_a[0].num_records, list_b[0].num_records);
  EXPECT_EQ(list_a[0].num_groups, list_b[0].num_groups);
  EXPECT_EQ(list_a[0].retained_epochs, list_b[0].retained_epochs);

  auto schema_a = *b.embedded->GetSchema("simple");
  auto schema_b = *b.remote->GetSchema("simple");
  ASSERT_EQ(schema_a.attributes.size(), 3u);
  ASSERT_EQ(schema_b.attributes.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(schema_a.attributes[i].name, schema_b.attributes[i].name);
    EXPECT_EQ(schema_a.attributes[i].sensitive,
              schema_b.attributes[i].sensitive);
    EXPECT_EQ(schema_a.attributes[i].values, schema_b.attributes[i].values);
  }
  EXPECT_EQ(schema_a.attributes[0].name, "Job");
  EXPECT_TRUE(schema_a.attributes[2].sensitive);
  EXPECT_EQ(schema_a.attributes[2].values,
            (std::vector<std::string>{"flu", "hiv", "bc"}));

  auto stats = *b.remote->Stats();
  ASSERT_EQ(stats.releases.size(), 1u);
  EXPECT_EQ(stats.releases[0].name, "simple");
  EXPECT_EQ(stats.releases[0].epoch, 1u);
  EXPECT_GT(stats.releases[0].num_records, 0u);
  EXPECT_EQ(stats.releases[0].num_groups, 4u);
  EXPECT_EQ(stats.cache.capacity, b.engine->cache().capacity());
  EXPECT_EQ(stats.threads, b.engine->pool().num_threads());
}

// Property: the two backends return identical answers for the same batch —
// the acceptance bar for "one interface, embedded or remote".
TEST(ClientBackendsTest, BackendsReturnIdenticalAnswersForSameBatch) {
  Backends b = MakeBackends();
  QueryRequest req;
  req.release = "simple";
  req.queries = AllSpecs();

  auto embedded = *b.embedded->Query(req);
  auto remote = *b.remote->Query(req);
  ASSERT_EQ(embedded.answers.size(), req.queries.size());
  ASSERT_EQ(remote.answers.size(), req.queries.size());
  EXPECT_EQ(embedded.epoch, remote.epoch);
  for (size_t i = 0; i < embedded.answers.size(); ++i) {
    EXPECT_EQ(embedded.answers[i].observed, remote.answers[i].observed);
    EXPECT_EQ(embedded.answers[i].matched_size,
              remote.answers[i].matched_size);
    EXPECT_DOUBLE_EQ(embedded.answers[i].estimate,
                     remote.answers[i].estimate);
  }
}

// Property: the two backends return identical Status for the same failure.
TEST(ClientBackendsTest, BackendsReturnIdenticalErrors) {
  Backends b = MakeBackends();
  QueryRequest unknown_release;
  unknown_release.release = "nope";
  unknown_release.queries.push_back(QuerySpec{{}, "flu"});

  QueryRequest unknown_value;
  unknown_value.release = "simple";
  unknown_value.queries.push_back(QuerySpec{{{"Job", "typo"}}, "flu"});

  QueryRequest unknown_attr;
  unknown_attr.release = "simple";
  unknown_attr.queries.push_back(QuerySpec{{{"Nope", "x"}}, "flu"});

  QueryRequest binds_sa;
  binds_sa.release = "simple";
  binds_sa.queries.push_back(QuerySpec{{{"Disease", "flu"}}, "flu"});

  QueryRequest stale;
  stale.release = "simple";
  stale.epoch = 42;
  stale.queries.push_back(QuerySpec{{}, "flu"});

  QueryRequest epoch_zero;
  epoch_zero.release = "simple";
  epoch_zero.epoch = 0;
  epoch_zero.queries.push_back(QuerySpec{{}, "flu"});

  for (const QueryRequest& req : {unknown_release, unknown_value,
                                  unknown_attr, binds_sa, stale, epoch_zero}) {
    auto embedded = b.embedded->Query(req);
    auto remote = b.remote->Query(req);
    ASSERT_FALSE(embedded.ok());
    ASSERT_FALSE(remote.ok());
    EXPECT_EQ(embedded.status(), remote.status())
        << "embedded: " << embedded.status()
        << " remote: " << remote.status();
  }
}

// Acceptance: a pinned-epoch batch returns identical answers before and
// after a concurrent republish.
TEST(ClientBackendsTest, PinnedBatchIdenticalAcrossRepublish) {
  Backends b = MakeBackends(/*retained_epochs=*/2);
  QueryRequest req;
  req.release = "simple";
  req.epoch = 1;
  req.queries = AllSpecs();

  auto before = *b.remote->Query(req);
  ASSERT_TRUE(b.embedded->PublishBundle("simple", MakeBundle(99)).ok());
  auto after = *b.remote->Query(req);

  EXPECT_EQ(before.epoch, 1u);
  EXPECT_EQ(after.epoch, 1u);
  ASSERT_EQ(before.answers.size(), after.answers.size());
  for (size_t i = 0; i < before.answers.size(); ++i) {
    EXPECT_EQ(before.answers[i].observed, after.answers[i].observed);
    EXPECT_EQ(before.answers[i].matched_size, after.answers[i].matched_size);
    EXPECT_DOUBLE_EQ(before.answers[i].estimate, after.answers[i].estimate);
  }
  // The unpinned path serves the new epoch (a differently-seeded release).
  QueryRequest unpinned = req;
  unpinned.epoch.reset();
  EXPECT_EQ((*b.remote->Query(unpinned)).epoch, 2u);

  // One more republish retires epoch 1: the pin now fails loudly with the
  // stale-epoch category on both backends.
  ASSERT_TRUE(b.embedded->PublishBundle("simple", MakeBundle(100)).ok());
  auto stale = b.remote->Query(req);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(b.embedded->Query(req).status(), stale.status());
}

// --- publish / drop through the full client surface ------------------------

TEST(ClientBackendsTest, PublishFromFileAndDropOverTheWire) {
  // Write a real bundle to disk, then manage it purely through the remote
  // client: publish -> query -> drop -> NotFound.
  const std::string base = "/tmp/recpriv_client_test_release";
  ASSERT_TRUE(recpriv::analysis::WriteRelease(MakeBundle(), base).ok());

  Backends b = MakeBackends();
  auto desc = b.remote->Publish("fromfile", base);
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->name, "fromfile");
  EXPECT_EQ(desc->epoch, 1u);
  EXPECT_GT(desc->num_records, 0u);

  QueryRequest req;
  req.release = "fromfile";
  req.queries.push_back(QuerySpec{{{"Job", "eng"}}, "flu"});
  EXPECT_TRUE(b.remote->Query(req).ok());

  auto missing = b.remote->Publish("bad", "/tmp/recpriv_no_such_bundle");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIOError);

  auto dropped = b.remote->Drop("fromfile");
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped->name, "fromfile");
  auto gone = b.remote->Query(req);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(b.remote->Drop("fromfile").status().code(),
            StatusCode::kNotFound);

  std::remove((base + ".csv").c_str());
  std::remove((base + ".manifest.json").c_str());
}

// --- wire protocol: v1 compatibility ---------------------------------------

TEST(WireV1CompatTest, LegacyRequestsKeepLegacyShapes) {
  Backends b = MakeBackends();

  // The PR-1 README request line, verbatim.
  JsonValue query = *JsonValue::Parse(Respond(
      *b.engine,
      R"({"op":"query","release":"simple","queries":[{"where":{"Job":"eng"},"sa":"flu"}]})"));
  EXPECT_TRUE((*query.Get("ok"))->AsBool().ValueOrDie());
  EXPECT_FALSE(query.Has("v"));  // v1 responses carry no version field
  EXPECT_EQ((*query.Get("epoch"))->AsInt().ValueOrDie(), 1);
  ASSERT_EQ((*query.Get("answers"))->size(), 1u);
  const JsonValue& answer = **(*query.Get("answers"))->At(0);
  EXPECT_TRUE(answer.Has("observed"));
  EXPECT_TRUE(answer.Has("matched_size"));
  EXPECT_TRUE(answer.Has("estimate"));

  JsonValue list = *JsonValue::Parse(Respond(*b.engine, R"({"op":"list"})"));
  EXPECT_TRUE((*list.Get("ok"))->AsBool().ValueOrDie());
  EXPECT_FALSE(list.Has("v"));
  ASSERT_EQ((*list.Get("releases"))->size(), 1u);

  JsonValue stats = *JsonValue::Parse(Respond(*b.engine, R"({"op":"stats"})"));
  EXPECT_TRUE((*stats.Get("ok"))->AsBool().ValueOrDie());
  EXPECT_TRUE(stats.Has("cache"));
  EXPECT_TRUE(stats.Has("threads"));

  // v1 errors stay flat "<Code>: <message>" strings.
  JsonValue error = *JsonValue::Parse(
      Respond(*b.engine, R"({"op":"query","release":"nope","queries":[]})"));
  EXPECT_FALSE((*error.Get("ok"))->AsBool().ValueOrDie());
  ASSERT_TRUE((*error.Get("error"))->is_string());
  EXPECT_EQ((*error.Get("error"))->AsString().ValueOrDie(),
            "NotFound: no release named 'nope'");

  // An explicit "v":1 behaves exactly like an absent version field.
  JsonValue v1 = *JsonValue::Parse(
      Respond(*b.engine, R"({"v":1,"op":"query","release":"nope","queries":[]})"));
  EXPECT_TRUE((*v1.Get("error"))->is_string());
  EXPECT_FALSE(v1.Has("v"));
}

// --- wire protocol: v2 envelopes and error paths ---------------------------

TEST(WireV2Test, IdIsEchoedOnSuccessAndError) {
  Backends b = MakeBackends();

  JsonValue ok = *JsonValue::Parse(
      Respond(*b.engine, R"({"v":2,"id":17,"op":"list"})"));
  EXPECT_TRUE((*ok.Get("ok"))->AsBool().ValueOrDie());
  EXPECT_EQ((*ok.Get("v"))->AsInt().ValueOrDie(), 2);
  EXPECT_EQ((*ok.Get("id"))->AsInt().ValueOrDie(), 17);

  JsonValue err = *JsonValue::Parse(
      Respond(*b.engine, R"({"v":2,"id":18,"op":"frobnicate"})"));
  EXPECT_FALSE((*err.Get("ok"))->AsBool().ValueOrDie());
  EXPECT_EQ((*err.Get("id"))->AsInt().ValueOrDie(), 18);

  // Ids are echoed verbatim, whatever their JSON type.
  JsonValue str_id = *JsonValue::Parse(
      Respond(*b.engine, R"({"v":2,"id":"batch-7","op":"list"})"));
  EXPECT_EQ((*str_id.Get("id"))->AsString().ValueOrDie(), "batch-7");
}

struct ErrorCase {
  const char* line;
  ErrorCode code;
};

TEST(WireV2Test, ErrorPathsCarryTheStableTaxonomy) {
  Backends b = MakeBackends();
  const ErrorCase cases[] = {
      {"this is not json", ErrorCode::kMalformed},
      {"[1,2,3]", ErrorCode::kInvalidRequest},  // parseable but not an object
      {R"({"v":2,"op":"frobnicate"})", ErrorCode::kInvalidRequest},
      {R"({"v":2})", ErrorCode::kInvalidRequest},  // missing op
      {R"({"v":2,"op":5})", ErrorCode::kInvalidRequest},  // wrong-type op
      {R"({"v":"two","op":"list"})", ErrorCode::kInvalidRequest},
      {R"({"v":3,"op":"list"})", ErrorCode::kUnsupported},
      {R"({"v":2,"op":"query","release":5,"queries":[]})",
       ErrorCode::kInvalidRequest},
      {R"({"v":2,"op":"query","release":"simple"})",
       ErrorCode::kInvalidRequest},  // missing queries
      {R"({"v":2,"op":"query","release":"simple","queries":{}})",
       ErrorCode::kInvalidRequest},
      {R"({"v":2,"op":"query","release":"simple","queries":[5]})",
       ErrorCode::kInvalidRequest},
      {R"({"v":2,"op":"query","release":"simple","queries":[{"sa":1}]})",
       ErrorCode::kInvalidRequest},
      {R"({"v":2,"op":"query","release":"simple","queries":[{"where":[],"sa":"flu"}]})",
       ErrorCode::kInvalidRequest},
      {R"({"v":2,"op":"query","release":"simple","queries":[{"where":{"Job":1},"sa":"flu"}]})",
       ErrorCode::kInvalidRequest},
      {R"({"v":2,"op":"query","release":"simple","epoch":0,"queries":[{"sa":"flu"}]})",
       ErrorCode::kStaleEpoch},  // epoch 0 never exists: stale, not shape
      {R"({"v":2,"op":"query","release":"simple","epoch":-3,"queries":[{"sa":"flu"}]})",
       ErrorCode::kInvalidRequest},
      {R"({"v":2,"op":"query","release":"simple","epoch":1.5,"queries":[{"sa":"flu"}]})",
       ErrorCode::kInvalidRequest},
      {R"({"v":2,"op":"query","release":"nope","queries":[{"sa":"flu"}]})",
       ErrorCode::kNotFound},
      {R"({"v":2,"op":"query","release":"simple","queries":[{"sa":"typo"}]})",
       ErrorCode::kNotFound},  // unknown SA value
      {R"({"v":2,"op":"query","release":"simple","queries":[{"where":{"Nope":"x"},"sa":"flu"}]})",
       ErrorCode::kNotFound},  // unknown attribute
      {R"({"v":2,"op":"query","release":"simple","queries":[{"where":{"Job":"typo"},"sa":"flu"}]})",
       ErrorCode::kNotFound},  // unknown NA value
      {R"({"v":2,"op":"query","release":"simple","queries":[{"where":{"Disease":"flu"},"sa":"flu"}]})",
       ErrorCode::kInvalidRequest},  // SA constrained in where
      {R"({"v":2,"op":"query","release":"simple","epoch":42,"queries":[{"sa":"flu"}]})",
       ErrorCode::kStaleEpoch},
      {R"({"v":2,"op":"schema","release":"nope"})", ErrorCode::kNotFound},
      {R"({"v":2,"op":"publish","name":"x","release":"/tmp/recpriv_no_such_bundle"})",
       ErrorCode::kIoError},
      {R"({"v":2,"op":"publish","release":"x"})",
       ErrorCode::kInvalidRequest},  // missing name
      {R"({"v":2,"op":"drop","release":"nope"})", ErrorCode::kNotFound},
  };
  for (const ErrorCase& c : cases) {
    JsonValue response = *JsonValue::Parse(Respond(*b.engine, c.line));
    EXPECT_FALSE((*response.Get("ok"))->AsBool().ValueOrDie()) << c.line;
    const JsonValue& error = **response.Get("error");
    ASSERT_TRUE(error.is_object()) << c.line;
    EXPECT_EQ((*error.Get("code"))->AsString().ValueOrDie(),
              ErrorCodeName(c.code))
        << c.line;
    EXPECT_FALSE((*error.Get("message"))->AsString().ValueOrDie().empty())
        << c.line;
  }
}

TEST(WireV2Test, QueryAnswersMatchV1ForTheSameBatch) {
  Backends b = MakeBackends();
  const char* v1_line =
      R"({"op":"query","release":"simple","queries":[{"where":{"Job":"eng"},"sa":"flu"}]})";
  const char* v2_line =
      R"({"v":2,"id":1,"op":"query","release":"simple","queries":[{"where":{"Job":"eng"},"sa":"flu"}]})";
  JsonValue v1 = *JsonValue::Parse(Respond(*b.engine, v1_line));
  JsonValue v2 = *JsonValue::Parse(Respond(*b.engine, v2_line));
  const JsonValue& a1 = **(*v1.Get("answers"))->At(0);
  const JsonValue& a2 = **(*v2.Get("answers"))->At(0);
  EXPECT_EQ((*a1.Get("observed"))->AsInt().ValueOrDie(),
            (*a2.Get("observed"))->AsInt().ValueOrDie());
  EXPECT_EQ((*a1.Get("matched_size"))->AsInt().ValueOrDie(),
            (*a2.Get("matched_size"))->AsInt().ValueOrDie());
  EXPECT_DOUBLE_EQ((*a1.Get("estimate"))->AsDouble().ValueOrDie(),
                   (*a2.Get("estimate"))->AsDouble().ValueOrDie());
}

TEST(WireV2Test, ResponseParserRejectsIdMismatch) {
  auto mismatch = recpriv::serve::wire::ParseResponse(
      R"({"v":2,"id":99,"ok":true,"releases":[]})", /*expect_id=*/1);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInternal);

  auto match = recpriv::serve::wire::ParseResponse(
      R"({"v":2,"id":1,"ok":true,"releases":[]})", 1);
  EXPECT_TRUE(match.ok());
}

}  // namespace
}  // namespace recpriv::client
