// Tests for the general matrix perturbation operator.

#include "perturb/matrix_perturbation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "perturb/mle.h"
#include "perturb/uniform_perturbation.h"

namespace recpriv::perturb {
namespace {

Matrix BiasedMatrix() {
  // A 3-value operator that retains asymmetrically (column-stochastic):
  //   input 0 -> {0.7, 0.2, 0.1}, input 1 -> {0.1, 0.8, 0.1},
  //   input 2 -> {0.25, 0.25, 0.5}.
  Matrix p(3);
  const double cols[3][3] = {
      {0.7, 0.2, 0.1}, {0.1, 0.8, 0.1}, {0.25, 0.25, 0.5}};
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) p.at(j, i) = cols[i][j];
  }
  return p;
}

TEST(MatrixPerturbationTest, ValidationRejectsBadMatrices) {
  Matrix not_stochastic(2, 0.3);  // columns sum to 0.6
  EXPECT_FALSE(MatrixPerturbation::Make(not_stochastic).ok());

  Matrix negative(2);
  negative.at(0, 0) = 1.5;
  negative.at(1, 0) = -0.5;
  negative.at(0, 1) = 0.5;
  negative.at(1, 1) = 0.5;
  EXPECT_FALSE(MatrixPerturbation::Make(negative).ok());

  Matrix singular(2, 0.5);  // both columns identical -> singular
  EXPECT_FALSE(MatrixPerturbation::Make(singular).ok());

  EXPECT_FALSE(MatrixPerturbation::Make(Matrix(1, 1.0)).ok());
}

TEST(MatrixPerturbationTest, UniformSpecialCaseMatchesEq3) {
  auto mp = MatrixPerturbation::Uniform(4, 0.6);
  ASSERT_TRUE(mp.ok());
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      const double expected = (i == j) ? 0.6 + 0.1 : 0.1;
      EXPECT_NEAR(mp->matrix().at(j, i), expected, 1e-12);
    }
  }
}

TEST(MatrixPerturbationTest, PerturbValueFollowsColumn) {
  auto mp = *MatrixPerturbation::Make(BiasedMatrix());
  Rng rng(5);
  std::vector<int> hist(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hist[mp.PerturbValue(1, rng)];
  EXPECT_NEAR(hist[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(hist[1] / double(n), 0.8, 0.01);
  EXPECT_NEAR(hist[2] / double(n), 0.1, 0.01);
}

TEST(MatrixPerturbationTest, PerturbCountsConservesTotal) {
  auto mp = *MatrixPerturbation::Make(BiasedMatrix());
  Rng rng(7);
  std::vector<uint64_t> counts{500, 300, 200};
  for (int i = 0; i < 100; ++i) {
    auto observed = *mp.PerturbCounts(counts, rng);
    uint64_t total = 0;
    for (uint64_t c : observed) total += c;
    EXPECT_EQ(total, 1000u);
  }
}

TEST(MatrixPerturbationTest, PerturbCountsMeanMatchesExpectation) {
  auto mp = *MatrixPerturbation::Make(BiasedMatrix());
  Rng rng(9);
  std::vector<uint64_t> counts{500, 300, 200};
  std::vector<double> freq{0.5, 0.3, 0.2};
  auto expected = mp.ExpectedObserved(freq, 1000);
  const int reps = 4000;
  std::vector<double> sums(3, 0.0);
  for (int i = 0; i < reps; ++i) {
    auto observed = *mp.PerturbCounts(counts, rng);
    for (size_t j = 0; j < 3; ++j) sums[j] += double(observed[j]);
  }
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(sums[j] / reps, expected[j], 0.02 * expected[j] + 1.0);
  }
}

TEST(MatrixPerturbationTest, ReconstructionIsUnbiased) {
  auto mp = *MatrixPerturbation::Make(BiasedMatrix());
  Rng rng(11);
  std::vector<uint64_t> counts{600, 250, 150};
  const int reps = 4000;
  std::vector<double> sums(3, 0.0);
  for (int i = 0; i < reps; ++i) {
    auto observed = *mp.PerturbCounts(counts, rng);
    auto est = *mp.Reconstruct(observed, 1000);
    for (size_t j = 0; j < 3; ++j) sums[j] += est[j];
  }
  EXPECT_NEAR(sums[0] / reps, 0.60, 0.01);
  EXPECT_NEAR(sums[1] / reps, 0.25, 0.01);
  EXPECT_NEAR(sums[2] / reps, 0.15, 0.01);
}

TEST(MatrixPerturbationTest, UniformReconstructionAgreesWithLemma2) {
  auto mp = *MatrixPerturbation::Uniform(5, 0.4);
  const UniformPerturbation up{0.4, 5};
  std::vector<uint64_t> observed{30, 10, 25, 20, 15};
  auto via_matrix = *mp.Reconstruct(observed, 100);
  auto via_lemma = *MleFrequencies(up, observed, 100);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(via_matrix[i], via_lemma[i], 1e-10);
  }
}

TEST(MatrixPerturbationTest, AmplificationGammaUniform) {
  // gamma = (p + (1-p)/m) / ((1-p)/m) = 1 + pm/(1-p).
  auto mp = *MatrixPerturbation::Uniform(10, 0.5);
  EXPECT_NEAR(mp.AmplificationGamma(), 1.0 + 0.5 * 10 / 0.5, 1e-9);
}

TEST(MatrixPerturbationTest, AmplificationGammaInfiniteWithZeros) {
  Matrix p(2);
  p.at(0, 0) = 1.0;  // input 0 always maps to 0
  p.at(1, 0) = 0.0;
  p.at(0, 1) = 0.2;
  p.at(1, 1) = 0.8;
  auto mp = *MatrixPerturbation::Make(p);
  EXPECT_TRUE(std::isinf(mp.AmplificationGamma()));
}

TEST(MatrixPerturbationTest, ZeroSubsetReconstruction) {
  auto mp = *MatrixPerturbation::Uniform(3, 0.5);
  auto est = *mp.Reconstruct({0, 0, 0}, 0);
  EXPECT_EQ(est, (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(MatrixPerturbationTest, ArityChecks) {
  auto mp = *MatrixPerturbation::Uniform(3, 0.5);
  Rng rng(1);
  EXPECT_FALSE(mp.PerturbCounts({1, 2}, rng).ok());
  EXPECT_FALSE(mp.Reconstruct({1, 2}, 3).ok());
}

}  // namespace
}  // namespace recpriv::perturb
