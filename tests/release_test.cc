// Tests for the self-describing release bundle (CSV + JSON manifest).

#include "analysis/release.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/random.h"
#include "core/sps.h"
#include "datagen/simple.h"

namespace recpriv::analysis {
namespace {

using recpriv::core::PrivacyParams;
using recpriv::table::Table;

PrivacyParams Params() {
  PrivacyParams p;
  p.lambda = 0.3;
  p.delta = 0.3;
  p.retention_p = 0.5;
  p.domain_m = 3;
  return p;
}

Table MakeRelease(Rng& rng) {
  recpriv::datagen::SimpleDatasetSpec spec;
  spec.public_attributes = {"Job"};
  spec.sensitive_attribute = "Disease";
  spec.sa_domain = {"flu", "hiv", "bc"};
  spec.groups.push_back({{"eng"}, 3000, {60, 25, 15}});
  spec.groups.push_back({{"law"}, 2000, {20, 50, 30}});
  Table raw = *recpriv::datagen::GenerateSimple(spec, rng);
  return recpriv::core::SpsPerturbTable(Params(), raw, rng)->table;
}

TEST(ReleaseTest, WriteLoadRoundTrip) {
  Rng rng(9);
  Table release = MakeRelease(rng);
  const size_t rows = release.num_rows();
  ReleaseBundle bundle{std::move(release), Params(), "Disease",
                       {{"eng", "law"}, {"flu", "hiv", "bc"}}};

  const std::string base = ::testing::TempDir() + "/recpriv_release_test";
  ASSERT_TRUE(WriteRelease(bundle, base).ok());

  auto loaded = LoadRelease(base);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->data.num_rows(), rows);
  EXPECT_DOUBLE_EQ(loaded->params.retention_p, 0.5);
  EXPECT_DOUBLE_EQ(loaded->params.lambda, 0.3);
  EXPECT_DOUBLE_EQ(loaded->params.delta, 0.3);
  EXPECT_EQ(loaded->params.domain_m, 3u);
  EXPECT_EQ(loaded->sensitive_attribute, "Disease");
  ASSERT_EQ(loaded->generalization.size(), 2u);
  EXPECT_EQ(loaded->generalization[0],
            (std::vector<std::string>{"eng", "law"}));

  std::remove((base + ".csv").c_str());
  std::remove((base + ".manifest.json").c_str());
}

TEST(ReleaseTest, ManifestContents) {
  Rng rng(11);
  Table release = MakeRelease(rng);
  ReleaseBundle bundle{std::move(release), Params(), "Disease", {}};
  JsonValue manifest = BuildManifest(bundle);
  EXPECT_EQ(*(*manifest.Get("format"))->AsString(), "recpriv-release");
  auto* mechanism = *manifest.Get("mechanism");
  EXPECT_DOUBLE_EQ(*(*mechanism->Get("retention_p"))->AsDouble(), 0.5);
  EXPECT_EQ(*(*mechanism->Get("domain_m"))->AsInt(), 3);
  auto* attrs = *manifest.Get("attributes");
  EXPECT_EQ(attrs->size(), 2u);
  EXPECT_FALSE(manifest.Has("generalized_values"));  // empty -> omitted
}

TEST(ReleaseTest, LoadedBundleDrivesReconstruction) {
  Rng rng(13);
  Table release = MakeRelease(rng);
  ReleaseBundle bundle{std::move(release), Params(), "Disease", {}};
  const std::string base = ::testing::TempDir() + "/recpriv_release_recon";
  ASSERT_TRUE(WriteRelease(bundle, base).ok());
  auto loaded = *LoadRelease(base);
  auto rec = *MakeReconstructor(loaded);
  recpriv::table::Predicate all(loaded.data.schema()->num_attributes());
  auto dist = *rec.EstimateDistribution(loaded.data, all);
  // Global truth ~ (3000*.6 + 2000*.2)/5000 = 0.44 for flu; generous band
  // (single SPS release of two heavily sampled groups).
  EXPECT_NEAR(dist[0].frequency, 0.44, 0.25);
  std::remove((base + ".csv").c_str());
  std::remove((base + ".manifest.json").c_str());
}

TEST(ReleaseTest, WriteValidation) {
  Rng rng(15);
  Table release = MakeRelease(rng);
  PrivacyParams wrong = Params();
  wrong.domain_m = 7;
  ReleaseBundle bad{std::move(release), wrong, "Disease", {}};
  EXPECT_FALSE(WriteRelease(bad, ::testing::TempDir() + "/x").ok());
}

TEST(ReleaseTest, LoadRejectsForeignManifest) {
  const std::string base = ::testing::TempDir() + "/recpriv_foreign";
  {
    std::ofstream manifest(base + ".manifest.json");
    manifest << "{\"format\": \"something-else\"}\n";
  }
  EXPECT_FALSE(LoadRelease(base).ok());
  std::remove((base + ".manifest.json").c_str());
}

TEST(ReleaseTest, LoadMissingFilesFails) {
  EXPECT_FALSE(LoadRelease("/nonexistent/base").ok());
}

}  // namespace
}  // namespace recpriv::analysis
