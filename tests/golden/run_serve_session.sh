#!/usr/bin/env bash
# End-to-end golden-transcript check of the serving wire protocol: pipes a
# scripted v1+v2 session (list / publish / query / pinned query / stale pin
# / drop / schema / malformed lines / stats) through a real recpriv_serve
# process and diffs the responses against serve_session.golden.
#
# Everything is pinned for determinism: the demo release's RNG seed, the
# published bundle's input CSV and --seed, --threads, and --retain. A diff
# means the protocol surface changed — regenerate the golden deliberately
# (instructions below) only when that change is intentional:
#
#   tests/golden/run_serve_session.sh SERVE PUBLISH GOLDEN_DIR --regen
#
# --tcp WIRE_CAT runs the same session through a real TCP server
# (recpriv_serve --port 0) via the recpriv_wire_cat client instead of
# stdin/stdout, and diffs against the SAME golden: the wire protocol is
# transport-agnostic, so the responses must be byte-identical. The one
# deliberate, documented difference is the v2 "stats" response, which over
# TCP carries a "transport":{...} counter section that a stdin session does
# not have — the check asserts the section is present, strips it, and
# requires everything else to match to the byte.
#
# --snapshot runs the cold-start path: a first server run persists the demo
# release as a binary snapshot (--demo --snapshot-dir), then a RESTARTED
# server recovers it from disk alone (--snapshot-dir, no --demo) and
# replays the same transcript — every response must match the same golden
# byte for byte, proving a snapshot-recovered release is indistinguishable
# from a freshly published one on the wire.
#
# The v2 "stats" response carries a "store":[...] provenance section whose
# timing fields are inherently nondeterministic; every mode strips it (the
# array holds flat objects only, by wire-layer contract, so the regex is
# safe) and the "store" content is covered by client/serve unit tests.
#
# usage: run_serve_session.sh path/to/recpriv_serve path/to/recpriv_publish \
#        path/to/tests/golden \
#        [--regen | --snapshot | --tcp path/to/recpriv_wire_cat]

set -euo pipefail

SERVE="$(cd "$(dirname "$1")" && pwd)/$(basename "$1")"
PUBLISH="$(cd "$(dirname "$2")" && pwd)/$(basename "$2")"
GOLDEN_DIR="$(cd "$3" && pwd)"
MODE="${4:-check}"
WIRE_CAT="${5:-}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# A tiny deterministic input for the publish op exercised mid-session.
{
  echo "Job,City,Disease"
  for _ in $(seq 1 30); do echo "eng,north,flu"; done
  for _ in $(seq 1 10); do echo "eng,north,hiv"; done
  for _ in $(seq 1 15); do echo "law,south,flu"; done
  for _ in $(seq 1 15); do echo "law,south,hiv"; done
} > "$WORK/tiny.csv"

"$PUBLISH" --input "$WORK/tiny.csv" --sensitive Disease \
    --output "$WORK/tiny.release.csv" --manifest "$WORK/golden_release" \
    --seed 7 > /dev/null

if [ "$MODE" = "--tcp" ]; then
  if [ -z "$WIRE_CAT" ]; then
    echo "--tcp needs the recpriv_wire_cat path" >&2
    exit 1
  fi
  WIRE_CAT="$(cd "$(dirname "$WIRE_CAT")" && pwd)/$(basename "$WIRE_CAT")"
  # The session publishes by the basename "golden_release", resolved
  # against the server's working directory. exec: the backgrounded subshell
  # must BE the server, so the TERM below reaches it (and a test harness
  # waiting on our stdout pipe sees it close).
  (cd "$WORK" && exec "$SERVE" --demo --threads 2 --retain 2 --port 0 \
      > /dev/null 2> "$WORK/serve.err") &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(grep -oE 'listening on 127\.0\.0\.1:[0-9]+' "$WORK/serve.err" \
        | grep -oE '[0-9]+$' || true)"
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  if [ -z "$PORT" ]; then
    echo "server never reported its port:" >&2
    cat "$WORK/serve.err" >&2
    exit 1
  fi
  "$WIRE_CAT" --port "$PORT" < "$GOLDEN_DIR/serve_session.in" \
      > "$WORK/session.tcp.out" 2> /dev/null
  kill -TERM "$SERVER_PID" 2> /dev/null || true
  wait "$SERVER_PID" 2> /dev/null || true

  # The stats response must prove the TCP front end is reporting itself...
  grep -q '"transport":{' "$WORK/session.tcp.out"
  # ...and with that section (and the timing-bearing store section)
  # stripped, every response byte must match the stdin-transport golden.
  sed -E -e 's/,"transport":\{[^{}]*\{[^{}]*\}[^{}]*\}//' \
      -e 's/,"store":\[[^]]*\]//' \
      "$WORK/session.tcp.out" > "$WORK/session.tcp.normalized"
  diff -u "$GOLDEN_DIR/serve_session.golden" "$WORK/session.tcp.normalized"
  echo "serve golden session over TCP: OK ($(wc -l < "$WORK/session.tcp.out") responses)"
  exit 0
fi

if [ "$MODE" = "--snapshot" ]; then
  # Cold start: run 1 persists the demo release, run 2 recovers it from
  # the snapshot directory alone and must replay the transcript
  # byte-identically.
  (cd "$WORK" && "$SERVE" --demo --threads 2 --retain 2 \
      --snapshot-dir "$WORK/snapshots" < /dev/null > /dev/null 2> /dev/null)
  if ! ls "$WORK/snapshots/"*.rps > /dev/null 2>&1; then
    echo "first run persisted no snapshot files" >&2
    exit 1
  fi
  (cd "$WORK" && "$SERVE" --threads 2 --retain 2 \
      --snapshot-dir "$WORK/snapshots" \
      < "$GOLDEN_DIR/serve_session.in" > "$WORK/session.snap.out" \
      2> "$WORK/serve.snap.err")
  grep -q "recovered 'demo' from snapshots" "$WORK/serve.snap.err"
  # The recovered release must report snapshot provenance before the strip.
  grep -q '"source":"snapshot"' "$WORK/session.snap.out"
  sed -E 's/,"store":\[[^]]*\]//' \
      "$WORK/session.snap.out" > "$WORK/session.snap.normalized"
  diff -u "$GOLDEN_DIR/serve_session.golden" "$WORK/session.snap.normalized"
  echo "serve golden session after snapshot restart: OK ($(wc -l < "$WORK/session.snap.out") responses)"
  exit 0
fi

# The session publishes by the basename "golden_release", resolved against
# the server's working directory.
(cd "$WORK" && "$SERVE" --demo --threads 2 --retain 2 \
    < "$GOLDEN_DIR/serve_session.in" > "$WORK/session.raw.out" 2> /dev/null)
sed -E 's/,"store":\[[^]]*\]//' \
    "$WORK/session.raw.out" > "$WORK/session.out"

if [ "$MODE" = "--regen" ]; then
  cp "$WORK/session.out" "$GOLDEN_DIR/serve_session.golden"
  echo "regenerated $GOLDEN_DIR/serve_session.golden"
  exit 0
fi

diff -u "$GOLDEN_DIR/serve_session.golden" "$WORK/session.out"
echo "serve golden session: OK ($(wc -l < "$WORK/session.out") responses)"
