#!/usr/bin/env bash
# End-to-end golden-transcript check of the serving wire protocol: pipes a
# scripted v1+v2 session (list / publish / query / pinned query / stale pin
# / drop / schema / malformed lines / stats) through a real recpriv_serve
# process and diffs the responses against serve_session.golden.
#
# Everything is pinned for determinism: the demo release's RNG seed, the
# published bundle's input CSV and --seed, --threads, and --retain. A diff
# means the protocol surface changed — regenerate the golden deliberately
# (instructions below) only when that change is intentional:
#
#   tests/golden/run_serve_session.sh SERVE PUBLISH GOLDEN_DIR --regen
#
# usage: run_serve_session.sh path/to/recpriv_serve path/to/recpriv_publish \
#        path/to/tests/golden [--regen]

set -euo pipefail

SERVE="$(cd "$(dirname "$1")" && pwd)/$(basename "$1")"
PUBLISH="$(cd "$(dirname "$2")" && pwd)/$(basename "$2")"
GOLDEN_DIR="$(cd "$3" && pwd)"
MODE="${4:-check}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# A tiny deterministic input for the publish op exercised mid-session.
{
  echo "Job,City,Disease"
  for _ in $(seq 1 30); do echo "eng,north,flu"; done
  for _ in $(seq 1 10); do echo "eng,north,hiv"; done
  for _ in $(seq 1 15); do echo "law,south,flu"; done
  for _ in $(seq 1 15); do echo "law,south,hiv"; done
} > "$WORK/tiny.csv"

"$PUBLISH" --input "$WORK/tiny.csv" --sensitive Disease \
    --output "$WORK/tiny.release.csv" --manifest "$WORK/golden_release" \
    --seed 7 > /dev/null

# The session publishes by the basename "golden_release", resolved against
# the server's working directory.
(cd "$WORK" && "$SERVE" --demo --threads 2 --retain 2 \
    < "$GOLDEN_DIR/serve_session.in" > "$WORK/session.out" 2> /dev/null)

if [ "$MODE" = "--regen" ]; then
  cp "$WORK/session.out" "$GOLDEN_DIR/serve_session.golden"
  echo "regenerated $GOLDEN_DIR/serve_session.golden"
  exit 0
fi

diff -u "$GOLDEN_DIR/serve_session.golden" "$WORK/session.out"
echo "serve golden session: OK ($(wc -l < "$WORK/session.out") responses)"
