// Tests for CSV import/export.

#include "table/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace recpriv::table {
namespace {

CsvReadOptions BasicOptions() {
  CsvReadOptions opt;
  opt.sensitive_attribute = "Disease";
  return opt;
}

TEST(CsvTest, ParsesHeaderAndRows) {
  const std::string text =
      "Gender,Job,Disease\n"
      "male,eng,flu\n"
      "female,law,hiv\n";
  auto t = ReadCsvFromString(text, BasicOptions());
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->schema()->sensitive().name, "Disease");
  EXPECT_EQ(*t->ValueAt(0, 0), "male");
  EXPECT_EQ(*t->ValueAt(1, 2), "hiv");
}

TEST(CsvTest, TrimsWhitespace) {
  const std::string text =
      "Gender, Job ,Disease\n"
      " male , eng , flu \n";
  auto t = ReadCsvFromString(text, BasicOptions());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t->ValueAt(0, 1), "eng");
}

TEST(CsvTest, SkipsRowsWithMissingToken) {
  const std::string text =
      "Gender,Job,Disease\n"
      "male,?,flu\n"
      "female,law,hiv\n";
  auto t = ReadCsvFromString(text, BasicOptions());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(*t->ValueAt(0, 0), "female");
}

TEST(CsvTest, KeepColumnsSelectsAndReorders) {
  const std::string text =
      "Age,Gender,Job,Disease\n"
      "33,male,eng,flu\n";
  CsvReadOptions opt = BasicOptions();
  opt.keep_columns = {"Gender", "Disease"};
  auto t = ReadCsvFromString(text, opt);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_columns(), 2u);
  EXPECT_EQ(t->schema()->attribute(0).name, "Gender");
  EXPECT_EQ(t->schema()->sensitive_index(), 1u);
}

TEST(CsvTest, SkipsBlankLines) {
  const std::string text =
      "Gender,Job,Disease\n"
      "\n"
      "male,eng,flu\n"
      "   \n";
  auto t = ReadCsvFromString(text, BasicOptions());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1u);
}

TEST(CsvTest, ErrorsOnRaggedRow) {
  const std::string text =
      "Gender,Job,Disease\n"
      "male,eng\n";
  auto t = ReadCsvFromString(text, BasicOptions());
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, ErrorsOnMissingSensitiveAttribute) {
  const std::string text = "A,B\nx,y\n";
  auto t = ReadCsvFromString(text, BasicOptions());
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, ErrorsOnUnknownKeepColumn) {
  const std::string text = "A,Disease\nx,y\n";
  CsvReadOptions opt = BasicOptions();
  opt.keep_columns = {"Nope", "Disease"};
  EXPECT_FALSE(ReadCsvFromString(text, opt).ok());
}

TEST(CsvTest, ErrorsOnEmptyInput) {
  EXPECT_FALSE(ReadCsvFromString("", BasicOptions()).ok());
}

TEST(CsvTest, WriteReadRoundTrip) {
  const std::string text =
      "Gender,Job,Disease\n"
      "male,eng,flu\n"
      "female,law,hiv\n"
      "female,eng,flu\n";
  auto t = ReadCsvFromString(text, BasicOptions());
  ASSERT_TRUE(t.ok());

  const std::string path = ::testing::TempDir() + "/recpriv_csv_test.csv";
  ASSERT_TRUE(WriteCsv(*t, path).ok());
  auto back = ReadCsv(path, BasicOptions());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), t->num_rows());
  for (size_t r = 0; r < t->num_rows(); ++r) {
    for (size_t c = 0; c < t->num_columns(); ++c) {
      EXPECT_EQ(*back->ValueAt(r, c), *t->ValueAt(r, c));
    }
  }
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadCsv("/nonexistent/path.csv", BasicOptions()).ok());
}

}  // namespace
}  // namespace recpriv::table
