// Unit tests for string helpers.

#include "common/string_util.h"

#include <gtest/gtest.h>

namespace recpriv {
namespace {

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputIsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts{"x", "y", "zz"};
  EXPECT_EQ(Split(Join(parts, ";"), ';'), parts);
}

TEST(JoinTest, EmptyAndSingleton) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("nochange"), "nochange");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("prefix-rest", "prefix"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("MiXeD-42"), "mixed-42");
}

TEST(FormatTest, Percent) {
  EXPECT_EQ(FormatPercent(0.1234), "12.34%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(FormatTest, WithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(45222), "45,222");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-1000), "-1,000");
}

TEST(FormatTest, DoubleSignificantDigits) {
  EXPECT_EQ(FormatDouble(0.25, 2), "0.25");
  EXPECT_EQ(FormatDouble(1234.5678, 6), "1234.57");
}

// --- base64 ----------------------------------------------------------------

std::vector<uint8_t> Bytes(std::initializer_list<int> values) {
  std::vector<uint8_t> out;
  for (int v : values) out.push_back(uint8_t(v));
  return out;
}

TEST(Base64Test, RoundTripsAllBoundaryLengths) {
  // Every input length 0..9 covers each padding shape (0, 1, 2 '=') on
  // both sides of the decoder's fast-path/tail split (the tail is the last
  // 4-char group; inputs past 3 bytes exercise the fast path too).
  std::vector<uint8_t> data;
  for (size_t n = 0; n <= 9; ++n) {
    const std::string encoded = Base64Encode(data.data(), data.size());
    EXPECT_EQ(encoded.size(), ((n + 2) / 3) * 4) << "n=" << n;
    auto decoded = Base64Decode(encoded);
    ASSERT_TRUE(decoded.ok()) << "n=" << n << ": " << decoded.status();
    EXPECT_EQ(*decoded, data) << "n=" << n;
    data.push_back(uint8_t(0xA0 + n));
  }
}

TEST(Base64Test, KnownVectors) {
  EXPECT_EQ(Base64Encode(nullptr, 0), "");
  const std::string s = "Man";
  EXPECT_EQ(Base64Encode(reinterpret_cast<const uint8_t*>(s.data()), 3),
            "TWFu");
  EXPECT_EQ(*Base64Decode("TWFu"), Bytes({'M', 'a', 'n'}));
  EXPECT_EQ(*Base64Decode("TWE="), Bytes({'M', 'a'}));
  EXPECT_EQ(*Base64Decode("TQ=="), Bytes({'M'}));
  EXPECT_EQ(*Base64Decode(""), Bytes({}));
}

TEST(Base64Test, RejectsMidStreamPaddingWithExactOffset) {
  // '=' decodes to value 64; a non-final group must reject it, never pass
  // it through as data. Each case names the exact offset of the bad byte.
  const struct {
    const char* input;
    size_t offset;
  } cases[] = {
      {"A=AAAAAA", 1},  // fast-path group, slot 1
      {"AA=AAAAA", 2},  // fast-path group, slot 2
      {"AAA=AAAA", 3},  // fast-path group, slot 3
      {"====AAAA", 0},  // whole fast-path group is padding
      {"AAAAA=AAAAAA", 5},  // second fast-path group
      {"=AAA", 0},     // tail group, slot 0 (never legal)
      {"A=AA", 1},     // tail group, slot 1 (never legal)
  };
  for (const auto& c : cases) {
    const auto result = Base64Decode(c.input);
    ASSERT_FALSE(result.ok()) << c.input;
    EXPECT_EQ(result.status().message(),
              "base64: misplaced padding at offset " +
                  std::to_string(c.offset))
        << c.input;
  }
}

TEST(Base64Test, RejectsDataAfterPaddingWithExactOffset) {
  const auto result = Base64Decode("AAAAAA=A");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "base64: data after padding at offset 7");
}

TEST(Base64Test, RejectsInvalidCharactersWithExactOffset) {
  const struct {
    const char* input;
    size_t offset;
  } cases[] = {
      {"AA!A", 2},       // tail group
      {"AAAA*AAA", 4},   // fast-path group
      {"AAAA\nAAA", 4},  // whitespace is not tolerated either
  };
  for (const auto& c : cases) {
    const auto result = Base64Decode(c.input);
    ASSERT_FALSE(result.ok()) << c.input;
    EXPECT_EQ(result.status().message(),
              "base64: invalid character at offset " + std::to_string(c.offset))
        << c.input;
  }
}

TEST(Base64Test, RejectsBadLength) {
  for (const char* input : {"A", "AB", "ABC", "AAAAA"}) {
    EXPECT_FALSE(Base64Decode(input).ok()) << input;
  }
}

}  // namespace
}  // namespace recpriv
