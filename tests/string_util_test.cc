// Unit tests for string helpers.

#include "common/string_util.h"

#include <gtest/gtest.h>

namespace recpriv {
namespace {

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputIsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts{"x", "y", "zz"};
  EXPECT_EQ(Split(Join(parts, ";"), ';'), parts);
}

TEST(JoinTest, EmptyAndSingleton) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("nochange"), "nochange");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("prefix-rest", "prefix"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("MiXeD-42"), "mixed-42");
}

TEST(FormatTest, Percent) {
  EXPECT_EQ(FormatPercent(0.1234), "12.34%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(FormatTest, WithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(45222), "45,222");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-1000), "-1,000");
}

TEST(FormatTest, DoubleSignificantDigits) {
  EXPECT_EQ(FormatDouble(0.25, 2), "0.25");
  EXPECT_EQ(FormatDouble(1234.5678, 6), "1234.57");
}

}  // namespace
}  // namespace recpriv
