// Tests for the l-diversity / t-closeness audits and the smoothing
// enforcement operator.

#include <gtest/gtest.h>

#include <cmath>

#include "anon/ldiversity.h"
#include "anon/tcloseness.h"
#include "common/random.h"
#include "datagen/simple.h"
#include "table/group_index.h"

namespace recpriv::anon {
namespace {

using recpriv::datagen::GroupSpec;
using recpriv::datagen::SimpleDatasetSpec;
using recpriv::table::GroupIndex;
using recpriv::table::Table;

Table MakeTable() {
  SimpleDatasetSpec spec;
  spec.public_attributes = {"Job"};
  spec.sensitive_attribute = "Disease";
  spec.sa_domain = {"flu", "hiv", "bc"};
  // eng: diverse; law: two values; doc: single value (worst case).
  spec.groups.push_back(GroupSpec{{"eng"}, 900, {50, 30, 20}});
  spec.groups.push_back(GroupSpec{{"law"}, 600, {70, 30, 0}});
  spec.groups.push_back(GroupSpec{{"doc"}, 300, {100, 0, 0}});
  return *recpriv::datagen::GenerateSimpleExact(spec);
}

TEST(HistogramEntropyTest, KnownValues) {
  EXPECT_DOUBLE_EQ(HistogramEntropy({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(HistogramEntropy({10, 0}), 0.0);
  EXPECT_NEAR(HistogramEntropy({5, 5}), std::log(2.0), 1e-12);
  EXPECT_NEAR(HistogramEntropy({1, 1, 1, 1}), std::log(4.0), 1e-12);
}

TEST(LDiversityTest, DistinctCheck) {
  GroupIndex idx = GroupIndex::Build(MakeTable());
  auto l1 = CheckDistinctLDiversity(idx, 1);
  EXPECT_TRUE(l1.satisfied());
  auto l2 = CheckDistinctLDiversity(idx, 2);
  EXPECT_EQ(l2.failing_groups, 1u);  // doc
  auto l3 = CheckDistinctLDiversity(idx, 3);
  EXPECT_EQ(l3.failing_groups, 2u);  // law + doc
  EXPECT_EQ(l3.weakest, 1.0);
  EXPECT_NEAR(l3.FailingFraction(), 2.0 / 3.0, 1e-12);
}

TEST(LDiversityTest, EntropyCheck) {
  GroupIndex idx = GroupIndex::Build(MakeTable());
  // doc has entropy 0 < ln(1.01); law has entropy H(0.7,0.3) ~ 0.611.
  auto strict = CheckEntropyLDiversity(idx, 2.0);  // threshold ln 2 ~ 0.693
  EXPECT_EQ(strict.failing_groups, 2u);
  auto loose = CheckEntropyLDiversity(idx, 1.5);  // threshold ~ 0.405
  EXPECT_EQ(loose.failing_groups, 1u);  // only doc
  EXPECT_NEAR(loose.weakest, 0.0, 1e-12);
}

TEST(TotalVariationTest, KnownValues) {
  EXPECT_DOUBLE_EQ(TotalVariationDistance({5, 5}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(TotalVariationDistance({10, 0}, {0, 10}), 1.0);
  EXPECT_NEAR(TotalVariationDistance({7, 3}, {5, 5}), 0.2, 1e-12);
}

TEST(TClosenessTest, AuditAgainstGlobal) {
  GroupIndex idx = GroupIndex::Build(MakeTable());
  // Global distribution: flu (450+420+300)/1800 = 0.65, hiv 0.25, bc 0.10.
  auto tight = CheckTCloseness(idx, 0.05);
  EXPECT_GT(tight.failing_groups, 0u);
  auto vacuous = CheckTCloseness(idx, 1.0);
  EXPECT_TRUE(vacuous.satisfied());
  EXPECT_GT(vacuous.max_distance, 0.2);  // doc is far from global
}

TEST(TClosenessTest, SmoothingReachesTarget) {
  Table data = MakeTable();
  Rng rng(3);
  const double t = 0.1;
  auto smoothed = EnforceTClosenessBySmoothing(data, t, rng);
  ASSERT_TRUE(smoothed.ok());
  EXPECT_EQ(smoothed->num_rows(), data.num_rows());
  GroupIndex idx = GroupIndex::Build(*smoothed);
  auto audit = CheckTCloseness(idx, t + 0.01);  // rounding slack
  EXPECT_TRUE(audit.satisfied())
      << "max distance " << audit.max_distance;
}

TEST(TClosenessTest, SmoothingDestroysGroupSignal) {
  // The paper's core criticism: after smoothing, the "law -> hiv" signal is
  // attenuated toward the global rate.
  Table data = MakeTable();
  Rng rng(5);
  Table smoothed = *EnforceTClosenessBySmoothing(data, 0.05, rng);
  GroupIndex before = GroupIndex::Build(data);
  GroupIndex after = GroupIndex::Build(smoothed);
  // doc group: flu rate 1.0 before; after smoothing it must be pulled far
  // toward the global 0.65.
  auto doc_before = before.groups()[*before.FindGroup({2})].Frequency(0);
  auto doc_after = after.groups()[*after.FindGroup({2})].Frequency(0);
  EXPECT_DOUBLE_EQ(doc_before, 1.0);
  EXPECT_LT(doc_after, 0.75);
}

TEST(TClosenessTest, SmoothingLeavesCompliantGroupsAlone) {
  Table data = MakeTable();
  Rng rng(7);
  // With a huge t nothing changes.
  Table smoothed = *EnforceTClosenessBySmoothing(data, 0.99, rng);
  for (size_t r = 0; r < data.num_rows(); ++r) {
    EXPECT_EQ(smoothed.at(r, 1), data.at(r, 1));
  }
}

TEST(TClosenessTest, SmoothingValidation) {
  Table data = MakeTable();
  Rng rng(9);
  EXPECT_FALSE(EnforceTClosenessBySmoothing(data, -0.1, rng).ok());
  EXPECT_FALSE(EnforceTClosenessBySmoothing(data, 1.1, rng).ok());
}

}  // namespace
}  // namespace recpriv::anon
