// Seeded corruption fuzz over the binary snapshot format: random bit
// flips and truncations applied to a pristine .rps file must either be
// rejected structurally (kDataLoss / kNotImplemented) or leave the
// snapshot's content bit-identical — a corrupt file must never crash the
// reader or silently change an answer. Targeted flips inside every
// checksummed section additionally MUST be rejected.
//
// Deterministic under the harness seed (RECPRIV_SEED reruns a failure);
// runs under the sanitizer matrix in CI, where "never crashes" means no
// ASan/UBSan finding on any of the corrupted inputs either.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/release.h"
#include "common/checksum.h"
#include "common/random.h"
#include "store/snapshot_reader.h"
#include "store/snapshot_writer.h"
#include "table/flat_group_index.h"
#include "testing_util.h"

namespace recpriv::store {
namespace {

namespace fs = std::filesystem;

using recpriv::analysis::ReleaseSnapshot;
using recpriv::table::FlatGroupIndex;

/// Content identity of an opened snapshot: every array the index serves
/// from, every table column, the schema dictionaries, and the privacy
/// parameters, chained through XXH64. Two snapshots with equal
/// fingerprints answer every count query identically.
uint64_t ContentFingerprint(const ReleaseSnapshot& snap) {
  uint64_t h = 0;
  auto mix = [&h](const void* data, size_t len) {
    h = XxHash64(data, len, h);
  };
  auto mix_span = [&](auto span) {
    mix(span.data(), span.size_bytes());
  };
  const FlatGroupIndex::Storage st = snap.index.storage();
  const uint64_t shape[3] = {uint64_t(st.packed), st.num_groups,
                             st.num_records};
  mix(shape, sizeof(shape));
  mix_span(st.packed_keys);
  mix_span(st.na_codes);
  mix_span(st.sa_counts);
  mix_span(st.row_offsets);
  mix_span(st.row_values);
  for (size_t c = 0; c < snap.bundle.data.num_columns(); ++c) {
    const auto& column = snap.bundle.data.column(c);
    mix(column.data(), column.size() * sizeof(column[0]));
  }
  const auto& schema = *snap.bundle.data.schema();
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    for (const std::string& value : schema.attribute(a).domain.values()) {
      mix(value.data(), value.size());
      mix("\x1f", 1);  // separator: {"ab","c"} must differ from {"a","bc"}
    }
  }
  const double params[4] = {snap.bundle.params.retention_p,
                            snap.bundle.params.lambda,
                            snap.bundle.params.delta,
                            double(snap.bundle.params.domain_m)};
  mix(params, sizeof(params));
  mix(&snap.epoch, sizeof(snap.epoch));
  return h;
}

class SnapshotFuzz : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(
        (fs::temp_directory_path() / "recpriv_snapshot_fuzz").string());
    fs::remove_all(*dir_);
    fs::create_directories(*dir_);
    auto snap = recpriv::analysis::SnapshotRelease(
        recpriv::testing::DemoBundle(2015), /*epoch=*/3);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    const std::string path = *dir_ + "/pristine.rps";
    ASSERT_TRUE(WriteSnapshot(**snap, "demo", path).ok());
    std::ifstream in(path, std::ios::binary);
    pristine_ = new std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                         std::istreambuf_iterator<char>());
    ASSERT_GT(pristine_->size(), kSuperblockBytes);
    auto opened = OpenSnapshot(path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    baseline_ = ContentFingerprint(*opened->snapshot);
  }

  static void TearDownTestSuite() {
    fs::remove_all(*dir_);
    delete dir_;
    delete pristine_;
  }

  /// Writes `bytes` to a scratch file and opens it; EXPECTs that the open
  /// either fails with a structured error or yields the baseline content.
  /// Returns true when the open failed (the corruption was detected).
  static bool MustRejectOrMatch(const std::vector<uint8_t>& bytes,
                                const std::string& what) {
    const std::string path = *dir_ + "/corrupt.rps";
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                std::streamsize(bytes.size()));
    }
    auto opened = OpenSnapshot(path);
    if (!opened.ok()) {
      const StatusCode code = opened.status().code();
      EXPECT_TRUE(code == StatusCode::kDataLoss ||
                  code == StatusCode::kNotImplemented)
          << what << ": unexpected error class "
          << opened.status().ToString();
      return true;
    }
    EXPECT_EQ(ContentFingerprint(*opened->snapshot), baseline_)
        << what << ": opened successfully but with DIFFERENT content";
    return false;
  }

  static std::string* dir_;
  static std::vector<uint8_t>* pristine_;
  static uint64_t baseline_;
};

std::string* SnapshotFuzz::dir_ = nullptr;
std::vector<uint8_t>* SnapshotFuzz::pristine_ = nullptr;
uint64_t SnapshotFuzz::baseline_ = 0;

TEST_F(SnapshotFuzz, RandomBitFlipsNeverYieldWrongAnswers) {
  Rng rng(recpriv::testing::HarnessSeed(0xF1155EED));
  size_t detected = 0;
  constexpr size_t kTrials = 220;
  for (size_t trial = 0; trial < kTrials; ++trial) {
    std::vector<uint8_t> bytes = *pristine_;
    // 1-3 independent bit flips anywhere in the file.
    const size_t flips = 1 + rng.NextUint64(3);
    std::string what = "trial " + std::to_string(trial) + " flips";
    for (size_t f = 0; f < flips; ++f) {
      const size_t pos = rng.NextUint64(bytes.size());
      bytes[pos] ^= uint8_t(1u << rng.NextUint64(8));
      what += " " + std::to_string(pos);
    }
    if (MustRejectOrMatch(bytes, what)) ++detected;
  }
  // Only flips landing in alignment padding can go unnoticed; the demo
  // file is >95% checksummed payload, so detection must dominate.
  EXPECT_GT(detected, kTrials / 2);
}

TEST_F(SnapshotFuzz, RandomTruncationsAlwaysRejected) {
  Rng rng(recpriv::testing::HarnessSeed(0x7A75C47E));
  for (size_t trial = 0; trial < 80; ++trial) {
    std::vector<uint8_t> bytes = *pristine_;
    bytes.resize(rng.NextUint64(bytes.size()));  // strictly shorter
    EXPECT_TRUE(MustRejectOrMatch(bytes,
                                  "truncate to " +
                                      std::to_string(bytes.size())))
        << "a truncated file must never open";
  }
}

TEST_F(SnapshotFuzz, GrowingTheFileIsRejected) {
  std::vector<uint8_t> bytes = *pristine_;
  bytes.insert(bytes.end(), 128, 0xCC);  // trailing garbage
  EXPECT_TRUE(MustRejectOrMatch(bytes, "append 128 bytes"))
      << "file_bytes mismatch must be rejected";
}

TEST_F(SnapshotFuzz, EverySectionDetectsTargetedFlips) {
  const std::string path = *dir_ + "/pristine.rps";
  auto info = InspectSnapshot(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  Rng rng(recpriv::testing::HarnessSeed(0x5EC7104));
  for (const SectionEntry& e : info->sections) {
    // Several positions per section: first byte, last byte, random interior.
    std::vector<uint64_t> positions = {e.offset, e.offset + e.bytes - 1};
    for (int i = 0; i < 6; ++i) {
      positions.push_back(e.offset + rng.NextUint64(e.bytes));
    }
    for (const uint64_t pos : positions) {
      std::vector<uint8_t> bytes = *pristine_;
      bytes[pos] ^= 0x40;
      EXPECT_TRUE(MustRejectOrMatch(
          bytes, "section " + std::to_string(e.kind) + " byte " +
                     std::to_string(pos)))
          << "a flip inside checksummed section " << e.kind
          << " must be detected";
    }
  }
}

TEST_F(SnapshotFuzz, HeaderFieldFlipsAreDetected) {
  // Every byte of the superblock + section table, exhaustively.
  const Superblock sb = DecodeSuperblock(pristine_->data());
  const uint64_t header_bytes = kSuperblockBytes + sb.table_bytes;
  for (uint64_t pos = 0; pos < header_bytes; ++pos) {
    std::vector<uint8_t> bytes = *pristine_;
    bytes[pos] ^= 0x01;
    EXPECT_TRUE(MustRejectOrMatch(bytes,
                                  "header byte " + std::to_string(pos)))
        << "the header crc covers byte " << pos;
  }
}

}  // namespace
}  // namespace recpriv::store
