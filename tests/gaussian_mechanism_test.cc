// Tests for the Gaussian DP mechanism and the Corollary-1 claim that the
// NIR ratio attack is noise-distribution agnostic.

#include "dp/gaussian_mechanism.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/ratio_estimator.h"

namespace recpriv::dp {
namespace {

TEST(GaussianMechanismTest, SigmaCalibration) {
  auto mech = GaussianMechanism::Make(1.0, 1e-5, 1.0);
  ASSERT_TRUE(mech.ok());
  EXPECT_NEAR(mech->sigma(), std::sqrt(2.0 * std::log(1.25e5)), 1e-12);
  // Halving epsilon doubles sigma.
  auto half = GaussianMechanism::Make(0.5, 1e-5, 1.0);
  EXPECT_NEAR(half->sigma(), 2.0 * mech->sigma(), 1e-12);
}

TEST(GaussianMechanismTest, Validation) {
  EXPECT_FALSE(GaussianMechanism::Make(0.0, 1e-5, 1.0).ok());
  EXPECT_FALSE(GaussianMechanism::Make(1.0, 0.0, 1.0).ok());
  EXPECT_FALSE(GaussianMechanism::Make(1.0, 1.0, 1.0).ok());
  EXPECT_FALSE(GaussianMechanism::Make(1.0, 1e-5, 0.0).ok());
  EXPECT_FALSE(GaussianMechanism::FromSigma(0.0).ok());
}

TEST(GaussianMechanismTest, NoiseMoments) {
  auto mech = *GaussianMechanism::FromSigma(6.0);
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double noise = mech.NoisyAnswer(0.0, rng);
    sum += noise;
    sum_sq += noise * noise;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.12);
  EXPECT_NEAR(sum_sq / n, 36.0, 1.0);
}

TEST(GaussianMechanismTest, Corollary1RatioAttackWorksForGaussianToo) {
  // Lemma 1 / Corollary 1: any zero-mean fixed-variance noise lets Y/X
  // approach y/x as x grows — the moments match the Taylor approximation.
  auto mech = *GaussianMechanism::FromSigma(15.0);
  Rng rng(23);
  const double x = 1200.0, y = 900.0;
  const int reps = 200000;
  double sum = 0.0;
  for (int i = 0; i < reps; ++i) {
    sum += mech.NoisyAnswer(y, rng) / mech.NoisyAnswer(x, rng);
  }
  stats::RatioMoments predicted =
      stats::ApproximateRatioMoments({x, y, mech.variance()});
  EXPECT_NEAR(sum / reps, predicted.mean, 5e-4);
}

TEST(GaussianMechanismTest, DisclosureSharpensWithScale) {
  // |E[Y/X] - y/x| ~ (y/x) V/x^2 shrinks as x grows at fixed sigma.
  auto mech = *GaussianMechanism::FromSigma(20.0);
  auto bias = [&](double x) {
    return std::abs(
        stats::ApproximateRatioMoments({x, 0.8 * x, mech.variance()}).bias);
  };
  EXPECT_GT(bias(100.0), bias(1000.0));
  EXPECT_GT(bias(1000.0), bias(10000.0));
}

}  // namespace
}  // namespace recpriv::dp
