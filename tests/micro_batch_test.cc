// Property tests of the micro-batching query scheduler
// (serve/micro_batcher.h): whatever the batch window, the concurrency, the
// epoch pinning, or the republish races, scheduled answers must be
// BIT-IDENTICAL to the engine's unbatched reference evaluation — fusing is
// an execution strategy, never a semantic.
//
// All randomness is seeded through tests/testing_util.h, so a failure
// reproduces exactly (override with RECPRIV_SEED).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "client/in_process_client.h"
#include "common/random.h"
#include "query/count_query.h"
#include "serve/micro_batcher.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"
#include "serve/wire.h"
#include "testing_util.h"

namespace recpriv::serve {
namespace {

using recpriv::query::CountQuery;
using recpriv::testing::DemoBundle;
using recpriv::testing::HarnessSeed;

/// Random valid query against the demo schema (Job, City public; Disease
/// SA with m = 3): each public attribute bound with probability 1/2.
CountQuery RandomDemoQuery(Rng& rng) {
  CountQuery q(3);
  for (size_t attr = 0; attr < 2; ++attr) {
    if (rng.NextBernoulli(0.5)) {
      q.na_predicate.Bind(attr, uint32_t(rng.NextUint64(2)));
      ++q.dimensionality;
    }
  }
  q.sa_code = uint32_t(rng.NextUint64(3));
  return q;
}

bool SameAnswer(const Answer& a, const Answer& b) {
  return a.observed == b.observed && a.matched_size == b.matched_size &&
         a.estimate == b.estimate;
}

struct Stack {
  std::shared_ptr<ReleaseStore> store;
  std::shared_ptr<QueryEngine> engine;

  static Stack Make(int window_us, size_t retained_epochs = 64,
                    size_t cache_capacity = 1 << 12) {
    Stack s;
    s.store = std::make_shared<ReleaseStore>(retained_epochs);
    QueryEngineOptions options;
    options.num_threads = 2;
    options.cache_capacity = cache_capacity;
    options.micro_batch_window_us = window_us;
    s.engine = std::make_shared<QueryEngine>(s.store, options);
    return s;
  }
};

TEST(MicroBatchTest, ScheduledAnswersBitIdenticalAcrossWindows) {
  Rng seeder(HarnessSeed(0xBA7C4ED5u));
  for (int window_us : {0, 50, 200, 2000}) {
    Stack s = Stack::Make(window_us);
    ASSERT_TRUE(s.store->Publish("demo", DemoBundle(7)).ok());
    auto snap = s.store->Get("demo");
    ASSERT_TRUE(snap.ok());

    constexpr size_t kThreads = 4;
    constexpr size_t kOps = 40;
    // Streams and reference answers computed up front, unbatched.
    std::vector<std::vector<CountQuery>> streams(kThreads);
    std::vector<std::vector<Answer>> expected(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      Rng rng = seeder.Fork();
      for (size_t i = 0; i < kOps; ++i) {
        streams[t].push_back(RandomDemoQuery(rng));
        expected[t].push_back(EvaluateUncached(**snap, streams[t].back()));
      }
    }

    std::atomic<size_t> mismatches{0};
    std::atomic<size_t> failures{0};
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (size_t i = 0; i < streams[t].size(); ++i) {
          auto result =
              s.engine->AnswerBatchScheduled("demo", *snap, {streams[t][i]});
          if (!result.ok() || result->answers.size() != 1) {
            failures.fetch_add(1);
            return;
          }
          if (!SameAnswer(result->answers[0], expected[t][i])) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0u) << "window " << window_us;
    EXPECT_EQ(mismatches.load(), 0u) << "window " << window_us;

    auto stats = s.engine->scheduler_stats();
    if (window_us == 0) {
      EXPECT_FALSE(stats.has_value());
    } else {
      ASSERT_TRUE(stats.has_value());
      EXPECT_EQ(stats->submissions, kThreads * kOps);
      EXPECT_EQ(stats->batched_queries, kThreads * kOps);
      EXPECT_EQ(stats->window_us, uint64_t(window_us));
    }
  }
}

TEST(MicroBatchTest, ConcurrentSubmissionsActuallyCoalesce) {
  // A wide window plus simultaneous submitters: at least one submission
  // must ride another's batch (20ms makes a miss essentially impossible,
  // and the assertion is on coalescing, not on exact batch shapes).
  Stack s = Stack::Make(/*window_us=*/20000);
  ASSERT_TRUE(s.store->Publish("demo", DemoBundle(7)).ok());
  auto snap = s.store->Get("demo");
  ASSERT_TRUE(snap.ok());

  constexpr size_t kThreads = 4;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      CountQuery q(3);
      q.sa_code = uint32_t(t % 3);
      auto result = s.engine->AnswerBatchScheduled("demo", *snap, {q});
      EXPECT_TRUE(result.ok());
    });
  }
  for (auto& thread : threads) thread.join();

  auto stats = s.engine->scheduler_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->submissions, kThreads);
  EXPECT_GT(stats->coalesced_submissions, 0u);
  EXPECT_LT(stats->batches, kThreads);
  EXPECT_GE(stats->max_batch_submissions, 2u);
}

TEST(MicroBatchTest, PinnedEpochBitIdenticalAcrossRepublishRace) {
  Stack s = Stack::Make(/*window_us=*/150);
  ASSERT_TRUE(s.store->Publish("pinned", DemoBundle(1)).ok());
  auto pinned = s.store->Get("pinned", 1);
  ASSERT_TRUE(pinned.ok());

  Rng seeder(HarnessSeed(0x9122BA7Cu));
  constexpr size_t kThreads = 3;
  constexpr size_t kOps = 30;
  std::vector<std::vector<CountQuery>> streams(kThreads);
  std::vector<std::vector<Answer>> expected(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    Rng rng = seeder.Fork();
    for (size_t i = 0; i < kOps; ++i) {
      streams[t].push_back(RandomDemoQuery(rng));
      expected[t].push_back(EvaluateUncached(**pinned, streams[t].back()));
    }
  }

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < streams[t].size(); ++i) {
        // Resolve the pin per request, as the service layer does.
        auto snap = s.store->Get("pinned", 1);
        if (!snap.ok()) {
          failures.fetch_add(1);
          return;
        }
        auto result = s.engine->AnswerBatchScheduled("pinned", *snap,
                                                     {streams[t][i]});
        if (!result.ok() || result->epoch != 1u) {
          failures.fetch_add(1);
          return;
        }
        if (!SameAnswer(result->answers[0], expected[t][i])) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&] {
    for (uint64_t r = 0; r < 12; ++r) {
      ASSERT_TRUE(s.store->Publish("pinned", DemoBundle(100 + r)).ok());
      std::this_thread::sleep_for(std::chrono::microseconds(400));
    }
  });
  for (auto& thread : threads) thread.join();
  writer.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);

  // Mixed epochs were in flight, and coalescing is keyed on the snapshot:
  // a pinned batch can never have fused with a current-epoch batch, which
  // is exactly why the answers stayed bit-identical.
  auto current = s.store->Get("pinned");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ((*current)->epoch, 13u);
}

TEST(MicroBatchTest, InvalidSubmissionFailsAloneAndNeverPoisonsABatch) {
  Stack s = Stack::Make(/*window_us=*/20000);
  ASSERT_TRUE(s.store->Publish("demo", DemoBundle(7)).ok());
  auto snap = s.store->Get("demo");
  ASSERT_TRUE(snap.ok());

  // Leader with a valid query, parked in its collection window.
  std::thread leader([&] {
    CountQuery q(3);
    q.sa_code = 1;
    auto result = s.engine->AnswerBatchScheduled("demo", *snap, {q});
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->answers.size(), 1u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));

  // A rider with an out-of-domain SA code must fail its own submission
  // (validated before coalescing), not the leader's batch.
  CountQuery bad(3);
  bad.sa_code = 99;
  auto rejected = s.engine->AnswerBatchScheduled("demo", *snap, {bad});
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  leader.join();

  auto stats = s.engine->scheduler_stats();
  ASSERT_TRUE(stats.has_value());
  // The rejected submission never became a rider.
  EXPECT_EQ(stats->batched_queries, 1u);
}

TEST(MicroBatchTest, DuplicateRidersShareOneEvaluation) {
  Stack s = Stack::Make(/*window_us=*/20000, /*retained_epochs=*/4,
                        /*cache_capacity=*/0);  // no LRU: dedup is the engine's
  ASSERT_TRUE(s.store->Publish("demo", DemoBundle(7)).ok());
  auto snap = s.store->Get("demo");
  ASSERT_TRUE(snap.ok());

  CountQuery hot(3);
  hot.sa_code = 2;
  const Answer expected = EvaluateUncached(**snap, hot);

  constexpr size_t kThreads = 4;
  std::atomic<size_t> bad{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto result = s.engine->AnswerBatchScheduled("demo", *snap, {hot});
      if (!result.ok() || !SameAnswer(result->answers[0], expected)) {
        bad.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0u);
}

TEST(MicroBatchTest, FollowersNeverJoinAFullBatch) {
  // With single-query submissions, no fused batch may ever exceed the cap
  // under ANY interleaving: a full batch is never joined, even in the gap
  // between filling up and its leader closing it — the next submission
  // leads a fresh batch instead.
  Stack s;
  s.store = std::make_shared<ReleaseStore>();
  QueryEngineOptions options;
  options.num_threads = 2;
  options.micro_batch_window_us = 20000;
  options.micro_batch_max_queries = 2;
  s.engine = std::make_shared<QueryEngine>(s.store, options);
  ASSERT_TRUE(s.store->Publish("demo", DemoBundle(7)).ok());
  auto snap = s.store->Get("demo");
  ASSERT_TRUE(snap.ok());

  constexpr size_t kThreads = 6;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      CountQuery q(3);
      q.sa_code = uint32_t(t % 3);
      if (!s.engine->AnswerBatchScheduled("demo", *snap, {q}).ok()) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0u);

  auto stats = s.engine->scheduler_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->submissions, kThreads);
  EXPECT_LE(stats->max_batch_queries, 2u);
  EXPECT_GE(stats->batches, kThreads / 2);
}

TEST(MicroBatchTest, OversizedLeaderSubmissionSkipsTheWindow) {
  // max_batch_queries bounds LATENCY too: a submission already at (or
  // past) the cap must evaluate immediately, not park for the window.
  Stack s;
  s.store = std::make_shared<ReleaseStore>();
  QueryEngineOptions options;
  options.num_threads = 2;
  options.micro_batch_window_us = 1000000;  // 1s: a wait would be obvious
  options.micro_batch_max_queries = 4;
  s.engine = std::make_shared<QueryEngine>(s.store, options);
  ASSERT_TRUE(s.store->Publish("demo", DemoBundle(7)).ok());
  auto snap = s.store->Get("demo");
  ASSERT_TRUE(snap.ok());

  std::vector<CountQuery> big;
  for (uint32_t sa = 0; sa < 3; ++sa) {
    for (size_t d = 0; d < 2; ++d) {
      CountQuery q(3);
      if (d == 1) {
        q.na_predicate.Bind(0, 0);
        q.dimensionality = 1;
      }
      q.sa_code = sa;
      big.push_back(std::move(q));
    }
  }
  ASSERT_GT(big.size(), options.micro_batch_max_queries);

  const auto start = std::chrono::steady_clock::now();
  auto result = s.engine->AnswerBatchScheduled("demo", *snap, big);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), big.size());
  for (size_t i = 0; i < big.size(); ++i) {
    EXPECT_TRUE(
        SameAnswer(result->answers[i], EvaluateUncached(**snap, big[i])))
        << i;
  }
  EXPECT_LT(elapsed, std::chrono::milliseconds(500));
}

TEST(MicroBatchTest, NonPoolLeaderWithAllWorkersParkedAsFollowersCompletes) {
  // The nastiest shape: an EXTERNAL thread leads a batch while every pool
  // worker is parked as a follower of that same batch. The leader's fused
  // evaluation then runs ParallelFor from outside the pool with zero free
  // workers — it must complete anyway (the caller drains its own chunks;
  // common/thread_pool.cc), or the whole serving stack wedges. Before
  // caller participation this test hung; ctest's TIMEOUT would fail it.
  Stack s;
  s.store = std::make_shared<ReleaseStore>();
  QueryEngineOptions options;
  options.num_threads = 2;
  options.cache_capacity = 0;
  options.micro_batch_window_us = 30000;
  // Force per-query postings: on the 4-group demo release the auto pick
  // would be a shard scan, which inlines below its 64-group min grain and
  // would never reach the ParallelFor dispatch under test.
  options.strategy = EvalStrategy::kPostings;
  s.engine = std::make_shared<QueryEngine>(s.store, options);
  ASSERT_TRUE(s.store->Publish("demo", DemoBundle(7)).ok());
  auto snap = s.store->Get("demo");
  ASSERT_TRUE(snap.ok());

  // Leader: enough distinct queries that the fused evaluation takes the
  // parallel path rather than the single-grain inline shortcut.
  Rng rng(HarnessSeed(0xDEAD70C5u));
  std::vector<CountQuery> leader_batch;
  std::vector<Answer> expected;
  for (size_t i = 0; i < 8; ++i) {
    leader_batch.push_back(RandomDemoQuery(rng));
    expected.push_back(EvaluateUncached(**snap, leader_batch.back()));
  }

  std::atomic<size_t> follower_failures{0};
  std::thread leader([&] {
    auto result =
        s.engine->AnswerBatchScheduled("demo", *snap, leader_batch);
    ASSERT_TRUE(result.ok()) << result.status();
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_TRUE(SameAnswer(result->answers[i], expected[i])) << i;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(3));

  // Park BOTH pool workers as followers of the leader's open batch.
  for (size_t w = 0; w < s.engine->pool().num_threads(); ++w) {
    s.engine->pool().Submit([&, w] {
      CountQuery q(3);
      q.sa_code = uint32_t(w % 3);
      auto result = s.engine->AnswerBatchScheduled("demo", *snap, {q});
      if (!result.ok()) follower_failures.fetch_add(1);
    });
  }
  leader.join();
  s.engine->pool().Wait();
  EXPECT_EQ(follower_failures.load(), 0u);

  auto stats = s.engine->scheduler_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->coalesced_submissions, 1u);
}

TEST(MicroBatchTest, SchedulerStatsSurfaceThroughServiceAndWire) {
  Stack s = Stack::Make(/*window_us=*/100);
  client::InProcessClient admin(s.engine);
  ASSERT_TRUE(admin.PublishBundle("demo", DemoBundle(7)).ok());
  client::QueryRequest request;
  request.release = "demo";
  request.queries.push_back(client::QuerySpec{{}, "flu"});
  ASSERT_TRUE(admin.Query(request).ok());

  auto stats = admin.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->scheduler.has_value());
  EXPECT_EQ(stats->scheduler->window_us, 100u);
  EXPECT_GE(stats->scheduler->submissions, 1u);

  // Wire v2 stats carries (and round-trips) the scheduler section.
  const std::string line =
      HandleRequestLine(R"({"v":2,"id":9,"op":"stats"})", *s.engine);
  EXPECT_NE(line.find("\"scheduler\""), std::string::npos) << line;
  auto parsed = wire::ParseResponse(line, 9);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto decoded = wire::DecodeStatsResponse(*parsed);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(decoded->scheduler.has_value());
  EXPECT_EQ(decoded->scheduler->window_us, 100u);

  // And without a scheduler the section is absent (golden transcripts pin
  // this: the stats op of an unscheduled engine is byte-stable).
  Stack plain = Stack::Make(/*window_us=*/0);
  client::InProcessClient plain_admin(plain.engine);
  ASSERT_TRUE(plain_admin.PublishBundle("demo", DemoBundle(7)).ok());
  const std::string plain_line =
      HandleRequestLine(R"({"v":2,"id":1,"op":"stats"})", *plain.engine);
  EXPECT_EQ(plain_line.find("\"scheduler\""), std::string::npos) << plain_line;
}

}  // namespace
}  // namespace recpriv::serve
