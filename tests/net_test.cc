// Tests for the POSIX socket layer (net/socket.h) and the bounded
// line-framed channel (net/line_channel.h): bind/connect/accept round
// trips, framing across split and coalesced writes, CRLF tolerance, the
// oversized-line discard-and-resync path, read timeouts, EOF (including a
// final unterminated line), and write-after-close errors. Also the fault
// injector's schedule determinism and the channel's behavior under each
// injected fault mechanic: split raw writes, mid-line disconnects, and
// delayed writes.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include "net/fault_injector.h"
#include "net/line_channel.h"
#include "net/socket.h"

namespace recpriv::net {
namespace {

/// A connected (server, client) channel pair over loopback.
struct ChannelPair {
  LineChannel server;
  LineChannel client;
};

ChannelPair MakePair(LineChannelOptions options = {}) {
  auto listener = Listener::Bind("127.0.0.1", 0);
  EXPECT_TRUE(listener.ok()) << listener.status();
  auto client_fd = ConnectTcp("127.0.0.1", listener->port(), 2000);
  EXPECT_TRUE(client_fd.ok()) << client_fd.status();
  auto accepted = listener->Accept(2000);
  EXPECT_TRUE(accepted.ok()) << accepted.status();
  EXPECT_FALSE(accepted->timed_out);
  return ChannelPair{LineChannel(std::move(accepted->fd), options),
                     LineChannel(std::move(*client_fd), options)};
}

TEST(SocketTest, BindEphemeralPortAndConnect) {
  auto listener = Listener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  EXPECT_GT(listener->port(), 0);

  auto fd = ConnectTcp("127.0.0.1", listener->port(), 2000);
  ASSERT_TRUE(fd.ok()) << fd.status();
  auto accepted = listener->Accept(2000);
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  EXPECT_FALSE(accepted->timed_out);
  EXPECT_TRUE(accepted->fd.valid());
}

TEST(SocketTest, AcceptTimesOutQuietly) {
  auto listener = Listener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  auto accepted = listener->Accept(10);
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  EXPECT_TRUE(accepted->timed_out);
}

TEST(SocketTest, AcceptOnClosedListenerErrors) {
  auto listener = Listener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  listener->Close();
  auto accepted = listener->Accept(10);
  EXPECT_FALSE(accepted.ok());
}

TEST(SocketTest, ConnectToDeadPortFails) {
  // Bind-then-close guarantees a port nothing is listening on.
  auto listener = Listener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const uint16_t port = listener->port();
  listener->Close();
  auto fd = ConnectTcp("127.0.0.1", port, 2000);
  EXPECT_FALSE(fd.ok());
}

TEST(LineChannelTest, RoundTripsLines) {
  ChannelPair pair = MakePair();
  ASSERT_TRUE(pair.client.WriteLine("hello", 1000).ok());
  ASSERT_TRUE(pair.client.WriteLine("world", 1000).ok());

  auto first = pair.server.ReadLine(2000);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->event, ReadEvent::kLine);
  EXPECT_EQ(first->line, "hello");

  auto second = pair.server.ReadLine(2000);
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_EQ(second->event, ReadEvent::kLine);
  EXPECT_EQ(second->line, "world");
}

TEST(LineChannelTest, StripsCarriageReturn) {
  ChannelPair pair = MakePair();
  ASSERT_TRUE(pair.client.WriteLine("windows\r", 1000).ok());
  auto read = pair.server.ReadLine(2000);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->event, ReadEvent::kLine);
  EXPECT_EQ(read->line, "windows");
}

TEST(LineChannelTest, ReadTimesOutOnPartialLine) {
  ChannelPair pair = MakePair();
  // Raw send: "rest" has no newline yet, so its frame is incomplete.
  const std::string raw = "full-line\nrest";
  ASSERT_EQ(::send(pair.client.fd(), raw.data(), raw.size(), MSG_NOSIGNAL),
            ssize_t(raw.size()));
  auto first = pair.server.ReadLine(2000);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->event, ReadEvent::kLine);
  EXPECT_EQ(first->line, "full-line");

  auto partial = pair.server.ReadLine(50);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_EQ(partial->event, ReadEvent::kTimeout);

  // Completing the line later still yields the whole frame ("rest" was
  // buffered across the timeout).
  ASSERT_TRUE(pair.client.WriteLine("-completed", 1000).ok());
  auto completed = pair.server.ReadLine(2000);
  ASSERT_TRUE(completed.ok());
  ASSERT_EQ(completed->event, ReadEvent::kLine);
  EXPECT_EQ(completed->line, "rest-completed");
}

TEST(LineChannelTest, NonBlockingReadDrainsAvailableData) {
  ChannelPair pair = MakePair();
  ASSERT_TRUE(pair.client.WriteLine("ready", 1000).ok());
  // Give the kernel a moment to deliver over loopback.
  for (int i = 0; i < 100; ++i) {
    auto read = pair.server.ReadLine(/*timeout_ms=*/0);
    ASSERT_TRUE(read.ok()) << read.status();
    if (read->event == ReadEvent::kLine) {
      EXPECT_EQ(read->line, "ready");
      return;
    }
    ASSERT_EQ(read->event, ReadEvent::kTimeout);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "line never arrived via non-blocking reads";
}

TEST(LineChannelTest, OversizedLineIsDiscardedAndSessionResyncs) {
  LineChannelOptions options;
  options.max_line_bytes = 64;
  ChannelPair pair = MakePair(options);

  const std::string huge(1000, 'x');
  ASSERT_TRUE(pair.client.WriteLine(huge, 1000).ok());
  ASSERT_TRUE(pair.client.WriteLine("after", 1000).ok());

  auto first = pair.server.ReadLine(2000);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->event, ReadEvent::kOversized);

  auto second = pair.server.ReadLine(2000);
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_EQ(second->event, ReadEvent::kLine);
  EXPECT_EQ(second->line, "after");
}

TEST(LineChannelTest, ExactLimitLineIsAccepted) {
  LineChannelOptions options;
  options.max_line_bytes = 64;
  ChannelPair pair = MakePair(options);
  const std::string at_limit(64, 'y');
  ASSERT_TRUE(pair.client.WriteLine(at_limit, 1000).ok());
  auto read = pair.server.ReadLine(2000);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->event, ReadEvent::kLine);
  EXPECT_EQ(read->line, at_limit);
}

TEST(LineChannelTest, EofAfterCleanClose) {
  ChannelPair pair = MakePair();
  ASSERT_TRUE(pair.client.WriteLine("bye", 1000).ok());
  pair.client.Close();

  auto line = pair.server.ReadLine(2000);
  ASSERT_TRUE(line.ok());
  ASSERT_EQ(line->event, ReadEvent::kLine);
  EXPECT_EQ(line->line, "bye");

  auto eof = pair.server.ReadLine(2000);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(eof->event, ReadEvent::kEof);
}

TEST(LineChannelTest, FinalUnterminatedLineIsDelivered) {
  ChannelPair pair = MakePair();
  // Raw send (WriteLine would append '\n'): the second line is
  // unterminated when the peer closes.
  const std::string raw = "last-words\nno-newline";
  ASSERT_EQ(::send(pair.client.fd(), raw.data(), raw.size(), MSG_NOSIGNAL),
            ssize_t(raw.size()));
  pair.client.Close();

  auto first = pair.server.ReadLine(2000);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->event, ReadEvent::kLine);
  EXPECT_EQ(first->line, "last-words");

  auto second = pair.server.ReadLine(2000);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->event, ReadEvent::kLine);
  EXPECT_EQ(second->line, "no-newline");

  auto eof = pair.server.ReadLine(2000);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(eof->event, ReadEvent::kEof);
}

TEST(LineChannelTest, WriteAfterPeerCloseEventuallyErrors) {
  ChannelPair pair = MakePair();
  pair.server.Close();
  // The first write may land in the kernel buffer before the RST is
  // observed; repeated writes must surface an error, not SIGPIPE.
  bool errored = false;
  for (int i = 0; i < 50 && !errored; ++i) {
    errored = !pair.client.WriteLine("into the void", 200).ok();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(errored);
}

TEST(LineChannelTest, ClosedChannelRejectsIo) {
  ChannelPair pair = MakePair();
  pair.client.Close();
  EXPECT_FALSE(pair.client.WriteLine("x", 100).ok());
  EXPECT_FALSE(pair.client.ReadLine(100).ok());
}

// --- fault injection against the channel ------------------------------------
// The FaultInjector (net/fault_injector.h) decides WHAT happens to a
// write; these tests drive the channel through each fault mechanic the
// transports implement — split raw writes, mid-line disconnects, delayed
// writes — and assert the reader's contract: reassembly, clean EOF, and
// timeout-without-wedging.

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultOptions options;
  options.seed = 42;
  options.drop_rate = 0.2;
  options.truncate_rate = 0.2;
  options.delay_rate = 0.2;
  FaultInjector a(options);
  FaultInjector b(options);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(a.SampleWrite(), b.SampleWrite()) << "write " << i;
  }
  EXPECT_EQ(a.Stats().total(), b.Stats().total());
  EXPECT_EQ(a.Stats().writes, 300u);
}

TEST(FaultInjectorTest, RatesZeroAndOneAreExact) {
  FaultInjector quiet(FaultOptions{});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(quiet.SampleWrite(), FaultKind::kNone);
  }
  EXPECT_EQ(quiet.Stats().total(), 0u);

  // Rates are evaluated in fixed order; drop at 1.0 shadows later kinds.
  FaultOptions always;
  always.drop_rate = 1.0;
  always.delay_rate = 1.0;
  FaultInjector noisy(always);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(noisy.SampleWrite(), FaultKind::kDrop);
  }
  EXPECT_EQ(noisy.Stats().drops, 50u);
  EXPECT_EQ(noisy.Stats().delays, 0u);
}

TEST(LineChannelFaultTest, ShortWriteChunksReassembleIntoOneLine) {
  // The short-write fault sends one frame as two raw chunks with a pause
  // (client/tcp_transport.cc does exactly this); the reader must see one
  // intact line, never a torn one.
  FaultOptions options;
  options.short_write_rate = 1.0;
  FaultInjector injector(options);
  ASSERT_EQ(injector.SampleWrite(), FaultKind::kShortWrite);

  ChannelPair pair = MakePair();
  const std::string line = "torn-in-transit\n";
  const size_t half = line.size() / 2;
  ASSERT_TRUE(pair.client.WriteRaw(line.data(), half, 1000).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(
      pair.client.WriteRaw(line.data() + half, line.size() - half, 1000).ok());

  auto read = pair.server.ReadLine(2000);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->event, ReadEvent::kLine);
  EXPECT_EQ(read->line, "torn-in-transit");
}

TEST(LineChannelFaultTest, MidLineDisconnectDeliversPartialThenEof) {
  // The truncate fault sends a prefix of the frame and closes — the
  // server-side contract is the unterminated-final-line rule: the partial
  // arrives as a line (the wire layer will reject it as malformed), then a
  // clean EOF, never a hang or a torn later frame.
  FaultOptions options;
  options.truncate_rate = 1.0;
  FaultInjector injector(options);
  ASSERT_EQ(injector.SampleWrite(), FaultKind::kTruncate);

  ChannelPair pair = MakePair();
  const std::string line = "{\"op\":\"query\",...}\n";
  ASSERT_TRUE(pair.client.WriteRaw(line.data(), line.size() / 2, 1000).ok());
  pair.client.Close();

  auto partial = pair.server.ReadLine(2000);
  ASSERT_TRUE(partial.ok()) << partial.status();
  ASSERT_EQ(partial->event, ReadEvent::kLine);
  EXPECT_EQ(partial->line, line.substr(0, line.size() / 2));

  auto eof = pair.server.ReadLine(2000);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(eof->event, ReadEvent::kEof);
}

TEST(LineChannelFaultTest, DelayedWriteTimesOutThenArrivesIntact) {
  // The delay fault postpones the write past the reader's first timeout;
  // the reader must report kTimeout (not an error, not a wedge) and then
  // deliver the line on the next call.
  FaultOptions options;
  options.delay_rate = 1.0;
  options.delay_ms = 40;
  FaultInjector injector(options);
  ASSERT_EQ(injector.SampleWrite(), FaultKind::kDelay);

  ChannelPair pair = MakePair();
  std::thread writer([&] {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(injector.options().delay_ms));
    ASSERT_TRUE(pair.client.WriteLine("late but whole", 1000).ok());
  });

  auto early = pair.server.ReadLine(5);
  ASSERT_TRUE(early.ok()) << early.status();
  EXPECT_EQ(early->event, ReadEvent::kTimeout);

  auto read = pair.server.ReadLine(2000);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->event, ReadEvent::kLine);
  EXPECT_EQ(read->line, "late but whole");
  writer.join();
}

// --- binary frames (negotiated sessions) ------------------------------------

TEST(FrameTest, JsonFrameRoundTrips) {
  ChannelPair pair = MakePair();
  const std::string json = "{\"op\":\"list\",\"v\":2}";
  ASSERT_TRUE(pair.client.WriteFrame(json, std::string_view(), 2000).ok());
  auto read = pair.server.ReadFrame(2000);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->event, ReadEvent::kLine);
  EXPECT_EQ(read->type, kFrameJson);
  EXPECT_EQ(read->payload, json);
  EXPECT_TRUE(read->attachment.empty());
}

TEST(FrameTest, AttachmentFrameCarriesRawBytes) {
  ChannelPair pair = MakePair();
  const std::string json = "{\"data_bytes\":5,\"ok\":true}";
  // Raw bytes that would be mangled by line framing: newlines, NULs, and
  // high bytes — exactly what base64 existed to avoid.
  const std::string bytes("\n\0\xff\x80=", 5);
  ASSERT_TRUE(pair.server.WriteFrame(json, bytes, 2000).ok());
  auto read = pair.client.ReadFrame(2000);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->event, ReadEvent::kLine);
  EXPECT_EQ(read->type, kFrameJsonWithBytes);
  EXPECT_EQ(read->payload, json);
  EXPECT_EQ(read->attachment, bytes);
}

TEST(FrameTest, FramesSurviveSplitAndCoalescedDelivery) {
  ChannelPair pair = MakePair();
  // Two frames sent as raw bytes: the first split into single-byte writes,
  // the second glued onto the first's tail — the reader's buffer must
  // reassemble both regardless of packetization.
  const std::string f1 = LineChannel::EncodeFrame("{\"id\":1}", "abc");
  const std::string f2 = LineChannel::EncodeFrame("{\"id\":2}", std::string_view());
  std::thread writer([&] {
    for (char c : f1) {
      ASSERT_TRUE(pair.client.WriteRaw(&c, 1, 2000).ok());
    }
    ASSERT_TRUE(pair.client.WriteRaw(f2.data(), f2.size(), 2000).ok());
  });
  auto r1 = pair.server.ReadFrame(5000);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_EQ(r1->event, ReadEvent::kLine);
  EXPECT_EQ(r1->payload, "{\"id\":1}");
  EXPECT_EQ(r1->attachment, "abc");
  auto r2 = pair.server.ReadFrame(5000);
  ASSERT_TRUE(r2.ok()) << r2.status();
  ASSERT_EQ(r2->event, ReadEvent::kLine);
  EXPECT_EQ(r2->payload, "{\"id\":2}");
  writer.join();
}

TEST(FrameTest, OversizedFrameIsDrainedAndSessionResyncs) {
  LineChannelOptions options;
  options.max_line_bytes = 64;
  ChannelPair pair = MakePair(options);
  ASSERT_TRUE(pair.client
                  .WriteFrame(std::string(1000, 'x'), std::string_view(), 2000)
                  .ok());
  ASSERT_TRUE(
      pair.client.WriteFrame("{\"after\":true}", std::string_view(), 2000).ok());
  auto big = pair.server.ReadFrame(2000);
  ASSERT_TRUE(big.ok()) << big.status();
  EXPECT_EQ(big->event, ReadEvent::kOversized);
  auto next = pair.server.ReadFrame(2000);
  ASSERT_TRUE(next.ok()) << next.status();
  ASSERT_EQ(next->event, ReadEvent::kLine);
  EXPECT_EQ(next->payload, "{\"after\":true}");
}

TEST(FrameTest, MidFrameEofIsEofNotAPartialFrame) {
  ChannelPair pair = MakePair();
  const std::string frame = LineChannel::EncodeFrame("{\"id\":1}", "abcdef");
  ASSERT_TRUE(pair.client.WriteRaw(frame.data(), frame.size() / 2, 2000).ok());
  pair.client.Close();
  auto read = pair.server.ReadFrame(2000);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->event, ReadEvent::kEof);
}

TEST(FrameTest, GarbledInteriorLengthIsAHardError) {
  ChannelPair pair = MakePair();
  // A type-2 frame whose interior json length points past the payload:
  // the stream cannot be resynchronized, so this must be a Status, not a
  // recoverable ReadEvent.
  std::string frame = LineChannel::EncodeFrame("{}", "abc");
  frame[kFrameHeaderBytes] = 0x7f;  // json_len low byte: 2 -> 127
  ASSERT_TRUE(pair.client.WriteRaw(frame.data(), frame.size(), 2000).ok());
  auto read = pair.server.ReadFrame(2000);
  EXPECT_FALSE(read.ok());
}

TEST(FrameTest, LineToFrameSwitchKeepsBufferedBytes) {
  ChannelPair pair = MakePair();
  // A hello line and the first binary frame arrive in ONE burst — the
  // situation a pipelining client creates. The channel must hand over the
  // buffered remainder when the reader switches framings mid-stream.
  const std::string burst =
      "{\"op\":\"hello\"}\n" + LineChannel::EncodeFrame("{\"op\":\"list\"}",
                                                        std::string_view());
  ASSERT_TRUE(pair.client.WriteRaw(burst.data(), burst.size(), 2000).ok());
  auto line = pair.server.ReadLine(2000);
  ASSERT_TRUE(line.ok()) << line.status();
  ASSERT_EQ(line->event, ReadEvent::kLine);
  EXPECT_EQ(line->line, "{\"op\":\"hello\"}");
  auto frame = pair.server.ReadFrame(2000);
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame->event, ReadEvent::kLine);
  EXPECT_EQ(frame->payload, "{\"op\":\"list\"}");
}

TEST(LineChannelTest, ManyLinesInOneBurst) {
  ChannelPair pair = MakePair();
  constexpr int kLines = 200;
  std::thread writer([&] {
    for (int i = 0; i < kLines; ++i) {
      ASSERT_TRUE(
          pair.client.WriteLine("line-" + std::to_string(i), 2000).ok());
    }
  });
  for (int i = 0; i < kLines; ++i) {
    auto read = pair.server.ReadLine(5000);
    ASSERT_TRUE(read.ok()) << read.status();
    ASSERT_EQ(read->event, ReadEvent::kLine) << "at line " << i;
    EXPECT_EQ(read->line, "line-" + std::to_string(i));
  }
  writer.join();
}

}  // namespace
}  // namespace recpriv::net
