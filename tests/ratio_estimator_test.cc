// Tests for the Lemma 1 ratio-moment approximation and the Corollary 2
// Laplace disclosure-condition bounds — validated against Monte-Carlo.

#include "stats/ratio_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace recpriv::stats {
namespace {

TEST(RatioMomentsTest, ClosedForm) {
  // E[Y/X] ~ (y/x)(1 + V/x^2); Var[Y/X] ~ (V/x^2)(1 + y^2/x^2).
  RatioMoments m = ApproximateRatioMoments({100.0, 80.0, 50.0});
  EXPECT_NEAR(m.mean, 0.8 * (1.0 + 50.0 / 10000.0), 1e-12);
  EXPECT_NEAR(m.variance, (50.0 / 10000.0) * (1.0 + 0.64), 1e-12);
  EXPECT_NEAR(m.bias, m.mean - 0.8, 1e-12);
}

TEST(RatioMomentsTest, BiasVanishesForLargeX) {
  RatioMoments small = ApproximateRatioMoments({100.0, 80.0, 800.0});
  RatioMoments large = ApproximateRatioMoments({10000.0, 8000.0, 800.0});
  EXPECT_GT(std::abs(small.bias), std::abs(large.bias));
  EXPECT_GT(small.variance, large.variance);
}

TEST(CorollaryTwoTest, BoundFormulas) {
  EXPECT_DOUBLE_EQ(LaplaceRatioBiasBound(20.0, 500.0),
                   2.0 * (20.0 / 500.0) * (20.0 / 500.0));
  EXPECT_DOUBLE_EQ(LaplaceRatioVarianceBound(20.0, 500.0),
                   4.0 * (20.0 / 500.0) * (20.0 / 500.0));
}

TEST(CorollaryTwoTest, Table2Values) {
  // Spot-check the paper's Table 2 grid of 2 (b/x)^2.
  EXPECT_NEAR(LaplaceRatioBiasBound(10, 5000), 0.000008, 1e-9);
  EXPECT_NEAR(LaplaceRatioBiasBound(20, 1000), 0.0008, 1e-9);
  EXPECT_NEAR(LaplaceRatioBiasBound(40, 500), 0.0128, 1e-9);
  EXPECT_NEAR(LaplaceRatioBiasBound(200, 100), 8.0, 1e-9);
}

TEST(CorollaryTwoTest, BoundsDominateLemmaOneForLaplace) {
  // With V = 2 b^2 and y <= x, Corollary 2 must dominate Lemma 1 values.
  const double b = 25.0;
  for (double x : {100.0, 500.0, 2000.0}) {
    for (double frac : {0.2, 0.8, 1.0}) {
      RatioMoments m = ApproximateRatioMoments({x, frac * x, 2 * b * b});
      EXPECT_LE(std::abs(m.bias), LaplaceRatioBiasBound(b, x) + 1e-12);
      EXPECT_LE(m.variance, LaplaceRatioVarianceBound(b, x) + 1e-12);
    }
  }
}

TEST(RatioMomentsTest, MatchesMonteCarloForModerateNoise) {
  // Corollary 1 regime: x large relative to b, the Taylor approximation
  // should track the empirical mean and variance of Y/X.
  Rng rng(2024);
  const double x = 800.0, y = 600.0, b = 15.0;
  const int reps = 400000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < reps; ++i) {
    double noisy_x = x + SampleLaplace(rng, b);
    double noisy_y = y + SampleLaplace(rng, b);
    double ratio = noisy_y / noisy_x;
    sum += ratio;
    sum_sq += ratio * ratio;
  }
  const double emp_mean = sum / reps;
  const double emp_var = sum_sq / reps - emp_mean * emp_mean;
  RatioMoments m = ApproximateRatioMoments({x, y, 2 * b * b});
  EXPECT_NEAR(emp_mean, m.mean, 5e-4);
  EXPECT_NEAR(emp_var, m.variance, 0.15 * m.variance);
}

TEST(DisclosureLikelyTest, RuleOfThumb) {
  // Paper: b/x <= 1/20 => disclosure.
  EXPECT_TRUE(DisclosureLikely(20.0, 500.0));   // ratio 0.04
  EXPECT_TRUE(DisclosureLikely(10.0, 200.0));   // ratio 0.05 (boundary)
  EXPECT_FALSE(DisclosureLikely(40.0, 500.0));  // ratio 0.08
  EXPECT_FALSE(DisclosureLikely(200.0, 100.0));
  EXPECT_FALSE(DisclosureLikely(10.0, 0.0));    // degenerate x
}

}  // namespace
}  // namespace recpriv::stats
