// Tests for the MLE reconstruction (Theorem 1 / Lemma 2), including the
// property-based unbiasedness sweep over the (p, m) grid.

#include "perturb/mle.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "perturb/uniform_perturbation.h"

namespace recpriv::perturb {
namespace {

TEST(MleTest, ClosedFormLemma2) {
  // F' = (O*/|S| - (1-p)/m) / p.
  const UniformPerturbation up{0.5, 10};
  EXPECT_DOUBLE_EQ(MleFrequency(up, 130, 1000),
                   (0.13 - 0.05) / 0.5);
  EXPECT_DOUBLE_EQ(MleCount(up, 130, 1000), 1000 * (0.13 - 0.05) / 0.5);
}

TEST(MleTest, PerfectRetentionLimit) {
  // As p -> 1 the estimate approaches the observed frequency.
  const UniformPerturbation up{0.999, 4};
  EXPECT_NEAR(MleFrequency(up, 250, 1000), 0.25, 1e-3);
}

TEST(MleTest, EmptySubset) {
  const UniformPerturbation up{0.5, 4};
  EXPECT_EQ(MleFrequency(up, 0, 0), 0.0);
  EXPECT_EQ(MleCount(up, 0, 0), 0.0);
}

TEST(MleTest, CanLeaveSimplex) {
  // Small observed counts can reconstruct negative frequencies; the
  // estimator is intentionally unclamped.
  const UniformPerturbation up{0.5, 4};
  EXPECT_LT(MleFrequency(up, 0, 100), 0.0);
}

TEST(MleTest, VectorAndMatrixFormsAgree) {
  const UniformPerturbation up{0.35, 6};
  std::vector<uint64_t> observed{10, 40, 25, 5, 15, 5};
  auto direct = MleFrequencies(up, observed, 100);
  auto viamat = MleFrequenciesViaMatrix(up, observed, 100);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(viamat.ok());
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR((*direct)[i], (*viamat)[i], 1e-10);
  }
}

TEST(MleTest, FrequenciesSumToOne) {
  // Because observed counts sum to |S|, the MLE frequencies sum to 1
  // (Theorem 1's constraint is automatic under Lemma 2's form).
  const UniformPerturbation up{0.45, 5};
  std::vector<uint64_t> observed{13, 27, 31, 9, 20};
  auto est = *MleFrequencies(up, observed, 100);
  double total = 0.0;
  for (double f : est) total += f;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(MleTest, ArityValidation) {
  const UniformPerturbation up{0.5, 3};
  EXPECT_FALSE(MleFrequencies(up, {1, 2}, 3).ok());
  EXPECT_FALSE(MleFrequenciesViaMatrix(up, {1, 2}, 3).ok());
}

struct UnbiasednessCase {
  double p;
  size_t m;
  double f;  // true frequency of the probed value
};

class MleUnbiasednessTest : public ::testing::TestWithParam<UnbiasednessCase> {
};

/// Lemma 2(iii): E[F'] = f, checked by Monte-Carlo over the (p, m, f) grid.
TEST_P(MleUnbiasednessTest, ExpectationIsTrueFrequency) {
  const auto [p, m, f] = GetParam();
  const UniformPerturbation up{p, m};
  const uint64_t size = 1000;
  const uint64_t target = uint64_t(f * size);
  std::vector<uint64_t> counts(m, 0);
  counts[0] = target;
  // Spread the remainder over the other values.
  uint64_t rest = size - target;
  for (size_t i = 1; i < m && rest > 0; ++i) {
    uint64_t take = rest / (m - i);
    counts[i] = take;
    rest -= take;
  }
  counts[m - 1] += rest;

  Rng rng(uint64_t(p * 1000) + m * 7 + uint64_t(f * 100));
  const int reps = 3000;
  double sum = 0.0;
  for (int i = 0; i < reps; ++i) {
    auto observed = *PerturbCounts(up, counts, rng);
    sum += MleFrequency(up, observed[0], size);
  }
  const double mean = sum / reps;
  // SE of the mean estimate: Var(F') ~ mu/(|S| p)^2 per run.
  const double mu = size * (f * p + (1 - p) / m);
  const double se = std::sqrt(mu) / (size * p) / std::sqrt(double(reps));
  EXPECT_NEAR(mean, double(target) / size, 6 * se + 1e-3)
      << "p=" << p << " m=" << m << " f=" << f;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MleUnbiasednessTest,
    ::testing::Values(
        UnbiasednessCase{0.1, 2, 0.5}, UnbiasednessCase{0.1, 50, 0.02},
        UnbiasednessCase{0.3, 2, 0.8}, UnbiasednessCase{0.3, 10, 0.3},
        UnbiasednessCase{0.5, 2, 0.75}, UnbiasednessCase{0.5, 10, 0.1},
        UnbiasednessCase{0.5, 50, 0.02}, UnbiasednessCase{0.7, 5, 0.4},
        UnbiasednessCase{0.9, 2, 0.6}, UnbiasednessCase{0.9, 50, 0.1}));

}  // namespace
}  // namespace recpriv::perturb
