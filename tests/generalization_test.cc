// Tests for chi-squared value generalization (paper §3.4): recovery of the
// effective-class partition, table rewriting, and predicate mapping.

#include "core/generalization.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/simple.h"
#include "table/group_index.h"

namespace recpriv::core {
namespace {

using recpriv::datagen::GroupSpec;
using recpriv::datagen::SimpleDatasetSpec;
using recpriv::table::GroupIndex;
using recpriv::table::Predicate;
using recpriv::table::Table;

/// A dataset where Job values {eng, dev} share one disease distribution and
/// {law} has a different one; City is independent of Disease.
SimpleDatasetSpec MakeSpec() {
  SimpleDatasetSpec spec;
  spec.public_attributes = {"Job", "City"};
  spec.sensitive_attribute = "Disease";
  spec.sa_domain = {"flu", "hiv", "bc"};
  const std::vector<double> tech{70, 20, 10};
  const std::vector<double> legal{20, 30, 50};
  for (const char* city : {"north", "south"}) {
    spec.groups.push_back(GroupSpec{{"eng", city}, 2000, tech});
    spec.groups.push_back(GroupSpec{{"dev", city}, 1500, tech});
    spec.groups.push_back(GroupSpec{{"law", city}, 1800, legal});
  }
  return spec;
}

TEST(GeneralizationTest, RecoversEffectiveClasses) {
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  auto plan = ComputeGeneralization(t);
  ASSERT_TRUE(plan.ok());
  // Job: {eng, dev} merge, {law} stays -> 2 generalized values.
  EXPECT_EQ(plan->merges[0].domain_before, 3u);
  EXPECT_EQ(plan->merges[0].domain_after, 2u);
  EXPECT_EQ(plan->MapCode(0, 0), plan->MapCode(0, 1));  // eng ~ dev
  EXPECT_NE(plan->MapCode(0, 0), plan->MapCode(0, 2));  // eng !~ law
  // City is independent of Disease -> collapses to 1.
  EXPECT_EQ(plan->merges[1].domain_after, 1u);
  // SA identity.
  EXPECT_EQ(plan->merges[2].domain_after, 3u);
  for (uint32_t v = 0; v < 3; ++v) EXPECT_EQ(plan->MapCode(2, v), v);
}

TEST(GeneralizationTest, MergedNamesJoinMembers) {
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  auto plan = *ComputeGeneralization(t);
  const auto& names = plan.merges[0].merged_names;
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "eng|dev");
  EXPECT_EQ(names[1], "law");
}

TEST(GeneralizationTest, ApplyRewritesGroups) {
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  auto plan = *ComputeGeneralization(t);
  auto gen = ApplyGeneralization(plan, t);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen->num_rows(), t.num_rows());
  // Personal groups: 2 job classes x 1 city class = 2.
  GroupIndex idx = GroupIndex::Build(*gen);
  EXPECT_EQ(idx.num_groups(), 2u);
  // SA histogram unchanged globally.
  EXPECT_EQ(gen->SaHistogram(), t.SaHistogram());
}

TEST(GeneralizationTest, ApplyPreservesRowAssociation) {
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  auto plan = *ComputeGeneralization(t);
  auto gen = *ApplyGeneralization(plan, t);
  for (size_t r = 0; r < t.num_rows(); r += 997) {
    EXPECT_EQ(gen.at(r, 0), plan.MapCode(0, t.at(r, 0)));
    EXPECT_EQ(gen.at(r, 2), t.at(r, 2));  // SA codes identical
  }
}

TEST(GeneralizationTest, MapPredicateFollowsMerges) {
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  auto plan = *ComputeGeneralization(t);
  Predicate p(3);
  p.Bind(0, 1);  // Job = dev
  p.Bind(1, 1);  // City = south
  auto mapped = MapPredicate(plan, p);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->code(0), plan.MapCode(0, 1));
  EXPECT_EQ(mapped->code(1), 0u);  // all cities -> single class
  EXPECT_FALSE(mapped->is_bound(2));
}

TEST(GeneralizationTest, MapPredicateValidation) {
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  auto plan = *ComputeGeneralization(t);
  Predicate wrong_arity(2);
  EXPECT_FALSE(MapPredicate(plan, wrong_arity).ok());
  Predicate out_of_domain(3);
  out_of_domain.Bind(0, 99);
  EXPECT_FALSE(MapPredicate(plan, out_of_domain).ok());
}

TEST(GeneralizationTest, UnseenValuesStaySingleton) {
  // Add a Job value to the dictionary that never occurs in the data.
  SimpleDatasetSpec spec = MakeSpec();
  Table t = *recpriv::datagen::GenerateSimpleExact(spec);
  t.schema()->attribute(0).domain.GetOrAdd("ghost");
  auto plan = *ComputeGeneralization(t);
  EXPECT_EQ(plan.merges[0].domain_before, 4u);
  // ghost forms its own generalized value; eng/dev still merge.
  EXPECT_EQ(plan.merges[0].domain_after, 3u);
  EXPECT_EQ(plan.MapCode(0, 0), plan.MapCode(0, 1));
}

TEST(GeneralizationTest, SignificanceOptionChangesSensitivity) {
  // With significance near 1 the critical value is close to 0, so any
  // sampling noise separates values: nothing merges. Use the *sampled*
  // generator — the exact-apportionment builder produces perfectly
  // proportional histograms whose statistic is identically zero.
  Rng rng(99);
  Table t = *recpriv::datagen::GenerateSimple(MakeSpec(), rng);
  GeneralizationOptions strict;
  strict.significance = 0.999;
  auto plan = *ComputeGeneralization(t, strict);
  EXPECT_EQ(plan.merges[0].domain_after, 3u);  // no Job merges
  EXPECT_EQ(plan.merges[1].domain_after, 2u);  // no City merges
}

TEST(GeneralizationTest, GeneralizedGroupsHaveDistinctImpact) {
  // After generalization, re-running the procedure on the generalized
  // table must be a fixpoint (no further merging).
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  auto plan = *ComputeGeneralization(t);
  auto gen = *ApplyGeneralization(plan, t);
  auto plan2 = *ComputeGeneralization(gen);
  for (size_t a = 0; a < plan2.merges.size(); ++a) {
    EXPECT_EQ(plan2.merges[a].domain_after, plan2.merges[a].domain_before)
        << "attribute " << a << " merged again";
  }
}

}  // namespace
}  // namespace recpriv::core
