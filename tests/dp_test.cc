// Tests for the differential-privacy baseline: Laplace mechanism, noisy
// count-query engine, and the Section-2 NIR ratio attack.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dp/count_query_engine.h"
#include "dp/laplace_mechanism.h"
#include "dp/nir_attack.h"
#include "table/schema.h"

namespace recpriv::dp {
namespace {

using recpriv::table::Attribute;
using recpriv::table::Dictionary;
using recpriv::table::Predicate;
using recpriv::table::Schema;
using recpriv::table::SchemaPtr;
using recpriv::table::Table;

TEST(LaplaceMechanismTest, ScaleIsSensitivityOverEpsilon) {
  auto mech = LaplaceMechanism::Make(0.1, 2.0);
  ASSERT_TRUE(mech.ok());
  EXPECT_DOUBLE_EQ(mech->scale(), 20.0);  // b = Delta/eps, the paper's b=20
  EXPECT_DOUBLE_EQ(mech->variance(), 2.0 * 400.0);
}

TEST(LaplaceMechanismTest, FromScale) {
  auto mech = LaplaceMechanism::FromScale(4.0);
  ASSERT_TRUE(mech.ok());
  EXPECT_DOUBLE_EQ(mech->scale(), 4.0);
}

TEST(LaplaceMechanismTest, Validation) {
  EXPECT_FALSE(LaplaceMechanism::Make(0.0, 2.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Make(0.1, 0.0).ok());
  EXPECT_FALSE(LaplaceMechanism::FromScale(-1.0).ok());
}

TEST(LaplaceMechanismTest, NoiseMomentsMatch) {
  auto mech = *LaplaceMechanism::FromScale(5.0);
  Rng rng(71);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double noise = mech.NoisyAnswer(0.0, rng);
    sum += noise;
    sum_sq += noise * noise;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.15);
  EXPECT_NEAR(sum_sq / n, mech.variance(), 0.05 * mech.variance());
}

SchemaPtr AttackSchema() {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"NA", *Dictionary::FromValues({"t", "other"})});
  attrs.push_back(Attribute{"SA", *Dictionary::FromValues({"sa", "not"})});
  return std::make_shared<Schema>(*Schema::Make(std::move(attrs), 1));
}

/// x records match the target's NA, y of them have the sensitive value.
Table AttackTable(uint64_t x, uint64_t y, uint64_t others) {
  Table t(AttackSchema());
  for (uint64_t i = 0; i < x; ++i) {
    EXPECT_TRUE(t.AppendRow(std::vector<uint32_t>{0, i < y ? 0u : 1u}).ok());
  }
  for (uint64_t i = 0; i < others; ++i) {
    EXPECT_TRUE(t.AppendRow(std::vector<uint32_t>{1, 1}).ok());
  }
  return t;
}

TEST(CountQueryEngineTest, TrueCountsAndBudget) {
  Table t = AttackTable(501, 420, 1000);
  auto mech = *LaplaceMechanism::Make(0.1, 2.0);
  CountQueryEngine engine(&t, mech);

  Predicate q1(2);
  q1.Bind(0, 0);
  Predicate q2 = q1;
  q2.Bind(1, 0);
  EXPECT_EQ(engine.TrueCount(q1), 501u);
  EXPECT_EQ(engine.TrueCount(q2), 420u);

  Rng rng(5);
  engine.NoisyCount(q1, rng);
  engine.NoisyCount(q2, rng);
  EXPECT_EQ(engine.queries_answered(), 2u);
  EXPECT_NEAR(engine.epsilon_spent(), 0.2, 1e-12);
}

TEST(CountQueryEngineTest, NoisyAnswerCentersOnTruth) {
  Table t = AttackTable(500, 100, 0);
  auto mech = *LaplaceMechanism::FromScale(4.0);
  CountQueryEngine engine(&t, mech);
  Predicate q(2);
  q.Bind(0, 0);
  Rng rng(9);
  double sum = 0.0;
  const int reps = 20000;
  for (int i = 0; i < reps; ++i) sum += engine.NoisyCount(q, rng);
  EXPECT_NEAR(sum / reps, 500.0, 0.5);
}

TEST(RatioAttackTest, Example1Structure) {
  // The paper's Example 1: ans1=501, ans2=420, Conf=0.8383. At eps=0.5
  // (b=4) the attack recovers Conf accurately; at eps=0.01 (b=200) it is
  // useless.
  Table t = AttackTable(501, 420, 5000);
  Predicate q1(2);
  q1.Bind(0, 0);
  Predicate q2 = q1;
  q2.Bind(1, 0);

  Rng rng(13);
  auto strong = [&](double eps) {
    auto mech = *LaplaceMechanism::Make(eps, 2.0);
    CountQueryEngine engine(&t, mech);
    return *RunRatioAttack(engine, q1, q2, 200, rng);
  };
  AttackReport low_privacy = strong(0.5);
  AttackReport high_privacy = strong(0.01);

  EXPECT_NEAR(low_privacy.true_confidence, 0.8383, 1e-3);
  // Low privacy (small b): Conf' tracks Conf tightly.
  EXPECT_NEAR(low_privacy.conf.mean, 0.8383, 0.02);
  EXPECT_LT(low_privacy.rel_err_q1.mean, 0.03);
  // High privacy (b=200): large spread.
  EXPECT_GT(high_privacy.conf.standard_error,
            10 * low_privacy.conf.standard_error);
  EXPECT_GT(high_privacy.rel_err_q1.mean, 0.2);
}

TEST(RatioAttackTest, PredictionsFilledIn) {
  Table t = AttackTable(400, 100, 0);
  auto mech = *LaplaceMechanism::Make(0.1, 2.0);  // b = 20
  CountQueryEngine engine(&t, mech);
  Predicate q1(2);
  q1.Bind(0, 0);
  Predicate q2 = q1;
  q2.Bind(1, 0);
  Rng rng(17);
  AttackReport r = *RunRatioAttack(engine, q1, q2, 10, rng);
  EXPECT_DOUBLE_EQ(r.bias_bound, 2.0 * std::pow(20.0 / 400.0, 2));
  EXPECT_DOUBLE_EQ(r.variance_bound, 4.0 * std::pow(20.0 / 400.0, 2));
  EXPECT_NEAR(r.predicted.mean, 0.25 * (1 + 800.0 / 160000.0), 1e-9);
  EXPECT_EQ(r.trials, 10u);
}

TEST(RatioAttackTest, ZeroSupportRejected) {
  Table t = AttackTable(10, 5, 0);
  auto mech = *LaplaceMechanism::Make(0.1, 2.0);
  CountQueryEngine engine(&t, mech);
  Predicate q1(2);
  q1.Bind(0, 1);  // matches only "other" rows... none with SA=sa
  Predicate empty(2);
  empty.Bind(0, 1);
  // Build a predicate with zero support: NA=other exists only if others>0.
  Table t2 = AttackTable(10, 5, 0);
  CountQueryEngine engine2(&t2, mech);
  Rng rng(1);
  EXPECT_FALSE(RunRatioAttack(engine2, q1, q1, 5, rng).ok());
}

TEST(RatioAttackTest, DisclosureConditionMatchesTrials) {
  // b/x = 4/2000 << 1/20: the attack should recover Conf to within 1%.
  Table t = AttackTable(2000, 1600, 0);
  auto mech = *LaplaceMechanism::FromScale(4.0);
  CountQueryEngine engine(&t, mech);
  Predicate q1(2);
  q1.Bind(0, 0);
  Predicate q2 = q1;
  q2.Bind(1, 0);
  Rng rng(21);
  AttackReport r = *RunRatioAttack(engine, q1, q2, 100, rng);
  EXPECT_TRUE(recpriv::stats::DisclosureLikely(4.0, 2000.0));
  EXPECT_NEAR(r.conf.mean, 0.8, 0.01);
}

}  // namespace
}  // namespace recpriv::dp
