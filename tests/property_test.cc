// Randomized property tests across module boundaries:
//
//  * generalization recovery — for random effective-class models with
//    adequate separation and support, the chi-squared merge recovers the
//    planted class partition;
//  * SPS record/count path equivalence — the two execution paths produce
//    observed frequencies whose run-level means agree within standard
//    error;
//  * MLE + SPS end-to-end unbiasedness over random group profiles;
//  * JSON round-trip over randomly generated documents.
//
// All randomness is seeded per test case: deterministic, not flaky.

#include <gtest/gtest.h>

#include <cmath>

#include "common/json.h"
#include <memory>
#include "common/random.h"
#include "core/generalization.h"
#include "core/sps.h"
#include "datagen/simple.h"
#include "perturb/mle.h"
#include "perturb/uniform_perturbation.h"
#include "stats/chi_squared.h"
#include "stats/descriptive.h"
#include "table/group_index.h"

namespace recpriv {
namespace {

using core::PrivacyParams;
using datagen::GroupSpec;
using datagen::SimpleDatasetSpec;
using table::GroupIndex;
using table::Table;

PrivacyParams Params(double p, size_t m) {
  PrivacyParams params;
  params.lambda = 0.3;
  params.delta = 0.3;
  params.retention_p = p;
  params.domain_m = m;
  return params;
}

class GeneralizationRecoveryTest : public ::testing::TestWithParam<uint64_t> {
};

/// Plant a random class partition of one attribute; SA distributions per
/// class are well separated; verify the merge recovers the partition.
TEST_P(GeneralizationRecoveryTest, RecoversPlantedPartition) {
  Rng rng(GetParam());
  const size_t m = 4;                              // SA values
  const size_t num_classes = 2 + rng.NextUint64(3);  // 2..4 classes
  SimpleDatasetSpec spec;
  spec.public_attributes = {"A"};
  spec.sensitive_attribute = "S";
  spec.sa_domain = {"s0", "s1", "s2", "s3"};

  // Separated class distributions: class c concentrates ~70% mass on SA
  // value c (mod m), the rest uniform — pairwise TV distance ~ 0.6.
  std::vector<uint32_t> planted_class;
  size_t value_counter = 0;
  for (size_t c = 0; c < num_classes; ++c) {
    std::vector<double> weights(m, 10.0);
    weights[c % m] = 70.0;
    const size_t values_in_class = 1 + rng.NextUint64(3);  // 1..3 values
    for (size_t v = 0; v < values_in_class; ++v) {
      spec.groups.push_back(GroupSpec{
          {"v" + std::to_string(value_counter++)},
          2000 + size_t(rng.NextUint64(2000)), weights});
      planted_class.push_back(uint32_t(c));
    }
  }

  Table t = *datagen::GenerateSimple(spec, rng);
  auto plan = *core::ComputeGeneralization(t);
  const auto& mapping = plan.merges[0].code_mapping;
  ASSERT_EQ(mapping.size(), planted_class.size());
  EXPECT_EQ(plan.merges[0].domain_after, num_classes)
      << "seed " << GetParam();
  // Same planted class <=> same generalized value.
  for (size_t a = 0; a < mapping.size(); ++a) {
    for (size_t b = a + 1; b < mapping.size(); ++b) {
      EXPECT_EQ(planted_class[a] == planted_class[b],
                mapping[a] == mapping[b])
          << "values " << a << "," << b << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralizationRecoveryTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

class SpsPathEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

/// Record-level and count-level SPS runs on the same group must produce
/// identically distributed observed histograms; compare run-level means.
TEST_P(SpsPathEquivalenceTest, HistogramsIndistinguishable) {
  Rng seed_rng(GetParam());
  const size_t m = 2 + seed_rng.NextUint64(4);  // 2..5 SA values
  const double p = 0.2 + 0.6 * seed_rng.NextDouble();
  auto params = Params(p, m);

  // Random group profile, large enough to trigger sampling.
  std::vector<uint64_t> counts(m);
  std::vector<double> weights(m);
  for (size_t i = 0; i < m; ++i) weights[i] = 1.0 + seed_rng.NextDouble() * 9;
  double total_w = 0;
  for (double w : weights) total_w += w;
  const uint64_t group_size = 4000;
  uint64_t assigned = 0;
  for (size_t i = 0; i + 1 < m; ++i) {
    counts[i] = uint64_t(group_size * weights[i] / total_w);
    assigned += counts[i];
  }
  counts[m - 1] = group_size - assigned;

  // Per-run observed frequencies for both paths; within-run counts are
  // correlated (sampling and scaling act on whole groups), so we compare
  // run-level means with run-level standard errors rather than pooling
  // counts into one chi-squared test.
  Rng rng_counts(GetParam() * 3 + 1), rng_table(GetParam() * 5 + 2);
  const int runs = 60;
  std::vector<stats::RunningStats> count_freq(m), table_freq(m);
  // Record path table: one personal group, schema built directly.
  std::vector<table::Attribute> attrs;
  attrs.push_back(
      table::Attribute{"A", *table::Dictionary::FromValues({"only"})});
  std::vector<std::string> sa_values;
  for (size_t i = 0; i < m; ++i) sa_values.push_back("s" + std::to_string(i));
  attrs.push_back(
      table::Attribute{"S", *table::Dictionary::FromValues(sa_values)});
  auto schema = std::make_shared<table::Schema>(
      *table::Schema::Make(std::move(attrs), 1));
  Table input(schema);
  for (size_t i = 0; i < m; ++i) {
    for (uint64_t k = 0; k < counts[i]; ++k) {
      ASSERT_TRUE(input.AppendRow(std::vector<uint32_t>{0, uint32_t(i)}).ok());
    }
  }

  for (int run = 0; run < runs; ++run) {
    auto rc = *core::SpsPerturbGroupCounts(params, counts, rng_counts);
    uint64_t rc_size = 0;
    for (uint64_t c : rc.observed) rc_size += c;
    ASSERT_GT(rc_size, 0u);
    for (size_t i = 0; i < m; ++i) {
      count_freq[i].Add(double(rc.observed[i]) / double(rc_size));
    }
    auto rt = *core::SpsPerturbTable(params, input, rng_table);
    std::vector<uint64_t> hist(m, 0);
    for (uint32_t v : rt.table.column(1)) ++hist[v];
    const double rt_size = double(rt.table.num_rows());
    ASSERT_GT(rt_size, 0.0);
    for (size_t i = 0; i < m; ++i) {
      table_freq[i].Add(double(hist[i]) / rt_size);
    }
  }
  for (size_t i = 0; i < m; ++i) {
    const double se = std::sqrt(
        count_freq[i].standard_error() * count_freq[i].standard_error() +
        table_freq[i].standard_error() * table_freq[i].standard_error());
    EXPECT_NEAR(count_freq[i].mean(), table_freq[i].mean(), 6 * se + 1e-4)
        << "value " << i << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpsPathEquivalenceTest,
                         ::testing::Values(101, 202, 303, 404, 505));

class SpsUnbiasednessTest : public ::testing::TestWithParam<uint64_t> {};

/// Theorem 5 over random profiles: E[F'] = f after SPS, for every SA value.
TEST_P(SpsUnbiasednessTest, AllFrequenciesUnbiased) {
  Rng seed_rng(GetParam());
  const size_t m = 2 + seed_rng.NextUint64(5);
  const double p = 0.3 + 0.4 * seed_rng.NextDouble();
  auto params = Params(p, m);
  const perturb::UniformPerturbation up{p, m};

  std::vector<uint64_t> counts(m);
  uint64_t group_size = 0;
  for (size_t i = 0; i < m; ++i) {
    counts[i] = 100 + seed_rng.NextUint64(3000);
    group_size += counts[i];
  }

  Rng rng(GetParam() ^ 0xABCDEF);
  const int runs = 2500;
  std::vector<double> sums(m, 0.0);
  for (int run = 0; run < runs; ++run) {
    auto r = *core::SpsPerturbGroupCounts(params, counts, rng);
    uint64_t size = 0;
    for (uint64_t c : r.observed) size += c;
    ASSERT_GT(size, 0u);
    for (size_t i = 0; i < m; ++i) {
      sums[i] += perturb::MleFrequency(up, r.observed[i], size);
    }
  }
  for (size_t i = 0; i < m; ++i) {
    const double truth = double(counts[i]) / double(group_size);
    // Per-run SE is governed by the ~s_g effective trials; with 2500 runs
    // a generous 2.5-point band is > 6 SEs for all profiles used here.
    EXPECT_NEAR(sums[i] / runs, truth, 0.025)
        << "value " << i << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpsUnbiasednessTest,
                         ::testing::Values(7, 13, 29, 71));

/// Random JSON document generator for the round-trip property.
JsonValue RandomJson(Rng& rng, int depth) {
  const uint64_t kind = rng.NextUint64(depth <= 0 ? 4 : 6);
  switch (kind) {
    case 0:
      return JsonValue::Null();
    case 1:
      return JsonValue::Bool(rng.NextBernoulli(0.5));
    case 2:
      // Round numbers survive the %.17g round trip exactly.
      return JsonValue::Number(double(rng.NextInt64(-1000000, 1000000)) / 64.0);
    case 3: {
      std::string s;
      const size_t len = rng.NextUint64(12);
      for (size_t i = 0; i < len; ++i) {
        const char* alphabet =
            "abcXYZ012 _-\"\\\n\t{}[]:,";
        s += alphabet[rng.NextUint64(23)];
      }
      return JsonValue::String(s);
    }
    case 4: {
      JsonValue arr = JsonValue::Array();
      const size_t n = rng.NextUint64(4);
      for (size_t i = 0; i < n; ++i) arr.Append(RandomJson(rng, depth - 1));
      return arr;
    }
    default: {
      JsonValue obj = JsonValue::Object();
      const size_t n = rng.NextUint64(4);
      for (size_t i = 0; i < n; ++i) {
        obj.Set("k" + std::to_string(rng.NextUint64(100)),
                RandomJson(rng, depth - 1));
      }
      return obj;
    }
  }
}

class JsonRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonRoundTripTest, SerializeParseSerializeIsStable) {
  Rng rng(GetParam());
  for (int doc = 0; doc < 50; ++doc) {
    JsonValue original = RandomJson(rng, 4);
    const std::string compact = original.ToString();
    auto parsed = JsonValue::Parse(compact);
    ASSERT_TRUE(parsed.ok()) << compact << " :: " << parsed.status();
    EXPECT_EQ(parsed->ToString(), compact);
    // Pretty round trip too.
    auto pretty = JsonValue::Parse(original.ToString(2));
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(pretty->ToString(), compact);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace recpriv
