// Multi-tenant QoS and overload robustness: per-tenant token-bucket
// admission (serve/admission.h), deadline propagation and shedding
// through the engine and micro-batcher, the RESOURCE_EXHAUSTED /
// DEADLINE_EXCEEDED taxonomy identical across both client backends,
// the "tenants" stats section over the wire, the retry/backoff layer
// (client/retry.h), fault-injected transports recovering answer-clean
// under retry, and the workload scenario QoS block's JSON contract.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/api.h"
#include "client/in_process_client.h"
#include "client/line_protocol_client.h"
#include "client/retry.h"
#include "common/json.h"
#include "common/random.h"
#include "core/sps.h"
#include "datagen/simple.h"
#include "net/fault_injector.h"
#include "serve/admission.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"
#include "serve/wire.h"
#include "workload/driver.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace recpriv::client {
namespace {

using recpriv::analysis::ReleaseBundle;
using recpriv::core::PrivacyParams;
using recpriv::datagen::GroupSpec;
using recpriv::datagen::SimpleDatasetSpec;
using recpriv::serve::AdmissionController;
using recpriv::serve::AdmissionOptions;
using recpriv::serve::QueryEngine;
using recpriv::serve::QueryEngineOptions;
using recpriv::serve::ReleaseStore;
using recpriv::table::Table;

// --- fixtures (the client_test "simple" release, QoS-enabled engine) -------

SimpleDatasetSpec MakeSpec() {
  SimpleDatasetSpec spec;
  spec.public_attributes = {"Job", "City"};
  spec.sensitive_attribute = "Disease";
  spec.sa_domain = {"flu", "hiv", "bc"};
  spec.groups.push_back(GroupSpec{{"eng", "north"}, 2000, {70, 20, 10}});
  spec.groups.push_back(GroupSpec{{"law", "south"}, 1000, {20, 30, 50}});
  return spec;
}

ReleaseBundle MakeBundle(uint64_t seed = 2015) {
  Table raw = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  PrivacyParams params;
  params.domain_m = raw.schema()->sa_domain_size();
  Rng rng(seed);
  auto sps = *recpriv::core::SpsPerturbTable(params, raw, rng);
  return ReleaseBundle{std::move(sps.table), params, "Disease", {}};
}

struct Backends {
  std::shared_ptr<ReleaseStore> store;
  std::shared_ptr<QueryEngine> engine;
  std::unique_ptr<InProcessClient> embedded;
  std::unique_ptr<LineProtocolClient> remote;
};

Backends MakeBackends(QueryEngineOptions options = {}) {
  Backends b;
  b.store = std::make_shared<ReleaseStore>(2);
  b.engine = std::make_shared<QueryEngine>(b.store, options);
  b.embedded = std::make_unique<InProcessClient>(b.engine);
  b.remote = std::make_unique<LineProtocolClient>(
      std::make_unique<LoopbackTransport>(*b.engine));
  EXPECT_TRUE(b.embedded->PublishBundle("simple", MakeBundle()).ok());
  return b;
}

QueryRequest SimpleRequest() {
  QueryRequest req;
  req.release = "simple";
  req.queries.push_back(QuerySpec{{{"Job", "eng"}}, "flu"});
  return req;
}

// --- admission: token-bucket semantics --------------------------------------

TEST(AdmissionTest, BucketStartsFullAndRejectsWhenDrained) {
  // qps so slow the bucket cannot measurably refill during the test.
  AdmissionController ctl({/*quota_qps=*/0.001, /*quota_burst=*/5});
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ctl.Admit("t", 1)) << "query " << i;
  }
  EXPECT_FALSE(ctl.Admit("t", 1));
  auto stats = ctl.Stats();
  EXPECT_EQ(stats.tenants.at("t").admitted, 5u);
  EXPECT_EQ(stats.tenants.at("t").rejected, 1u);
  EXPECT_EQ(stats.tenants.at("t").shed, 0u);
}

TEST(AdmissionTest, BatchesChargeOneTokenPerQuery) {
  AdmissionController ctl({0.001, 10});
  EXPECT_TRUE(ctl.Admit("t", 7));   // 3 tokens left
  EXPECT_FALSE(ctl.Admit("t", 4));  // needs 4
  EXPECT_TRUE(ctl.Admit("t", 3));
  // An empty batch still costs one token (it still occupies the pipeline).
  AdmissionController empty({0.001, 1});
  EXPECT_TRUE(empty.Admit("t", 0));
  EXPECT_FALSE(empty.Admit("t", 0));
}

TEST(AdmissionTest, BurstDefaultsToMaxOfQpsAndOne) {
  // burst <= 0 resolves to max(quota_qps, 1): a 3 q/s tenant gets a
  // 3-token bucket...
  AdmissionController ctl({/*quota_qps=*/3.0, /*quota_burst=*/0});
  EXPECT_TRUE(ctl.Admit("t", 3));
  EXPECT_FALSE(ctl.Admit("t", 1));
  // ...and a sub-1 q/s tenant still gets one whole token.
  AdmissionController slow({0.5, 0});
  EXPECT_TRUE(slow.Admit("t", 1));
  EXPECT_FALSE(slow.Admit("t", 1));
}

TEST(AdmissionTest, BucketRefillsAtQpsAndCapsAtBurst) {
  // 1000 q/s, 2-deep: drained, then a few ms restores the full burst —
  // but never more than burst.
  AdmissionController ctl({1000.0, 2});
  EXPECT_TRUE(ctl.Admit("t", 2));
  EXPECT_FALSE(ctl.Admit("t", 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(ctl.Admit("t", 2));   // refilled to the 2-token cap
  EXPECT_FALSE(ctl.Admit("t", 1));  // ...and no further
}

TEST(AdmissionTest, TenantsAreIsolated) {
  AdmissionController ctl({0.001, 2});
  EXPECT_TRUE(ctl.Admit("a", 2));
  EXPECT_FALSE(ctl.Admit("a", 1));
  // Draining a's bucket leaves b's untouched.
  EXPECT_TRUE(ctl.Admit("b", 2));
}

TEST(AdmissionTest, TenantMapIsBoundedByOverflowBucket) {
  AdmissionOptions options;
  options.quota_qps = 0.001;
  options.quota_burst = 2;
  options.max_tenants = 2;
  AdmissionController ctl(options);
  EXPECT_TRUE(ctl.Admit("a", 1));
  EXPECT_TRUE(ctl.Admit("b", 1));
  // c and d arrive past the cap: both account to the shared "(other)"
  // bucket, so an adversary inventing names cannot grow the map.
  EXPECT_TRUE(ctl.Admit("c", 2));
  EXPECT_FALSE(ctl.Admit("d", 1));  // c already drained the shared bucket
  auto stats = ctl.Stats();
  EXPECT_EQ(stats.tenants.size(), 3u);  // a, b, "(other)"
  ASSERT_TRUE(stats.tenants.count(recpriv::serve::kOverflowTenant));
  EXPECT_EQ(stats.tenants.at(recpriv::serve::kOverflowTenant).admitted, 1u);
  EXPECT_EQ(stats.tenants.at(recpriv::serve::kOverflowTenant).rejected, 1u);
}

TEST(AdmissionTest, CountShedIsTracked) {
  AdmissionController ctl({100.0, 10});
  ctl.CountShed("t");
  ctl.CountShed("t");
  EXPECT_EQ(ctl.Stats().tenants.at("t").shed, 2u);
}

// --- deadlines: expiry semantics, shedding, micro-batcher ------------------

TEST(DeadlineTest, ExpiryIsAbsentPastOrFuture) {
  using recpriv::serve::Deadline;
  using recpriv::serve::DeadlineExpired;
  EXPECT_FALSE(DeadlineExpired(Deadline{}));
  const auto now = std::chrono::steady_clock::now();
  EXPECT_TRUE(DeadlineExpired(Deadline{now - std::chrono::milliseconds(1)}));
  EXPECT_FALSE(DeadlineExpired(Deadline{now + std::chrono::hours(1)}));
}

TEST(DeadlineTest, ZeroBudgetIsShedIdenticallyOnBothBackends) {
  // deadline_ms = 0 anchors the deadline at service entry, so the batch is
  // deterministically past-due: DEADLINE_EXCEEDED from both backends,
  // byte-identical Status, and the shed is counted against the tenant.
  QueryEngineOptions options;
  options.tenant_quota_qps = 1e6;  // admission on, never the limiter
  Backends b = MakeBackends(options);
  QueryRequest req = SimpleRequest();
  req.tenant = "t";
  req.deadline_ms = 0;

  auto embedded = b.embedded->Query(req);
  auto remote = b.remote->Query(req);
  ASSERT_FALSE(embedded.ok());
  ASSERT_FALSE(remote.ok());
  EXPECT_EQ(embedded.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(embedded.status(), remote.status())
      << "embedded: " << embedded.status() << " remote: " << remote.status();
  EXPECT_EQ(ErrorCodeFromStatus(remote.status()),
            ErrorCode::kDeadlineExceeded);

  auto stats = b.engine->tenant_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->tenants.at("t").shed, 2u);  // one per backend
  EXPECT_EQ(stats->tenants.at("t").admitted, 2u);
}

TEST(DeadlineTest, GenerousBudgetAnswersNormally) {
  Backends b = MakeBackends();
  QueryRequest req = SimpleRequest();
  req.deadline_ms = 60000;
  auto with = b.remote->Query(req);
  ASSERT_TRUE(with.ok()) << with.status();
  req.deadline_ms.reset();
  auto without = b.remote->Query(req);
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with->answers[0].observed, without->answers[0].observed);
  EXPECT_DOUBLE_EQ(with->answers[0].estimate, without->answers[0].estimate);
}

TEST(DeadlineTest, MicroBatcherShedsExpiredAndServesLiveRiders) {
  // Same contract with the scheduler underneath: an expired rider is shed
  // before it can join a fused batch; a live one answers bit-identically
  // to the unbatched path.
  QueryEngineOptions batched;
  batched.micro_batch_window_us = 200;
  Backends b = MakeBackends(batched);
  QueryRequest req = SimpleRequest();

  req.deadline_ms = 0;
  auto shed = b.embedded->Query(req);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kDeadlineExceeded);

  req.deadline_ms = 60000;
  auto live = b.embedded->Query(req);
  ASSERT_TRUE(live.ok()) << live.status();

  Backends plain = MakeBackends();
  auto oracle = plain.embedded->Query(SimpleRequest());
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(live->answers[0].observed, oracle->answers[0].observed);
  EXPECT_DOUBLE_EQ(live->answers[0].estimate, oracle->answers[0].estimate);
}

// --- quotas through the full client surface ---------------------------------

TEST(QuotaTest, OverQuotaTenantIsRejectedIdenticallyOnBothBackends) {
  QueryEngineOptions options;
  options.tenant_quota_qps = 0.001;  // effectively no refill mid-test
  options.tenant_quota_burst = 2;
  Backends b = MakeBackends(options);
  QueryRequest req = SimpleRequest();
  req.tenant = "greedy";

  ASSERT_TRUE(b.embedded->Query(req).ok());
  ASSERT_TRUE(b.remote->Query(req).ok());
  auto embedded = b.embedded->Query(req);
  auto remote = b.remote->Query(req);
  ASSERT_FALSE(embedded.ok());
  ASSERT_FALSE(remote.ok());
  EXPECT_EQ(embedded.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(embedded.status(), remote.status())
      << "embedded: " << embedded.status() << " remote: " << remote.status();

  // An undeclared tenant accounts to "default", isolated from "greedy".
  EXPECT_TRUE(b.remote->Query(SimpleRequest()).ok());
}

TEST(QuotaTest, TenantStatsFlowThroughTheWireStatsOp) {
  QueryEngineOptions options;
  options.tenant_quota_qps = 0.001;
  options.tenant_quota_burst = 1;
  Backends b = MakeBackends(options);
  QueryRequest req = SimpleRequest();
  req.tenant = "t";
  ASSERT_TRUE(b.remote->Query(req).ok());
  ASSERT_FALSE(b.remote->Query(req).ok());

  auto stats = b.remote->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_TRUE(stats->tenants.has_value());
  EXPECT_DOUBLE_EQ(stats->tenants->quota_qps, 0.001);
  EXPECT_DOUBLE_EQ(stats->tenants->quota_burst, 1.0);
  ASSERT_TRUE(stats->tenants->tenants.count("t"));
  EXPECT_EQ(stats->tenants->tenants.at("t").admitted, 1u);
  EXPECT_EQ(stats->tenants->tenants.at("t").rejected, 1u);
  // The remote decode matches the engine's own counters field-for-field.
  auto direct = b.engine->tenant_stats();
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->tenants.at("t").admitted,
            stats->tenants->tenants.at("t").admitted);
}

TEST(QuotaTest, StatsSectionAbsentWhenQuotasDisabled) {
  // No quota configured: no admission controller, no "tenants" section on
  // the wire — so pre-QoS stats consumers (and golden transcripts) see
  // byte-identical responses.
  Backends b = MakeBackends();
  EXPECT_EQ(b.engine->tenant_stats(), std::nullopt);
  EXPECT_EQ(b.engine->admission(), nullptr);
  auto stats = b.remote->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->tenants.has_value());
}

// --- wire codec: tenant + deadline fields -----------------------------------

TEST(WireQosTest, TenantAndDeadlineRoundTripThroughTheCodec) {
  QueryRequest req = SimpleRequest();
  req.tenant = "acme";
  req.deadline_ms = 250;
  JsonValue encoded = recpriv::serve::wire::EncodeQueryRequest(req, 7);
  EXPECT_EQ((*encoded.Get("tenant"))->AsString().ValueOrDie(), "acme");
  EXPECT_EQ((*encoded.Get("deadline_ms"))->AsInt().ValueOrDie(), 250);

  // Legacy requests omit both fields entirely.
  JsonValue legacy =
      recpriv::serve::wire::EncodeQueryRequest(SimpleRequest(), 8);
  EXPECT_FALSE(legacy.Has("tenant"));
  EXPECT_FALSE(legacy.Has("deadline_ms"));
}

TEST(WireQosTest, MalformedQosFieldsAreInvalidRequests) {
  Backends b = MakeBackends();
  const char* cases[] = {
      R"({"v":2,"op":"query","release":"simple","deadline_ms":-5,"queries":[{"sa":"flu"}]})",
      R"({"v":2,"op":"query","release":"simple","deadline_ms":"soon","queries":[{"sa":"flu"}]})",
      R"({"v":2,"op":"query","release":"simple","tenant":7,"queries":[{"sa":"flu"}]})",
  };
  for (const char* line : cases) {
    JsonValue response = *JsonValue::Parse(
        recpriv::serve::HandleRequestLine(line, *b.engine));
    EXPECT_FALSE((*response.Get("ok"))->AsBool().ValueOrDie()) << line;
    EXPECT_EQ((*(*response.Get("error"))->Get("code"))->AsString().ValueOrDie(),
              ErrorCodeName(ErrorCode::kInvalidRequest))
        << line;
  }
}

TEST(WireQosTest, NewCodesRoundTripByName) {
  for (ErrorCode code :
       {ErrorCode::kResourceExhausted, ErrorCode::kDeadlineExceeded}) {
    auto back = ErrorCodeFromName(ErrorCodeName(code));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, code);
  }
  EXPECT_EQ(ErrorCodeName(ErrorCode::kResourceExhausted),
            "RESOURCE_EXHAUSTED");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
  // ...and through the Status taxonomy both ways.
  EXPECT_EQ(ErrorCodeFromStatus(Status::ResourceExhausted("m")),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(ErrorCodeFromStatus(Status::DeadlineExceeded("m")),
            ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(ApiError::FromStatus(Status::DeadlineExceeded("m")).ToStatus(),
            Status::DeadlineExceeded("m"));
}

// --- retry policy -----------------------------------------------------------

TEST(RetryPolicyTest, OnlyTransientCodesAreRetryable) {
  EXPECT_TRUE(IsRetryableCode(ErrorCode::kUnavailable));
  EXPECT_TRUE(IsRetryableCode(ErrorCode::kResourceExhausted));
  EXPECT_TRUE(IsRetryableCode(ErrorCode::kIoError));
  // Answer-bearing codes — the server ruled on the request — never retry,
  // and a dead deadline can never be met by trying again.
  EXPECT_FALSE(IsRetryableCode(ErrorCode::kDeadlineExceeded));
  EXPECT_FALSE(IsRetryableCode(ErrorCode::kNotFound));
  EXPECT_FALSE(IsRetryableCode(ErrorCode::kInvalidRequest));
  EXPECT_FALSE(IsRetryableCode(ErrorCode::kStaleEpoch));
  EXPECT_FALSE(IsRetryableCode(ErrorCode::kMalformed));
  EXPECT_FALSE(IsRetryableCode(ErrorCode::kOk));
}

/// Scripted Client: fails the next `failures` List() calls with `failure`,
/// then succeeds. Shared state lets the factory count rebuilds.
struct FlakyState {
  int failures = 0;
  Status failure = Status::OK();
  int clients_built = 0;
  int calls = 0;
};

class FlakyClient : public Client {
 public:
  explicit FlakyClient(std::shared_ptr<FlakyState> state)
      : state_(std::move(state)) {}

  Result<std::vector<ReleaseDescriptor>> List() override {
    ++state_->calls;
    if (state_->failures > 0) {
      --state_->failures;
      return state_->failure;
    }
    return std::vector<ReleaseDescriptor>{};
  }
  Result<BatchAnswer> Query(const QueryRequest&) override {
    return Status::Internal("unused");
  }
  Result<ReleaseSchema> GetSchema(const std::string&,
                                  std::optional<uint64_t>) override {
    return Status::Internal("unused");
  }
  Result<ServerStats> Stats() override { return Status::Internal("unused"); }
  Result<ReleaseDescriptor> Publish(const std::string&,
                                    const std::string&) override {
    return Status::Internal("unused");
  }
  Result<ReleaseDescriptor> Drop(const std::string&) override {
    return Status::Internal("unused");
  }

 private:
  std::shared_ptr<FlakyState> state_;
};

RetryPolicy FastPolicy() {
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 2;
  return policy;
}

std::unique_ptr<RetryingClient> MakeRetrying(
    const std::shared_ptr<FlakyState>& state, RetryPolicy policy) {
  auto client = RetryingClient::Create(
      [state]() -> Result<std::unique_ptr<Client>> {
        ++state->clients_built;
        return std::unique_ptr<Client>(std::make_unique<FlakyClient>(state));
      },
      policy);
  EXPECT_TRUE(client.ok()) << client.status();
  return std::move(*client);
}

TEST(RetryingClientTest, TransientFailureIsRetriedWithReconnect) {
  auto state = std::make_shared<FlakyState>();
  state->failures = 2;
  state->failure = Status::Unavailable("flaky");
  auto client = MakeRetrying(state, FastPolicy());
  EXPECT_TRUE(client->List().ok());
  EXPECT_EQ(state->calls, 3);
  // UNAVAILABLE means dead transport: each retry rebuilt the inner client
  // (1 eager + 2 rebuilds).
  EXPECT_EQ(state->clients_built, 3);
  EXPECT_EQ(client->retry_stats().attempts, 3u);
  EXPECT_EQ(client->retry_stats().retries, 2u);
  EXPECT_EQ(client->retry_stats().retried_ok, 1u);
  EXPECT_EQ(client->retry_stats().reconnects, 2u);
  EXPECT_EQ(client->retry_stats().exhausted, 0u);
}

TEST(RetryingClientTest, QuotaRejectionBacksOffWithoutReconnect) {
  auto state = std::make_shared<FlakyState>();
  state->failures = 1;
  state->failure = Status::ResourceExhausted("over quota");
  auto client = MakeRetrying(state, FastPolicy());
  EXPECT_TRUE(client->List().ok());
  // The connection is fine — only the bucket needed time.
  EXPECT_EQ(state->clients_built, 1);
  EXPECT_EQ(client->retry_stats().reconnects, 0u);
  EXPECT_EQ(client->retry_stats().retried_ok, 1u);
}

TEST(RetryingClientTest, AnswerBearingErrorsReturnImmediately) {
  for (const Status& failure :
       {Status::NotFound("gone"), Status::DeadlineExceeded("late")}) {
    auto state = std::make_shared<FlakyState>();
    state->failures = 1;
    state->failure = failure;
    auto client = MakeRetrying(state, FastPolicy());
    auto result = client->List();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status(), failure);
    EXPECT_EQ(state->calls, 1) << failure.ToString();
    EXPECT_EQ(client->retry_stats().retries, 0u);
  }
}

TEST(RetryingClientTest, ExhaustionSurfacesTheLastError) {
  auto state = std::make_shared<FlakyState>();
  state->failures = 100;  // never recovers within the budget
  state->failure = Status::Unavailable("down hard");
  auto client = MakeRetrying(state, FastPolicy());
  auto result = client->List();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(state->calls, 4);  // 1 + max_retries
  EXPECT_EQ(client->retry_stats().exhausted, 1u);
  EXPECT_EQ(client->retry_stats().retried_ok, 0u);
}

// --- fault injection end to end: faulted runs complete answer-clean --------

TEST(FaultTransportTest, DeadTransportStaysDeadUntilRebuilt) {
  Backends b = MakeBackends();
  net::FaultOptions fo;
  fo.drop_rate = 1.0;
  auto injector = std::make_shared<net::FaultInjector>(fo);
  LineProtocolClient faulty(std::make_unique<FaultInjectingTransport>(
      std::make_unique<LoopbackTransport>(*b.engine), injector));
  auto first = faulty.List();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(first.status().message().find("fault injection"),
            std::string::npos);
  // A real dead socket does not resurrect either.
  EXPECT_FALSE(faulty.List().ok());
  EXPECT_GE(injector->Stats().drops, 1u);
}

TEST(FaultTransportTest, RetryLayerRecoversFromInjectedFaults) {
  // drop fires on roughly every third write: each session dies repeatedly
  // and the retry layer must rebuild it mid-stream, yet every request
  // ultimately succeeds against the engine.
  Backends b = MakeBackends();
  net::FaultOptions fo;
  fo.seed = 7;
  fo.drop_rate = 0.3;
  auto injector = std::make_shared<net::FaultInjector>(fo);
  // Deep retry budget: at 30% drop, runs of 4+ consecutive drops happen.
  RetryPolicy policy = FastPolicy();
  policy.max_retries = 6;
  auto client = RetryingClient::Create(
      [&]() -> Result<std::unique_ptr<Client>> {
        return std::unique_ptr<Client>(std::make_unique<LineProtocolClient>(
            std::make_unique<FaultInjectingTransport>(
                std::make_unique<LoopbackTransport>(*b.engine), injector)));
      },
      policy);
  ASSERT_TRUE(client.ok()) << client.status();
  for (int i = 0; i < 30; ++i) {
    auto answer = (*client)->Query(SimpleRequest());
    ASSERT_TRUE(answer.ok()) << "request " << i << ": " << answer.status();
  }
  EXPECT_GT(injector->Stats().drops, 0u);
  EXPECT_GT((*client)->retry_stats().reconnects, 0u);
  EXPECT_EQ((*client)->retry_stats().exhausted, 0u);
}

// --- workload scenario: the qos block's JSON contract -----------------------

namespace wl = recpriv::workload;

TEST(ScenarioQosTest, AbusiveTenantProfileRoundTripsLosslessly) {
  auto spec = wl::BuiltinScenario("abusive_tenant", 2015);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->qos.abusive_clients, 2u);
  EXPECT_EQ(spec->qos.abusive_tenant, "abuser");
  EXPECT_EQ(spec->qos.tenant, "victim");
  const JsonValue json = wl::ScenarioToJson(*spec);
  EXPECT_TRUE(json.Has("qos"));
  auto parsed = wl::ScenarioFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(wl::ScenarioToJson(*parsed).ToString(2), json.ToString(2));
}

TEST(ScenarioQosTest, QosFreeSpecsStayByteCompatible) {
  // A spec with default QoS emits no "qos" key — pre-QoS scenario files
  // and their recorded JSON stay byte-identical — and a file without one
  // parses to the defaults.
  auto spec = wl::BuiltinScenario("steady_uniform", 3);
  ASSERT_TRUE(spec.ok());
  const JsonValue json = wl::ScenarioToJson(*spec);
  EXPECT_FALSE(json.Has("qos"));
  auto parsed = wl::ScenarioFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->qos.abusive_clients, 0u);
  EXPECT_TRUE(parsed->qos.tenant.empty());
  EXPECT_EQ(parsed->qos.deadline_ms, 0);
}

TEST(ScenarioQosTest, AbusersInflateOnlyTheirOwnStreams) {
  // Turning a client abusive lengthens its stream by the multiplier and
  // leaves every other client's op stream byte-identical — the generator
  // draws the extra ops from the abuser's own fork.
  auto base = wl::BuiltinScenario("abusive_tenant", 11);
  ASSERT_TRUE(base.ok());
  wl::ScenarioSpec calm = *base;
  calm.qos.abusive_clients = 0;

  auto abusive = wl::GenerateWorkload(*base);
  auto plain = wl::GenerateWorkload(calm);
  ASSERT_TRUE(abusive.ok());
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(abusive->client_ops.size(), plain->client_ops.size());
  for (size_t c = 0; c < abusive->client_ops.size(); ++c) {
    if (c < base->qos.abusive_clients) {
      EXPECT_EQ(abusive->client_ops[c].size(),
                base->ops_per_client * base->qos.abusive_ops_multiplier);
    } else {
      ASSERT_EQ(abusive->client_ops[c].size(), plain->client_ops[c].size());
      for (size_t i = 0; i < abusive->client_ops[c].size(); ++i) {
        EXPECT_EQ(abusive->client_ops[c][i].queries.size(),
                  plain->client_ops[c][i].queries.size())
            << "client " << c << " op " << i;
      }
    }
  }
}

// --- workload driver: quotas, faults + retry, end to end --------------------

TEST(DriverQosTest, QuotedAbuserIsRejectedWhileVictimsStayClean) {
  auto spec = wl::BuiltinScenario("abusive_tenant", 19);
  ASSERT_TRUE(spec.ok());
  spec->ops_per_client = 10;   // abusers still send 60 each (6x)
  spec->pacing_us = 10000;     // victims: ~400 q/s aggregate, under quota
  wl::DriverOptions options;
  options.engine.num_threads = 2;
  // Sized so the outcome is arithmetic, not timing: the victims' paced
  // ~400 q/s never drains a 500 q/s bucket, while the unpaced abusers
  // demand 120 queries against 20 of burst plus milliseconds of refill.
  options.engine.tenant_quota_qps = 500;
  options.engine.tenant_quota_burst = 20;
  auto report = wl::RunScenario(*spec, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->mismatches, 0u);
  EXPECT_EQ(report->hard_failures, 0u);
  EXPECT_EQ(report->unknown_epochs, 0u);
  // The only error a quota run may produce is the structured rejection.
  for (const auto& [code, count] : report->errors) {
    EXPECT_EQ(code, "RESOURCE_EXHAUSTED") << code << "=" << count;
  }
  ASSERT_TRUE(report->tenants.has_value());
  ASSERT_TRUE(report->tenants->tenants.count("abuser"));
  // The unpaced abusers burn their bucket far faster than it refills.
  EXPECT_GT(report->tenants->tenants.at("abuser").rejected, 0u);
  // Victims' latency profile is tracked under their declared tenant.
  ASSERT_TRUE(report->tenant_latency.count("victim"));
  EXPECT_GT(report->tenant_latency.at("victim").requests, 0u);
  EXPECT_EQ(report->tenant_latency.at("victim").errors, 0u);
}

TEST(DriverQosTest, FaultedRunWithRetryCompletesAnswerClean) {
  auto spec = wl::BuiltinScenario("steady_uniform", 23);
  ASSERT_TRUE(spec.ok());
  spec->clients = 3;
  spec->ops_per_client = 12;
  net::FaultOptions fo;
  fo.seed = 2015;
  fo.drop_rate = 0.05;
  fo.delay_rate = 0.05;
  fo.delay_ms = 2;
  wl::DriverOptions options;
  options.engine.num_threads = 2;
  options.fault_injector = std::make_shared<net::FaultInjector>(fo);
  options.retry = true;
  options.retry_policy = FastPolicy();
  auto report = wl::RunScenario(*spec, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->mismatches, 0u);
  EXPECT_EQ(report->hard_failures, 0u);
  EXPECT_TRUE(report->errors.empty());
  EXPECT_EQ(report->verified, report->requests);
  ASSERT_TRUE(report->faults.has_value());
  EXPECT_GT(report->faults->total(), 0u);
  ASSERT_TRUE(report->retry.has_value());
  EXPECT_GT(report->retry->retries, 0u);
  EXPECT_EQ(report->retry->exhausted, 0u);
}

TEST(DriverQosTest, FaultedTcpRunWithRetryCompletesAnswerClean) {
  // The same contract over real sockets, where faults are byte-level:
  // truncated lines, mid-line disconnects, split writes.
  auto spec = wl::BuiltinScenario("steady_uniform", 29);
  ASSERT_TRUE(spec.ok());
  spec->clients = 2;
  spec->ops_per_client = 10;
  net::FaultOptions fo;
  fo.seed = 2015;
  fo.drop_rate = 0.04;
  fo.truncate_rate = 0.04;
  fo.short_write_rate = 0.08;
  wl::DriverOptions options;
  options.engine.num_threads = 2;
  options.over_tcp = true;
  options.fault_injector = std::make_shared<net::FaultInjector>(fo);
  options.retry = true;
  options.retry_policy = FastPolicy();
  auto report = wl::RunScenario(*spec, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->mismatches, 0u);
  EXPECT_EQ(report->hard_failures, 0u);
  EXPECT_TRUE(report->errors.empty());
  EXPECT_EQ(report->verified, report->requests);
  ASSERT_TRUE(report->faults.has_value());
  EXPECT_GT(report->faults->total(), 0u);
}

}  // namespace
}  // namespace recpriv::client
