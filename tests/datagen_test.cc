// Tests for the synthetic data generators: calibration of ADULT, structure
// of CENSUS, the effective-class machinery, and the simple builder.

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/adult.h"
#include "datagen/census.h"
#include "datagen/effective_model.h"
#include "datagen/simple.h"
#include "stats/chi_squared.h"
#include "table/group_index.h"
#include "table/predicate.h"

namespace recpriv::datagen {
namespace {

using recpriv::table::GroupIndex;
using recpriv::table::Predicate;
using recpriv::table::Table;

TEST(ClassedAttributeTest, BuildAndSample) {
  auto attr = ClassedAttribute::Make(
      "Job", {EffectiveClass{{"eng", "dev"}, {3.0, 1.0}},
              EffectiveClass{{"law"}, {1.0}}});
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->num_classes(), 2u);
  EXPECT_EQ(attr->num_values(), 3u);
  EXPECT_EQ(attr->ClassOf(0), 0u);
  EXPECT_EQ(attr->ClassOf(2), 1u);
  EXPECT_NEAR(attr->WithinClassShare(0), 0.75, 1e-12);
  EXPECT_NEAR(attr->WithinClassShare(2), 1.0, 1e-12);

  Rng rng(3);
  std::vector<int> hist(3, 0);
  for (int i = 0; i < 40000; ++i) ++hist[attr->SampleValue(0, rng)];
  EXPECT_EQ(hist[2], 0);  // class 0 never yields law
  EXPECT_NEAR(hist[0] / 40000.0, 0.75, 0.01);
}

TEST(ClassedAttributeTest, Validation) {
  EXPECT_FALSE(ClassedAttribute::Make("A", {}).ok());
  EXPECT_FALSE(
      ClassedAttribute::Make("A", {EffectiveClass{{"x"}, {1.0, 2.0}}}).ok());
  EXPECT_FALSE(
      ClassedAttribute::Make("A", {EffectiveClass{{"x"}, {0.0}}}).ok());
  EXPECT_FALSE(ClassedAttribute::Make(
                   "A", {EffectiveClass{{"x"}, {1.0}},
                         EffectiveClass{{"x"}, {1.0}}})
                   .ok());
}

TEST(AdultTest, SchemaShape) {
  Rng rng(1);
  Table t = *GenerateAdult({.num_records = 2000}, rng);
  EXPECT_EQ(t.num_rows(), 2000u);
  ASSERT_EQ(t.num_columns(), 5u);
  EXPECT_EQ(t.schema()->attribute(0).name, "Education");
  EXPECT_EQ(t.schema()->attribute(0).domain.size(), 16u);
  EXPECT_EQ(t.schema()->attribute(1).domain.size(), 14u);
  EXPECT_EQ(t.schema()->attribute(2).domain.size(), 5u);
  EXPECT_EQ(t.schema()->attribute(3).domain.size(), 2u);
  EXPECT_EQ(t.schema()->sensitive().name, "Income");
  EXPECT_EQ(t.schema()->sa_domain_size(), 2u);
}

TEST(AdultTest, CalibrationTargets) {
  AdultModelInfo info = GetAdultModelInfo({});
  // Overall >50K rate calibrated to the UCI value.
  EXPECT_NEAR(info.expected_high_income, 0.2478, 1e-4);
  // Example-1 cell: support near 500, confidence near 0.84.
  EXPECT_NEAR(info.headline_expected_support, 500.0, 60.0);
  EXPECT_NEAR(info.headline_confidence, 0.84, 0.06);
}

TEST(AdultTest, EmpiricalIncomeRateMatchesCalibration) {
  Rng rng(2015);
  Table t = *GenerateAdult({}, rng);
  auto hist = t.SaHistogram();
  const double rate = double(hist[1]) / double(t.num_rows());
  EXPECT_NEAR(rate, 0.2478, 0.01);
}

TEST(AdultTest, HeadlineRuleHoldsEmpirically) {
  Rng rng(2015);
  Table t = *GenerateAdult({}, rng);
  auto pred = *Predicate::FromBindings(
      *t.schema(), {{"Education", "Prof-school"},
                    {"Occupation", "Prof-specialty"},
                    {"Race", "White"},
                    {"Gender", "Male"}});
  auto rows = pred.MatchingRows(t);
  EXPECT_GT(rows.size(), 300u);
  EXPECT_LT(rows.size(), 750u);
  uint64_t high = 0;
  for (size_t r : rows) high += t.at(r, 4) == 1;
  const double conf = double(high) / double(rows.size());
  EXPECT_GT(conf, 0.75);  // far above the 24.78% base rate
}

TEST(AdultTest, GenderGapInIncome) {
  // The model gives males a higher conditional rate everywhere.
  Rng rng(10);
  Table t = *GenerateAdult({.num_records = 30000}, rng);
  uint64_t male_n = 0, male_hi = 0, female_n = 0, female_hi = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.at(r, 3) == 0) {
      ++male_n;
      male_hi += t.at(r, 4);
    } else {
      ++female_n;
      female_hi += t.at(r, 4);
    }
  }
  EXPECT_GT(double(male_hi) / male_n, double(female_hi) / female_n);
}

TEST(AdultTest, RejectsZeroRecords) {
  Rng rng(1);
  EXPECT_FALSE(GenerateAdult({.num_records = 0}, rng).ok());
}

TEST(CensusTest, SchemaShape) {
  Rng rng(4);
  Table t = *GenerateCensus({.num_records = 5000}, rng);
  ASSERT_EQ(t.num_columns(), 6u);
  EXPECT_EQ(t.schema()->attribute(0).name, "Age");
  EXPECT_EQ(t.schema()->attribute(0).domain.size(), 77u);
  EXPECT_EQ(t.schema()->attribute(1).domain.size(), 2u);
  EXPECT_EQ(t.schema()->attribute(2).domain.size(), 14u);
  EXPECT_EQ(t.schema()->attribute(3).domain.size(), 6u);
  EXPECT_EQ(t.schema()->attribute(4).domain.size(), 9u);
  EXPECT_EQ(t.schema()->sensitive().name, "Occupation");
  EXPECT_EQ(t.schema()->sa_domain_size(), 50u);
}

TEST(CensusTest, OccupationsAreBalanced) {
  Rng rng(6);
  Table t = *GenerateCensus({.num_records = 100000}, rng);
  auto hist = t.SaHistogram();
  // "Balanced": every occupation within a factor ~4 of uniform.
  for (uint64_t c : hist) {
    EXPECT_GT(c, 100000 / 50 / 4);
    EXPECT_LT(c, 100000 / 50 * 4);
  }
}

TEST(CensusTest, AgeIndependentOfOccupation) {
  // Correlation check: occupation histogram conditioned on young vs old
  // should match within sampling noise (chi-squared well under critical).
  Rng rng(8);
  Table t = *GenerateCensus({.num_records = 200000}, rng);
  std::vector<uint64_t> young(50, 0), old(50, 0);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    (t.at(r, 0) < 38 ? young : old)[t.at(r, 5)]++;
  }
  auto test = recpriv::stats::TwoSampleBinnedChiSquared(young, old);
  ASSERT_TRUE(test.ok());
  EXPECT_FALSE(test->reject_null);
}

TEST(CensusTest, ModelSeedStableAcrossSizes) {
  // The same underlying population: per-combo occupation distributions are
  // identical across dataset sizes (the paper samples 100K..500K from one
  // data set). Check a marginal: P(occ | gender=male) across two sizes.
  auto dist = [](size_t n, uint64_t seed) {
    Rng rng(seed);
    Table t = *GenerateCensus({.num_records = n}, rng);
    std::vector<double> d(50, 0.0);
    size_t males = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      if (t.at(r, 1) == 0) {
        ++males;
        d[t.at(r, 5)] += 1.0;
      }
    }
    for (double& v : d) v /= double(males);
    return d;
  };
  auto small = dist(60000, 1);
  auto large = dist(240000, 2);
  for (size_t o = 0; o < 50; ++o) {
    EXPECT_NEAR(small[o], large[o], 0.006) << "occupation " << o;
  }
}

TEST(CensusTest, Validation) {
  Rng rng(1);
  EXPECT_FALSE(GenerateCensus({.num_records = 0}, rng).ok());
  CensusConfig bad;
  bad.tilt_alpha = -0.1;
  EXPECT_FALSE(GenerateCensus(bad, rng).ok());
}

TEST(SimpleTest, ExactApportionment) {
  SimpleDatasetSpec spec;
  spec.public_attributes = {"G"};
  spec.sensitive_attribute = "S";
  spec.sa_domain = {"a", "b", "c"};
  spec.groups.push_back(GroupSpec{{"x"}, 10, {1.0, 1.0, 2.0}});
  Table t = *GenerateSimpleExact(spec);
  EXPECT_EQ(t.num_rows(), 10u);
  auto hist = t.SaHistogram();
  EXPECT_EQ(hist[2], 5u);
  EXPECT_EQ(hist[0] + hist[1], 5u);
}

TEST(SimpleTest, SampledCountsMatchWeights) {
  SimpleDatasetSpec spec;
  spec.public_attributes = {"G"};
  spec.sensitive_attribute = "S";
  spec.sa_domain = {"a", "b"};
  spec.groups.push_back(GroupSpec{{"x"}, 50000, {3.0, 1.0}});
  Rng rng(77);
  Table t = *GenerateSimple(spec, rng);
  auto hist = t.SaHistogram();
  EXPECT_NEAR(double(hist[0]) / 50000.0, 0.75, 0.01);
}

TEST(SimpleTest, Validation) {
  SimpleDatasetSpec spec;
  spec.public_attributes = {"G"};
  spec.sensitive_attribute = "S";
  spec.sa_domain = {"only-one"};
  EXPECT_FALSE(GenerateSimpleExact(spec).ok());

  spec.sa_domain = {"a", "b"};
  spec.groups.push_back(GroupSpec{{"x", "extra"}, 5, {1.0, 1.0}});
  EXPECT_FALSE(GenerateSimpleExact(spec).ok());

  spec.groups.clear();
  spec.groups.push_back(GroupSpec{{"x"}, 5, {0.0, 0.0}});
  EXPECT_FALSE(GenerateSimpleExact(spec).ok());
}

TEST(SimpleTest, MultipleGroupsFormIndex) {
  SimpleDatasetSpec spec;
  spec.public_attributes = {"G", "H"};
  spec.sensitive_attribute = "S";
  spec.sa_domain = {"a", "b"};
  spec.groups.push_back(GroupSpec{{"x", "1"}, 10, {1.0, 0.0}});
  spec.groups.push_back(GroupSpec{{"y", "2"}, 20, {0.0, 1.0}});
  Table t = *GenerateSimpleExact(spec);
  GroupIndex idx = GroupIndex::Build(t);
  EXPECT_EQ(idx.num_groups(), 2u);
  EXPECT_EQ(idx.num_records(), 30u);
}

}  // namespace
}  // namespace recpriv::datagen
