// Tests for the consumer-side Reconstructor (estimates + confidence
// intervals) and NormalQuantile.

#include "analysis/reconstructor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/random.h"
#include "perturb/uniform_perturbation.h"
#include "stats/special_functions.h"
#include "table/schema.h"

namespace recpriv::analysis {
namespace {

using recpriv::table::Attribute;
using recpriv::table::Dictionary;
using recpriv::table::Predicate;
using recpriv::table::Schema;
using recpriv::table::SchemaPtr;
using recpriv::table::Table;

TEST(NormalQuantileTest, StandardValues) {
  EXPECT_NEAR(stats::NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(stats::NormalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(stats::NormalQuantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(stats::NormalQuantile(0.995), 2.575829, 1e-5);
}

TEST(ReconstructorTest, MakeValidation) {
  EXPECT_TRUE(Reconstructor::Make(0.5, 4).ok());
  EXPECT_FALSE(Reconstructor::Make(0.0, 4).ok());
  EXPECT_FALSE(Reconstructor::Make(0.5, 1).ok());
}

TEST(ReconstructorTest, FromObservedClosedForm) {
  auto rec = *Reconstructor::Make(0.5, 10);
  auto e = *rec.FromObserved(130, 1000);
  EXPECT_DOUBLE_EQ(e.frequency, (0.13 - 0.05) / 0.5);
  EXPECT_DOUBLE_EQ(e.count, 1000 * e.frequency);
  const double expected_se =
      std::sqrt(1000 * 0.13 * 0.87) / (1000 * 0.5);
  EXPECT_NEAR(e.std_error, expected_se, 1e-12);
  // 95% interval is symmetric around the estimate.
  EXPECT_NEAR(e.ci_high - e.frequency, e.frequency - e.ci_low, 1e-12);
  EXPECT_NEAR(e.ci_high - e.ci_low, 2 * 1.959964 * expected_se, 1e-5);
}

TEST(ReconstructorTest, FromObservedValidation) {
  auto rec = *Reconstructor::Make(0.5, 10);
  EXPECT_FALSE(rec.FromObserved(11, 10).ok());
  EXPECT_FALSE(rec.FromObserved(1, 10, 0.0).ok());
  EXPECT_FALSE(rec.FromObserved(1, 10, 1.0).ok());
  auto empty = *rec.FromObserved(0, 0);
  EXPECT_EQ(empty.frequency, 0.0);
  EXPECT_EQ(empty.subset_size, 0u);
}

SchemaPtr MakeSchema() {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"Job", *Dictionary::FromValues({"eng", "law"})});
  attrs.push_back(
      Attribute{"SA", *Dictionary::FromValues({"a", "b", "c", "d"})});
  return std::make_shared<Schema>(*Schema::Make(std::move(attrs), 1));
}

TEST(ReconstructorTest, EstimateFrequencyFromRelease) {
  // Build a raw table, perturb it, and check the reconstruction covers the
  // true frequency within the reported interval (statistically).
  const double p = 0.4;
  auto schema = MakeSchema();
  Table raw(schema);
  for (size_t i = 0; i < 20000; ++i) {
    // Engineers: 55% a, 25% b, 15% c, 5% d. Lawyers uniform.
    uint32_t sa;
    size_t roll = i % 20;
    if (i % 2 == 0) {
      sa = roll < 11 ? 0u : (roll < 16 ? 1u : (roll < 19 ? 2u : 3u));
      ASSERT_TRUE(raw.AppendRow(std::vector<uint32_t>{0, sa}).ok());
    } else {
      ASSERT_TRUE(
          raw.AppendRow(std::vector<uint32_t>{1, uint32_t(roll % 4)}).ok());
    }
  }
  Rng rng(5);
  const recpriv::perturb::UniformPerturbation up{p, 4};
  Table release = *recpriv::perturb::PerturbTable(up, raw, rng);

  auto rec = *Reconstructor::Make(p, 4);
  Predicate eng(2);
  eng.Bind(0, 0);
  auto e = *rec.EstimateFrequency(release, eng, 0);
  EXPECT_EQ(e.subset_size, 10000u);
  EXPECT_NEAR(e.frequency, 0.55, 4 * e.std_error);
  EXPECT_GT(e.std_error, 0.0);

  auto dist = *rec.EstimateDistribution(release, eng);
  ASSERT_EQ(dist.size(), 4u);
  double total = 0.0;
  for (const auto& est : dist) total += est.frequency;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ReconstructorTest, RejectsSaFilteredPredicates) {
  auto rec = *Reconstructor::Make(0.5, 4);
  Table release(MakeSchema());
  Predicate with_sa(2);
  with_sa.Bind(1, 0);  // binds the sensitive column
  EXPECT_FALSE(rec.EstimateFrequency(release, with_sa, 0).ok());
  EXPECT_FALSE(rec.EstimateDistribution(release, with_sa).ok());
}

TEST(ReconstructorTest, CoverageOfConfidenceIntervals) {
  // Empirical CI coverage over repeated perturbations should be near the
  // nominal 95% (aggregate setting, plain UP).
  const double p = 0.5;
  const size_t m = 4;
  auto rec = *Reconstructor::Make(p, m);
  const recpriv::perturb::UniformPerturbation up{p, m};
  std::vector<uint64_t> counts{4000, 3000, 2000, 1000};
  const double true_f0 = 0.4;
  Rng rng(77);
  int covered = 0;
  const int reps = 800;
  for (int i = 0; i < reps; ++i) {
    auto observed = *recpriv::perturb::PerturbCounts(up, counts, rng);
    auto e = *rec.FromObserved(observed[0], 10000);
    covered += (true_f0 >= e.ci_low && true_f0 <= e.ci_high);
  }
  EXPECT_NEAR(covered / double(reps), 0.95, 0.03);
}

TEST(ReconstructorTest, OutOfRangeSaCode) {
  auto rec = *Reconstructor::Make(0.5, 4);
  Table release(MakeSchema());
  Predicate all(2);
  EXPECT_FALSE(rec.EstimateFrequency(release, all, 9).ok());
}

}  // namespace
}  // namespace recpriv::analysis
