// FlatGroupIndex tests: layout invariants, the packed/wide key paths, and a
// randomized property suite asserting the columnar index agrees with the
// legacy GroupIndex on groups, SA histograms, MatchingGroups, FindGroup,
// and CountAnswer across schemas — including domains too wide for the
// packed-key fast path.

#include "table/flat_group_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "table/group_index.h"

namespace recpriv::table {
namespace {

using recpriv::Rng;

SchemaPtr MakeSchema(const std::vector<size_t>& public_domains,
                     size_t sa_domain) {
  std::vector<Attribute> attrs;
  for (size_t a = 0; a < public_domains.size(); ++a) {
    Dictionary d;
    for (size_t v = 0; v < public_domains[a]; ++v) {
      d.GetOrAdd("a" + std::to_string(a) + "v" + std::to_string(v));
    }
    attrs.push_back(Attribute{"A" + std::to_string(a), std::move(d)});
  }
  Dictionary sa;
  for (size_t v = 0; v < sa_domain; ++v) sa.GetOrAdd("s" + std::to_string(v));
  attrs.push_back(Attribute{"SA", std::move(sa)});
  const size_t sa_index = attrs.size() - 1;
  return std::make_shared<Schema>(*Schema::Make(std::move(attrs), sa_index));
}

Table RandomTable(const SchemaPtr& schema, size_t rows, Rng& rng) {
  Table t(schema);
  std::vector<uint32_t> codes(schema->num_attributes());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < schema->num_attributes(); ++a) {
      codes[a] = uint32_t(rng.NextUint64(schema->attribute(a).domain.size()));
    }
    t.AppendRowUnchecked(codes);
  }
  return t;
}

/// Full agreement check between the two layouts for one table.
void ExpectAgreement(const Table& t, FlatGroupIndex::KeyMode mode,
                     Rng& rng) {
  const GroupIndex legacy = GroupIndex::Build(t);
  const FlatGroupIndex flat = FlatGroupIndex::Build(t, mode);

  ASSERT_EQ(flat.num_groups(), legacy.num_groups());
  ASSERT_EQ(flat.num_records(), legacy.num_records());
  EXPECT_DOUBLE_EQ(flat.AverageGroupSize(), legacy.AverageGroupSize());

  for (size_t gi = 0; gi < legacy.num_groups(); ++gi) {
    const PersonalGroup& g = legacy.groups()[gi];
    // Same group order (NA-lexicographic), same keys, same histograms.
    ASSERT_EQ(std::vector<uint32_t>(flat.na_codes(gi).begin(),
                                    flat.na_codes(gi).end()),
              g.na_codes)
        << "group " << gi;
    EXPECT_EQ(std::vector<uint64_t>(flat.sa_counts(gi).begin(),
                                    flat.sa_counts(gi).end()),
              g.sa_counts);
    EXPECT_EQ(flat.group_size(gi), g.size());
    EXPECT_DOUBLE_EQ(flat.MaxFrequency(gi), g.MaxFrequency());
    // Same row sets (legacy row order within a group is unspecified).
    std::vector<uint32_t> legacy_rows(g.rows.begin(), g.rows.end());
    std::sort(legacy_rows.begin(), legacy_rows.end());
    std::vector<uint32_t> flat_rows(flat.rows(gi).begin(),
                                    flat.rows(gi).end());
    std::sort(flat_rows.begin(), flat_rows.end());
    EXPECT_EQ(flat_rows, legacy_rows);

    // FindGroup locates every group by its own key.
    auto found = flat.FindGroup(flat.na_codes(gi));
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(*found, gi);
  }

  // Random predicates (wildcards, bound values, out-of-domain codes):
  // MatchingGroups, CountAnswer and AnswerInto must agree with the legacy
  // linear scan.
  const auto& pub = legacy.public_indices();
  const size_t n_attr = t.schema()->num_attributes();
  const size_t m = t.schema()->sa_domain_size();
  for (int trial = 0; trial < 40; ++trial) {
    Predicate pred(n_attr);
    for (size_t attr : pub) {
      const size_t dom = t.schema()->attribute(attr).domain.size();
      switch (rng.NextUint64(4)) {
        case 0:  // wildcard
          break;
        case 1:  // out-of-domain code: matches nothing on this attribute
          pred.Bind(attr, uint32_t(dom + rng.NextUint64(1000)));
          break;
        default:
          pred.Bind(attr, uint32_t(rng.NextUint64(dom)));
      }
    }
    const std::vector<size_t> slow = legacy.MatchingGroups(pred);
    const std::vector<uint32_t> fast = flat.MatchingGroups(pred);
    ASSERT_EQ(std::vector<size_t>(fast.begin(), fast.end()), slow)
        << pred.ToString(*t.schema());

    const uint32_t sa = uint32_t(rng.NextUint64(m));
    uint64_t slow_obs = 0, slow_size = 0;
    for (size_t gi : slow) {
      slow_obs += legacy.groups()[gi].sa_counts[sa];
      slow_size += legacy.groups()[gi].size();
    }
    EXPECT_EQ(flat.CountAnswer(pred, sa), slow_obs);
    uint64_t obs = 0, size = 0;
    flat.AnswerInto(pred, sa, &obs, &size);
    EXPECT_EQ(obs, slow_obs);
    EXPECT_EQ(size, slow_size);
  }

  // Missing keys are NotFound on both.
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint32_t> key;
    for (size_t attr : pub) {
      key.push_back(uint32_t(
          rng.NextUint64(t.schema()->attribute(attr).domain.size() + 3)));
    }
    const bool legacy_found = legacy.FindGroup(key).ok();
    const auto flat_found = flat.FindGroup(key);
    EXPECT_EQ(flat_found.ok(), legacy_found);
    if (legacy_found) {
      EXPECT_EQ(*flat_found, *legacy.FindGroup(key));
    }
  }
}

TEST(FlatGroupIndexTest, AgreesWithLegacyAcrossRandomSchemas) {
  Rng rng(20150407);
  for (int round = 0; round < 12; ++round) {
    const size_t n_pub = 1 + rng.NextUint64(4);
    std::vector<size_t> domains;
    for (size_t a = 0; a < n_pub; ++a) {
      domains.push_back(1 + rng.NextUint64(6));
    }
    const size_t m = 2 + rng.NextUint64(5);
    SchemaPtr schema = MakeSchema(domains, m);
    Table t = RandomTable(schema, rng.NextUint64(400), rng);
    {
      SCOPED_TRACE("round " + std::to_string(round) + " auto");
      const FlatGroupIndex flat = FlatGroupIndex::Build(t);
      EXPECT_TRUE(flat.packed());  // narrow domains: fast path expected
      ExpectAgreement(t, FlatGroupIndex::KeyMode::kAuto, rng);
    }
    {
      // The wide fallback must agree on the same narrow data.
      SCOPED_TRACE("round " + std::to_string(round) + " forced-wide");
      const FlatGroupIndex wide =
          FlatGroupIndex::Build(t, FlatGroupIndex::KeyMode::kForceWide);
      EXPECT_FALSE(wide.packed());
      ExpectAgreement(t, FlatGroupIndex::KeyMode::kForceWide, rng);
    }
  }
}

TEST(FlatGroupIndexTest, WideDomainsFallBackAndAgree) {
  // 9 public attributes x 8 bits (129-value domains) = 72 key bits: the
  // packed path cannot hold the key, Build must choose the wide layout and
  // still agree with the legacy index.
  Rng rng(77);
  std::vector<size_t> domains(9, 129);
  SchemaPtr schema = MakeSchema(domains, 3);
  Table t = RandomTable(schema, 600, rng);
  const FlatGroupIndex flat = FlatGroupIndex::Build(t);
  EXPECT_FALSE(flat.packed());
  ExpectAgreement(t, FlatGroupIndex::KeyMode::kAuto, rng);
}

TEST(FlatGroupIndexTest, SixtyFourBitKeyStillPacks) {
  // 4 x 65536-value domains = exactly 64 bits: boundary of the fast path.
  Rng rng(99);
  std::vector<size_t> domains(4, 65536);
  SchemaPtr schema = MakeSchema(domains, 2);
  Table t = RandomTable(schema, 300, rng);
  const FlatGroupIndex flat = FlatGroupIndex::Build(t);
  EXPECT_TRUE(flat.packed());
  ExpectAgreement(t, FlatGroupIndex::KeyMode::kAuto, rng);
}

TEST(FlatGroupIndexTest, EmptyTable) {
  SchemaPtr schema = MakeSchema({2, 3}, 2);
  Table t(schema);
  const FlatGroupIndex flat = FlatGroupIndex::Build(t);
  EXPECT_EQ(flat.num_groups(), 0u);
  EXPECT_EQ(flat.AverageGroupSize(), 0.0);
  EXPECT_FALSE(flat.FindGroup(std::vector<uint32_t>{0, 0}).ok());
  Predicate all(3);
  EXPECT_TRUE(flat.MatchingGroups(all).empty());
  EXPECT_EQ(flat.CountAnswer(all, 0), 0u);
}

TEST(FlatGroupIndexTest, NoPublicAttributes) {
  // A schema that is all-SA has one personal group holding every record.
  SchemaPtr schema = MakeSchema({}, 3);
  Rng rng(5);
  Table t = RandomTable(schema, 50, rng);
  const FlatGroupIndex flat = FlatGroupIndex::Build(t);
  ASSERT_EQ(flat.num_groups(), 1u);
  EXPECT_EQ(flat.group_size(0), 50u);
  uint64_t total = 0;
  for (uint64_t c : flat.sa_counts(0)) total += c;
  EXPECT_EQ(total, 50u);
  auto found = flat.FindGroup(std::span<const uint32_t>{});
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 0u);
  Predicate all(1);
  EXPECT_EQ(flat.MatchingGroups(all).size(), 1u);
}

TEST(FlatGroupIndexTest, RowsAreAscendingWithinGroups) {
  // Both key paths are stable sorts, so CSR row slices come out ascending —
  // a locality guarantee scan consumers may rely on.
  Rng rng(123);
  SchemaPtr schema = MakeSchema({3, 3}, 2);
  Table t = RandomTable(schema, 500, rng);
  for (auto mode : {FlatGroupIndex::KeyMode::kAuto,
                    FlatGroupIndex::KeyMode::kForceWide}) {
    const FlatGroupIndex flat = FlatGroupIndex::Build(t, mode);
    for (size_t gi = 0; gi < flat.num_groups(); ++gi) {
      const auto rows = flat.rows(gi);
      EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
    }
  }
}

TEST(GroupPostingIndexTest, CountAnswerMatchesFusedKernel) {
  Rng rng(321);
  SchemaPtr schema = MakeSchema({4, 3, 2}, 3);
  Table t = RandomTable(schema, 800, rng);
  const FlatGroupIndex flat = FlatGroupIndex::Build(t);
  const GroupPostingIndex postings(flat);
  for (int trial = 0; trial < 60; ++trial) {
    Predicate pred(4);
    for (size_t attr = 0; attr < 3; ++attr) {
      if (rng.NextUint64(2) == 0) {
        pred.Bind(attr, uint32_t(rng.NextUint64(
                            schema->attribute(attr).domain.size())));
      }
    }
    const uint32_t sa = uint32_t(rng.NextUint64(3));
    EXPECT_EQ(postings.CountAnswer(pred, sa), flat.CountAnswer(pred, sa));
  }
}

}  // namespace
}  // namespace recpriv::table
