// Differential suite for the SIMD count kernels (table/simd/): every
// dispatch level must produce bit-identical (observed, matched_size) to
// the scalar reference, over randomized schemas and tables covering
//   - narrow (packed-key) and forced-wide key layouts,
//   - empty predicates (match-all scans) and the fully-bound fast path,
//   - group counts straddling the 8-group vector width (tails of 0..7),
// plus the dispatch shim itself (parse, fallback, env-style override).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "table/flat_group_index.h"
#include "table/predicate.h"
#include "table/schema.h"
#include "table/simd/dispatch.h"
#include "table/table.h"
#include "testing_util.h"

namespace recpriv::table {
namespace {

using recpriv::testing::HarnessSeed;
using simd::DispatchLevel;

/// Restores auto dispatch when a test scope ends, so one test's override
/// can never leak into another suite.
struct ScopedDispatch {
  explicit ScopedDispatch(DispatchLevel level) {
    simd::SetDispatchLevel(level);
  }
  ~ScopedDispatch() { simd::SetDispatchLevel(DispatchLevel::kAuto); }
};

/// Random schema: `n_pub` public attributes with domain sizes in
/// [1, max_dom], one SA attribute with domain size `m`.
SchemaPtr RandomSchema(Rng& rng, size_t n_pub, size_t max_dom, size_t m) {
  std::vector<Attribute> attrs;
  for (size_t k = 0; k < n_pub; ++k) {
    const size_t dom = 1 + rng.NextUint64(max_dom);
    std::vector<std::string> values;
    for (size_t v = 0; v < dom; ++v) {
      values.push_back("a" + std::to_string(k) + "_" + std::to_string(v));
    }
    attrs.push_back(
        Attribute{"A" + std::to_string(k), *Dictionary::FromValues(values)});
  }
  std::vector<std::string> sa_values;
  for (size_t v = 0; v < m; ++v) sa_values.push_back("sa" + std::to_string(v));
  attrs.push_back(Attribute{"SA", *Dictionary::FromValues(sa_values)});
  return std::make_shared<Schema>(
      *Schema::Make(std::move(attrs), n_pub));
}

Table RandomTable(Rng& rng, const SchemaPtr& schema, size_t rows) {
  Table t(schema);
  std::vector<uint32_t> codes(schema->num_attributes());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < schema->num_attributes(); ++a) {
      codes[a] =
          uint32_t(rng.NextUint64(schema->attribute(a).domain.size()));
    }
    t.AppendRowUnchecked(codes);
  }
  return t;
}

/// A predicate binding each public attribute with probability `p_bind`;
/// bound values are drawn from the full domain, so some predicates match
/// nothing and some match broadly.
Predicate RandomPredicate(Rng& rng, const Schema& schema, double p_bind) {
  Predicate pred(schema.num_attributes());
  for (size_t a : schema.public_indices()) {
    if (rng.NextBernoulli(p_bind)) {
      pred.Bind(a, uint32_t(rng.NextUint64(schema.attribute(a).domain.size())));
    }
  }
  return pred;
}

/// Levels worth differencing on this host: scalar always, AVX2 when the
/// CPU has it, NEON unconditionally (its stub must also stay identical).
std::vector<DispatchLevel> LevelsUnderTest() {
  std::vector<DispatchLevel> levels{DispatchLevel::kScalar,
                                    DispatchLevel::kNeon};
  if (simd::HostSupportsAvx2()) levels.push_back(DispatchLevel::kAvx2);
  return levels;
}

/// Asserts AnswerInto and CountAnswer agree bit-exactly across all levels
/// for one (index, predicate, sa) triple.
void ExpectLevelsAgree(const FlatGroupIndex& index, const Predicate& pred,
                       uint32_t sa, const std::string& context) {
  AnswerScratch scratch;
  uint64_t ref_obs = 0, ref_size = 0;
  {
    ScopedDispatch as_scalar(DispatchLevel::kScalar);
    index.AnswerInto(pred, sa, scratch, &ref_obs, &ref_size);
  }
  for (const DispatchLevel level : LevelsUnderTest()) {
    ScopedDispatch as_level(level);
    uint64_t obs = 0, size = 0;
    index.AnswerInto(pred, sa, scratch, &obs, &size);
    EXPECT_EQ(obs, ref_obs) << context << " level=" << simd::LevelName(level);
    EXPECT_EQ(size, ref_size)
        << context << " level=" << simd::LevelName(level);
    EXPECT_EQ(index.CountAnswer(pred, sa), ref_obs)
        << context << " level=" << simd::LevelName(level);
  }
}

TEST(SimdKernelTest, RandomSchemasAllLevelsBitIdentical) {
  Rng rng(HarnessSeed(0x51D0u));
  const struct {
    size_t n_pub;
    size_t max_dom;
    size_t m;
    size_t rows;
  } configs[] = {
      {1, 4, 2, 64},    {2, 6, 3, 300},  {3, 8, 5, 1000},
      {4, 10, 4, 2500}, {6, 5, 3, 800},
  };
  for (const auto& cfg : configs) {
    const SchemaPtr schema = RandomSchema(rng, cfg.n_pub, cfg.max_dom, cfg.m);
    const Table t = RandomTable(rng, schema, cfg.rows);
    for (const auto mode :
         {FlatGroupIndex::KeyMode::kAuto, FlatGroupIndex::KeyMode::kForceWide}) {
      const FlatGroupIndex index = FlatGroupIndex::Build(t, mode);
      const std::string context =
          "n_pub=" + std::to_string(cfg.n_pub) + " rows=" +
          std::to_string(cfg.rows) +
          (mode == FlatGroupIndex::KeyMode::kForceWide ? " wide" : " auto");
      // Empty predicate: the match-all scan, maximal SIMD occupancy.
      ExpectLevelsAgree(index, Predicate(schema->num_attributes()), 0,
                        context + " empty");
      for (int i = 0; i < 25; ++i) {
        const Predicate pred = RandomPredicate(rng, *schema, 0.5);
        const uint32_t sa = uint32_t(rng.NextUint64(cfg.m));
        ExpectLevelsAgree(index, pred, sa, context + " random#" +
                                              std::to_string(i));
      }
      // Fully-bound predicates short-circuit to the FindGroup fast path —
      // both an existing key (hit) and a random one (usually a miss).
      Predicate hit(schema->num_attributes());
      const auto& pub = index.public_indices();
      if (index.num_groups() > 0) {
        const size_t g = rng.NextUint64(index.num_groups());
        for (size_t k = 0; k < pub.size(); ++k) {
          hit.Bind(pub[k], index.na_code(g, k));
        }
        ExpectLevelsAgree(index, hit, uint32_t(rng.NextUint64(cfg.m)),
                          context + " fully-bound-hit");
      }
      ExpectLevelsAgree(index, RandomPredicate(rng, *schema, 1.0),
                        uint32_t(rng.NextUint64(cfg.m)),
                        context + " fully-bound-random");
    }
  }
}

TEST(SimdKernelTest, GroupCountsAroundVectorWidthBoundaries) {
  // One public attribute whose domain size pins num_groups exactly: every
  // tail length 0..7 of the 8-group AVX2 loop is exercised, plus the
  // sub-width cases where the vector loop never runs at all.
  Rng rng(HarnessSeed(0x51D1u));
  for (const size_t groups : {1u, 2u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 32u,
                              33u, 64u, 100u}) {
    std::vector<std::string> values;
    for (size_t v = 0; v < groups; ++v) values.push_back(std::to_string(v));
    std::vector<Attribute> attrs;
    attrs.push_back(Attribute{"G", *Dictionary::FromValues(values)});
    attrs.push_back(Attribute{"SA", *Dictionary::FromValues({"x", "y", "z"})});
    const auto schema =
        std::make_shared<Schema>(*Schema::Make(std::move(attrs), 1));
    Table t(schema);
    // 1-4 rows per group value so every group exists and sizes vary.
    for (size_t v = 0; v < groups; ++v) {
      const size_t copies = 1 + rng.NextUint64(4);
      for (size_t c = 0; c < copies; ++c) {
        t.AppendRowUnchecked(std::vector<uint32_t>{
            uint32_t(v), uint32_t(rng.NextUint64(3))});
      }
    }
    const FlatGroupIndex index = FlatGroupIndex::Build(t);
    ASSERT_EQ(index.num_groups(), groups);
    const std::string context = "groups=" + std::to_string(groups);
    ExpectLevelsAgree(index, Predicate(2), 1, context + " empty");
    for (size_t v = 0; v < groups; v += 1 + groups / 7) {
      Predicate pred(2);
      pred.Bind(0, uint32_t(v));
      ExpectLevelsAgree(index, pred, uint32_t(rng.NextUint64(3)),
                        context + " bound=" + std::to_string(v));
    }
  }
}

TEST(SimdKernelTest, RawKernelEntryPointsAgree) {
  // The per-level entry points, driven directly with a hand-built bound
  // list (including full binding, which AnswerInto would short-circuit
  // around) — the layer the differential contract is defined at.
  Rng rng(HarnessSeed(0x51D2u));
  const SchemaPtr schema = RandomSchema(rng, 3, 6, 4);
  const Table t = RandomTable(rng, schema, 1200);
  const FlatGroupIndex index = FlatGroupIndex::Build(t);
  const FlatGroupIndex::Storage storage = index.storage();

  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> bound_lists;
  bound_lists.push_back({});                      // match-all
  bound_lists.push_back({{0, 0}});                // one column
  bound_lists.push_back({{0, 1}, {2, 0}});        // two columns
  bound_lists.push_back({{0, 0}, {1, 0}, {2, 0}});  // fully bound
  bound_lists.push_back({{1, 9999}});             // matches nothing

  for (const auto& bound : bound_lists) {
    simd::FusedCountArgs args;
    args.na_codes = storage.na_codes;
    args.sa_counts = storage.sa_counts;
    args.row_offsets = storage.row_offsets;
    args.num_groups = index.num_groups();
    args.n_pub = index.num_public();
    args.m = index.sa_domain();
    args.sa = uint32_t(rng.NextUint64(index.sa_domain()));
    args.bound = bound;

    uint64_t ref_obs = 0, ref_size = 0;
    simd::FusedCountSumsScalar(args, &ref_obs, &ref_size);
    uint64_t obs = 0, size = 0;
    simd::FusedCountSumsNeon(args, &obs, &size);
    EXPECT_EQ(obs, ref_obs);
    EXPECT_EQ(size, ref_size);
    if (simd::HostSupportsAvx2()) {
      obs = size = 0;
      simd::FusedCountSumsAvx2(args, &obs, &size);
      EXPECT_EQ(obs, ref_obs) << "avx2 bound_size=" << bound.size();
      EXPECT_EQ(size, ref_size) << "avx2 bound_size=" << bound.size();
    }
  }
}

TEST(SimdKernelTest, RawKernelPackedKeyPathAgrees) {
  // Hand-built args carrying the optional packed-key stream: a level may
  // match through either representation (AVX2 takes the packed one when
  // present), and the sums must stay bit-identical to scalar, which
  // matches through the bound pairs.
  Rng rng(HarnessSeed(0x51D3u));
  // Layout: A0 (4 bits) at shift 3, A1 (3 bits) at shift 0 — the same
  // highest-attribute-first packing FlatGroupIndex uses.
  constexpr size_t kNPub = 2;
  constexpr size_t kM = 3;
  constexpr uint32_t kBits[kNPub] = {4, 3};
  constexpr uint32_t kShifts[kNPub] = {3, 0};
  std::vector<uint64_t> keys;
  for (size_t g = 0; g < 37; ++g) {
    keys.push_back(rng.NextUint64(uint64_t(1) << 7));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  const size_t num_groups = keys.size();
  ASSERT_GT(num_groups, 8u);  // the vector loop must actually run
  std::vector<uint32_t> na(num_groups * kNPub);
  std::vector<uint64_t> counts(num_groups * kM);
  std::vector<uint64_t> offsets(num_groups + 1, 0);
  for (size_t g = 0; g < num_groups; ++g) {
    for (size_t k = 0; k < kNPub; ++k) {
      na[g * kNPub + k] = uint32_t((keys[g] >> kShifts[k]) &
                                   ((uint64_t(1) << kBits[k]) - 1));
    }
    uint64_t rows = 0;
    for (size_t c = 0; c < kM; ++c) {
      counts[g * kM + c] = rng.NextUint64(5);
      rows += counts[g * kM + c];
    }
    offsets[g + 1] = offsets[g] + rows;
  }

  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> bound_lists;
  bound_lists.push_back({});                       // match-all, mask = 0
  bound_lists.push_back({{0, na[0]}});             // high field only
  bound_lists.push_back({{1, na[1]}});             // low field only
  bound_lists.push_back({{0, 2}, {1, 7}});         // both (may miss)

  for (const auto& bound : bound_lists) {
    simd::FusedCountArgs args;
    args.na_codes = na;
    args.sa_counts = counts;
    args.row_offsets = offsets;
    args.num_groups = num_groups;
    args.n_pub = kNPub;
    args.m = kM;
    args.sa = uint32_t(rng.NextUint64(kM));
    args.bound = bound;
    args.packed_keys = keys;
    for (const auto& [k, code] : bound) {
      args.packed_mask |= ((uint64_t(1) << kBits[k]) - 1) << kShifts[k];
      args.packed_want |= uint64_t(code) << kShifts[k];
    }

    uint64_t ref_obs = 0, ref_size = 0;
    simd::FusedCountSumsScalar(args, &ref_obs, &ref_size);
    uint64_t obs = 0, size = 0;
    simd::FusedCountSumsNeon(args, &obs, &size);
    EXPECT_EQ(obs, ref_obs) << "neon bound_size=" << bound.size();
    EXPECT_EQ(size, ref_size) << "neon bound_size=" << bound.size();
    if (simd::HostSupportsAvx2()) {
      obs = size = 0;
      simd::FusedCountSumsAvx2(args, &obs, &size);
      EXPECT_EQ(obs, ref_obs) << "avx2 bound_size=" << bound.size();
      EXPECT_EQ(size, ref_size) << "avx2 bound_size=" << bound.size();
    }
  }
}

TEST(SimdKernelTest, DispatchShim) {
  // Name/parse round trip.
  for (const DispatchLevel level :
       {DispatchLevel::kAuto, DispatchLevel::kScalar, DispatchLevel::kAvx2,
        DispatchLevel::kNeon}) {
    const auto parsed = simd::ParseDispatchLevel(simd::LevelName(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(simd::ParseDispatchLevel("sse9").ok());
  EXPECT_FALSE(simd::ParseDispatchLevel("AVX2").ok());  // case-sensitive

  {
    // A forced level sticks; ActiveLevel never reports kAuto.
    ScopedDispatch forced(DispatchLevel::kScalar);
    EXPECT_EQ(simd::ActiveLevel(), DispatchLevel::kScalar);
  }
  {
    // Forcing AVX2 runs AVX2 where the host has it, scalar elsewhere —
    // never a fault.
    ScopedDispatch forced(DispatchLevel::kAvx2);
    EXPECT_EQ(simd::ActiveLevel(), simd::HostSupportsAvx2()
                                       ? DispatchLevel::kAvx2
                                       : DispatchLevel::kScalar);
  }
  EXPECT_NE(simd::ActiveLevel(), DispatchLevel::kAuto);
}

}  // namespace
}  // namespace recpriv::table
