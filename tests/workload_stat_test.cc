// Statistical acceptance tests for the served reconstruction pipeline:
// seeded workload scenarios must produce MLE count reconstructions that
// stay within CLOSED-FORM confidence bounds derived from the paper's
// perturbation model — tolerances are computed from (p, m, |S*|, #queries,
// alpha), never hand-tuned.
//
// Model: record-level uniform perturbation (paper §3.1) makes the observed
// count O* over a matched subset S* a sum of |S*| independent Bernoulli
// trials (retention probability q = p + (1-p)/m for the C true-value
// records, q0 = (1-p)/m for the rest), and the estimator
//
//   est = |S*| F' = (O* - |S*|(1-p)/m) / p          (Lemma 2(ii), §6.1)
//
// is unbiased with |est - E est| = |O* - E O*| / p. Hoeffding's inequality
// then gives, for ANY query with matched size S answered at confidence
// 1 - alpha/Q under a union bound over the Q queries checked:
//
//   |est - C|  <=  sqrt( S * ln(2Q/alpha) / 2 ) / p
//
// with probability >= 1 - alpha overall. The suite asserts that bound at
// alpha = 1e-9: a failure is (overwhelmingly) a broken estimator or a
// broken serving path, not an unlucky seed — and any seed reproduces via
// RECPRIV_SEED (the bound is seed-independent).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "analysis/release.h"
#include "client/in_process_client.h"
#include "query/count_query.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"
#include "table/flat_group_index.h"
#include "table/predicate.h"
#include "testing_util.h"
#include "workload/generator.h"
#include "workload/scenario.h"
#include "workload/synthetic.h"

namespace recpriv::workload {
namespace {

using recpriv::query::CountQuery;
using recpriv::query::TrueAnswer;
using recpriv::table::FlatGroupIndex;
using recpriv::table::Predicate;
using recpriv::testing::HarnessSeed;

/// Suite-wide failure probability of each test's union bound.
constexpr double kAlpha = 1e-9;

/// The Hoeffding tolerance of one query: matched size `s`, `num_queries`
/// in the union bound, retention `p`. Derived, not tuned.
double Tolerance(uint64_t s, size_t num_queries, double p) {
  return std::sqrt(double(s) * std::log(2.0 * double(num_queries) / kAlpha) /
                   2.0) /
         p;
}

/// Every conjunctive query of dimensionality 0..2 over a {d0, d1} x SA
/// release — exhaustive, so nothing cherry-picks easy predicates.
std::vector<CountQuery> EnumerateQueries(const SyntheticReleaseSpec& spec) {
  const size_t num_attributes = spec.public_domains.size() + 1;
  std::vector<CountQuery> queries;
  for (uint32_t sa = 0; sa < spec.sa_domain; ++sa) {
    CountQuery broad(num_attributes);
    broad.sa_code = sa;
    queries.push_back(broad);
    for (size_t attr = 0; attr < spec.public_domains.size(); ++attr) {
      for (uint32_t v = 0; v < spec.public_domains[attr]; ++v) {
        CountQuery q(num_attributes);
        q.na_predicate.Bind(attr, v);
        q.dimensionality = 1;
        q.sa_code = sa;
        queries.push_back(q);
      }
    }
    for (uint32_t v0 = 0; v0 < spec.public_domains[0]; ++v0) {
      for (uint32_t v1 = 0; v1 < spec.public_domains[1]; ++v1) {
        CountQuery q(num_attributes);
        q.na_predicate.Bind(0, v0);
        q.na_predicate.Bind(1, v1);
        q.dimensionality = 2;
        q.sa_code = sa;
        queries.push_back(q);
      }
    }
  }
  return queries;
}

SyntheticReleaseSpec StatSpec(uint64_t seed) {
  SyntheticReleaseSpec spec;
  spec.name = "stat";
  spec.data_seed = seed;
  spec.records = 8000;
  spec.public_domains = {4, 6};
  spec.sa_domain = 4;
  spec.retention_p = 0.5;
  spec.sa_skew = 1.0;  // groups carry non-uniform SA mixes worth recovering
  return spec;
}

TEST(WorkloadStatTest, ServedMleCountsWithinHoeffdingBounds) {
  const SyntheticReleaseSpec spec = StatSpec(HarnessSeed(0x57A70001u));
  auto raw = MakeRawTable(spec);
  ASSERT_TRUE(raw.ok());
  const FlatGroupIndex raw_index = FlatGroupIndex::Build(*raw);

  auto bundle = MakeBundle(spec, /*perturb_seed=*/1234);
  ASSERT_TRUE(bundle.ok());
  auto store = std::make_shared<serve::ReleaseStore>();
  ASSERT_TRUE(store->Publish("stat", *std::move(bundle)).ok());
  serve::QueryEngine engine(store);

  const std::vector<CountQuery> queries = EnumerateQueries(spec);
  auto batch = engine.AnswerBatch("stat", queries);
  ASSERT_TRUE(batch.ok()) << batch.status();

  size_t checked = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const serve::Answer& answer = batch->answers[i];
    const uint64_t true_count = TrueAnswer(queries[i], raw_index);
    if (answer.matched_size == 0) {
      // Perturbation never moves records between groups: an empty match in
      // the release is an empty match in the raw data.
      EXPECT_EQ(true_count, 0u);
      EXPECT_EQ(answer.estimate, 0.0);
      continue;
    }
    const double tol =
        Tolerance(answer.matched_size, queries.size(), spec.retention_p);
    EXPECT_LE(std::abs(answer.estimate - double(true_count)), tol)
        << "query " << i << ": est " << answer.estimate << " vs true "
        << true_count << " (|S*| " << answer.matched_size << ")";
    ++checked;
  }
  // The release is dense enough that the suite actually tested something.
  EXPECT_GT(checked, queries.size() / 2);
  // And the bound has power for the broad queries: tolerance well under
  // the full-release subset size.
  EXPECT_LT(Tolerance(spec.records, queries.size(), spec.retention_p),
            0.2 * double(spec.records));
}

TEST(WorkloadStatTest, EstimatorUnbiasedAcrossRepublishes) {
  // Republishing re-perturbs the SAME raw data under fresh noise; the mean
  // reconstruction over R republishes must tighten by sqrt(R) toward the
  // true counts (Lemma 2(iii): E[F'] = f).
  const SyntheticReleaseSpec spec = [&] {
    SyntheticReleaseSpec s = StatSpec(HarnessSeed(0x57A70002u));
    s.records = 4000;  // R snapshots: keep the suite fast
    return s;
  }();
  auto raw = MakeRawTable(spec);
  ASSERT_TRUE(raw.ok());
  const FlatGroupIndex raw_index = FlatGroupIndex::Build(*raw);

  // Broad and 1-dim queries: the subsets large enough that the sqrt(R)
  // tightening is visible against the per-draw tolerance.
  std::vector<CountQuery> queries;
  for (const CountQuery& q : EnumerateQueries(spec)) {
    if (q.dimensionality <= 1) queries.push_back(q);
  }

  constexpr size_t kRepublishes = 50;
  std::vector<double> mean_estimate(queries.size(), 0.0);
  std::vector<uint64_t> matched(queries.size(), 0);
  for (uint64_t r = 0; r < kRepublishes; ++r) {
    auto bundle = MakeBundle(spec, /*perturb_seed=*/1000 + r);
    ASSERT_TRUE(bundle.ok());
    auto snap = analysis::SnapshotRelease(*std::move(bundle), /*epoch=*/r + 1);
    ASSERT_TRUE(snap.ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      const serve::Answer answer = serve::EvaluateUncached(**snap, queries[i]);
      mean_estimate[i] += answer.estimate / double(kRepublishes);
      matched[i] = answer.matched_size;  // identical across republishes
    }
  }

  for (size_t i = 0; i < queries.size(); ++i) {
    if (matched[i] == 0) continue;
    const uint64_t true_count = TrueAnswer(queries[i], raw_index);
    // Union-bound Hoeffding over R * |S*| independent trials, scaled back
    // to the mean: tolerance shrinks by sqrt(R) vs a single draw.
    const double tol =
        Tolerance(matched[i], queries.size(), spec.retention_p) /
        std::sqrt(double(kRepublishes));
    EXPECT_LE(std::abs(mean_estimate[i] - double(true_count)), tol)
        << "query " << i << ": mean est " << mean_estimate[i] << " vs true "
        << true_count;
  }
}

TEST(WorkloadStatTest, GeneratedScenarioQueriesReconstructWithinBounds) {
  // End to end through the subsystem: a builtin scenario's generated query
  // streams, answered by the serving stack over the scenario's own
  // releases, reconstruct within the derived bounds — "scenarios" double
  // as statistical regression tests.
  auto scenario = BuiltinScenario("steady_uniform", HarnessSeed(2015));
  ASSERT_TRUE(scenario.ok());
  for (SyntheticReleaseSpec& r : scenario->releases) {
    r.records = 5000;  // enough mass for meaningful per-query bounds
  }
  auto generated = GenerateWorkload(*scenario);
  ASSERT_TRUE(generated.ok());

  auto store = std::make_shared<serve::ReleaseStore>();
  auto engine = std::make_shared<serve::QueryEngine>(store);
  client::InProcessClient client(engine);
  std::map<std::string, FlatGroupIndex> raw_indexes;
  std::map<std::string, double> retention;
  for (const SyntheticReleaseSpec& r : scenario->releases) {
    auto raw = MakeRawTable(r);
    ASSERT_TRUE(raw.ok());
    raw_indexes.emplace(r.name, FlatGroupIndex::Build(*raw));
    retention[r.name] = r.retention_p;
    auto bundle = MakeBundle(r, /*perturb_seed=*/r.data_seed + 99);
    ASSERT_TRUE(bundle.ok());
    ASSERT_TRUE(client.PublishBundle(r.name, *std::move(bundle)).ok());
  }

  size_t total_queries = 0;
  for (const auto& stream : generated->client_ops) {
    for (const WorkloadOp& op : stream) total_queries += op.queries.size();
  }
  ASSERT_GT(total_queries, 0u);

  for (const auto& stream : generated->client_ops) {
    for (const WorkloadOp& op : stream) {
      client::QueryRequest request;
      request.release = op.release;
      request.queries = op.queries;
      auto answer = client.Query(request);
      ASSERT_TRUE(answer.ok()) << answer.status();
      const FlatGroupIndex& raw_index = raw_indexes.at(op.release);
      const auto& schema = *raw_index.schema();
      for (size_t i = 0; i < op.queries.size(); ++i) {
        auto pred = Predicate::FromBindings(schema, op.queries[i].where);
        auto sa = schema.sensitive().domain.GetCode(op.queries[i].sa);
        ASSERT_TRUE(pred.ok() && sa.ok());
        CountQuery q(schema.num_attributes());
        q.na_predicate = *std::move(pred);
        q.sa_code = *sa;
        const uint64_t true_count = TrueAnswer(q, raw_index);
        const client::AnswerRow& row = answer->answers[i];
        if (row.matched_size == 0) {
          EXPECT_EQ(true_count, 0u);
          continue;
        }
        const double tol = Tolerance(row.matched_size, total_queries,
                                     retention.at(op.release));
        EXPECT_LE(std::abs(row.estimate - double(true_count)), tol)
            << op.release << " query " << i;
      }
    }
  }
}

}  // namespace
}  // namespace recpriv::workload
