// Concurrency stress for the TCP serving front end (serve/server.h): many
// client threads querying over loopback sockets while a writer thread
// republishes and drops releases through the shared engine's in-process
// client. Asserts the paper's serving contract under churn — a pinned
// epoch answers bit-identically no matter how often the release is
// republished over it — plus admission control at max_connections, clean
// drain on Stop() with clients still connected, and transport-counter
// consistency after the dust settles.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/in_process_client.h"
#include "client/tcp_transport.h"
#include "net/line_channel.h"
#include "net/socket.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"
#include "serve/server.h"
#include "testing_util.h"

namespace recpriv::serve {
namespace {

using recpriv::analysis::ReleaseBundle;
using recpriv::client::BatchAnswer;
using recpriv::client::QueryRequest;
using recpriv::client::QuerySpec;
using recpriv::testing::AnswerFingerprint;
using recpriv::testing::DemoBundle;

/// The shared demo release at test scale; different seeds give different
/// SPS noise, so republishing with a new seed genuinely changes the
/// served counts.
ReleaseBundle MakeBundle(uint64_t seed) { return DemoBundle(seed); }

QueryRequest PinnedRequest() {
  QueryRequest request;
  request.release = "pinned";
  request.epoch = 1;
  request.queries.push_back(QuerySpec{{{"Job", "eng"}}, "flu"});
  request.queries.push_back(QuerySpec{{{"Job", "law"}, {"City", "south"}},
                                      "hiv"});
  request.queries.push_back(QuerySpec{{}, "bc"});
  return request;
}

struct Harness {
  std::shared_ptr<ReleaseStore> store;
  std::shared_ptr<QueryEngine> engine;
  std::unique_ptr<Server> server;

  static Harness Make(size_t max_connections = 32) {
    Harness h;
    // A wide retention window keeps epoch 1 pinnable across every
    // republish the writer thread performs.
    h.store = std::make_shared<ReleaseStore>(/*retained_epochs=*/64);
    QueryEngineOptions options;
    options.num_threads = 2;
    h.engine = std::make_shared<QueryEngine>(h.store, options);
    ServerOptions server_options;
    server_options.max_connections = max_connections;
    auto server = Server::Start(h.engine, server_options);
    EXPECT_TRUE(server.ok()) << server.status();
    h.server = std::move(*server);
    return h;
  }
};

TEST(ServeStressTest, PinnedAnswersBitIdenticalAcrossConcurrentRepublish) {
  Harness h = Harness::Make();
  client::InProcessClient admin(h.engine);
  ASSERT_TRUE(admin.PublishBundle("pinned", MakeBundle(1)).ok());
  ASSERT_TRUE(admin.PublishBundle("churn", MakeBundle(2)).ok());

  const QueryRequest pinned = PinnedRequest();
  auto reference = admin.Query(pinned);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_EQ(reference->epoch, 1u);
  const std::string reference_fp = AnswerFingerprint(*reference);

  constexpr size_t kClients = 4;
  constexpr size_t kIterations = 25;
  constexpr size_t kRepublishes = 15;

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> hard_failures{0};
  std::atomic<size_t> pinned_queries{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = client::ConnectTcp("127.0.0.1", h.server->port());
      if (!client.ok()) {
        hard_failures.fetch_add(1);
        return;
      }
      QueryRequest churn_request;
      churn_request.release = "churn";
      churn_request.queries.push_back(QuerySpec{{{"Job", "eng"}}, "flu"});
      for (size_t i = 0; i < kIterations; ++i) {
        auto batch = (*client)->Query(pinned);
        if (!batch.ok()) {
          hard_failures.fetch_add(1);
          return;
        }
        pinned_queries.fetch_add(1);
        if (AnswerFingerprint(*batch) != reference_fp) {
          mismatches.fetch_add(1);
        }
        // The churn release may be dropped at any moment: NOT_FOUND is
        // legal, a transport failure or crash is not.
        auto churn = (*client)->Query(churn_request);
        if (!churn.ok() && churn.status().code() != StatusCode::kNotFound) {
          hard_failures.fetch_add(1);
          return;
        }
        if ((c + i) % 5 == 0) {
          if (!(*client)->List().ok()) {
            hard_failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }

  std::thread writer([&] {
    for (size_t r = 0; r < kRepublishes; ++r) {
      ASSERT_TRUE(admin.PublishBundle("pinned", MakeBundle(100 + r)).ok());
      if (r % 2 == 0) {
        (void)admin.Drop("churn");
      } else {
        ASSERT_TRUE(admin.PublishBundle("churn", MakeBundle(200 + r)).ok());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  for (std::thread& t : clients) t.join();
  writer.join();

  EXPECT_EQ(hard_failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(pinned_queries.load(), kClients * kIterations);

  // The writer really did move the current epoch past the pin.
  auto current = admin.Query(QueryRequest{"pinned", std::nullopt,
                                          PinnedRequest().queries});
  ASSERT_TRUE(current.ok()) << current.status();
  EXPECT_EQ(current->epoch, 1u + kRepublishes);

  // And the pinned snapshot still answers identically after the storm.
  auto after = admin.Query(pinned);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(AnswerFingerprint(*after), reference_fp);

  h.server->Stop();
  const client::TransportStats metrics = h.server->Metrics();
  EXPECT_EQ(metrics.connections_active, 0u);
  EXPECT_GE(metrics.connections_accepted, kClients);
  EXPECT_GE(metrics.requests, kClients * kIterations * 2);
  EXPECT_GE(metrics.epoch_pins, kClients * kIterations);
  EXPECT_EQ(metrics.sessions_v2, metrics.connections_accepted);
}

TEST(ServeStressTest, StopDrainsWithClientsStillConnected) {
  Harness h = Harness::Make();
  client::InProcessClient admin(h.engine);
  ASSERT_TRUE(admin.PublishBundle("pinned", MakeBundle(1)).ok());

  // Three live sessions, each having completed a round trip, then left
  // connected and idle.
  std::vector<std::unique_ptr<client::LineProtocolClient>> clients;
  for (int i = 0; i < 3; ++i) {
    auto client = client::ConnectTcp("127.0.0.1", h.server->port());
    ASSERT_TRUE(client.ok()) << client.status();
    ASSERT_TRUE((*client)->List().ok());
    clients.push_back(std::move(*client));
  }

  const auto start = std::chrono::steady_clock::now();
  h.server->Stop();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Drain must not wait on the idle clients.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_EQ(h.server->Metrics().connections_active, 0u);

  // The sessions are gone: the next round trip fails instead of hanging.
  for (auto& client : clients) {
    EXPECT_FALSE(client->List().ok());
  }
}

TEST(ServeStressTest, OverCapacityConnectionGetsStructuredUnavailable) {
  Harness h = Harness::Make(/*max_connections=*/2);
  client::InProcessClient admin(h.engine);
  ASSERT_TRUE(admin.PublishBundle("pinned", MakeBundle(1)).ok());

  auto first = client::ConnectTcp("127.0.0.1", h.server->port());
  auto second = client::ConnectTcp("127.0.0.1", h.server->port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Round trips prove both sessions are admitted, not just queued.
  ASSERT_TRUE((*first)->List().ok());
  ASSERT_TRUE((*second)->List().ok());

  auto fd = net::ConnectTcp("127.0.0.1", h.server->port(), 2000);
  ASSERT_TRUE(fd.ok()) << fd.status();
  net::LineChannel channel(std::move(*fd));
  auto read = channel.ReadLine(5000);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->event, net::ReadEvent::kLine);
  EXPECT_NE(read->line.find("UNAVAILABLE"), std::string::npos) << read->line;
  auto eof = channel.ReadLine(5000);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(eof->event, net::ReadEvent::kEof);

  EXPECT_EQ(h.server->Metrics().connections_rejected, 1u);

  // Capacity frees up when an admitted session leaves.
  first->reset();
  bool admitted = false;
  for (int attempt = 0; attempt < 50 && !admitted; ++attempt) {
    auto retry = client::ConnectTcp("127.0.0.1", h.server->port());
    admitted = retry.ok() && (*retry)->List().ok();
    if (!admitted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(admitted);
}

TEST(ServeStressTest, TcpBackendMatchesInProcessBackend) {
  Harness h = Harness::Make();
  client::InProcessClient in_process(h.engine);
  ASSERT_TRUE(in_process.PublishBundle("pinned", MakeBundle(1)).ok());

  auto tcp = client::ConnectTcp("127.0.0.1", h.server->port());
  ASSERT_TRUE(tcp.ok()) << tcp.status();

  const QueryRequest request = PinnedRequest();
  auto via_tcp = (*tcp)->Query(request);
  auto via_memory = in_process.Query(request);
  ASSERT_TRUE(via_tcp.ok()) << via_tcp.status();
  ASSERT_TRUE(via_memory.ok()) << via_memory.status();
  EXPECT_EQ(AnswerFingerprint(*via_tcp), AnswerFingerprint(*via_memory));

  // Error taxonomy crosses the socket intact.
  QueryRequest missing;
  missing.release = "ghost";
  missing.queries.push_back(QuerySpec{{}, "flu"});
  auto tcp_error = (*tcp)->Query(missing);
  auto memory_error = in_process.Query(missing);
  ASSERT_FALSE(tcp_error.ok());
  ASSERT_FALSE(memory_error.ok());
  EXPECT_EQ(tcp_error.status().code(), memory_error.status().code());
}

}  // namespace
}  // namespace recpriv::serve
