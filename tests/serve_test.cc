// Tests for the release-serving subsystem: thread pool, canonical query
// encoding, LRU answer cache, ReleaseStore copy-on-publish snapshots, the
// parallel batched QueryEngine (both evaluation strategies), cache
// invalidation on republish, a concurrent reader/republisher stress test,
// and the line-delimited JSON wire protocol.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <thread>

#include "common/thread_pool.h"
#include "core/sps.h"
#include "core/streaming.h"
#include "datagen/simple.h"
#include "perturb/mle.h"
#include "query/canonical.h"
#include "query/evaluation.h"
#include "query/query_pool.h"
#include "serve/answer_cache.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"
#include "serve/wire.h"

namespace recpriv::serve {
namespace {

using recpriv::analysis::ReleaseBundle;
using recpriv::core::PrivacyParams;
using recpriv::datagen::GroupSpec;
using recpriv::datagen::SimpleDatasetSpec;
using recpriv::query::CountQuery;
using recpriv::table::Table;

// --- fixtures --------------------------------------------------------------

SimpleDatasetSpec MakeSpec() {
  SimpleDatasetSpec spec;
  spec.public_attributes = {"Job", "City"};
  spec.sensitive_attribute = "Disease";
  spec.sa_domain = {"flu", "hiv", "bc"};
  spec.groups.push_back(GroupSpec{{"eng", "north"}, 4000, {70, 20, 10}});
  spec.groups.push_back(GroupSpec{{"eng", "south"}, 3000, {70, 20, 10}});
  spec.groups.push_back(GroupSpec{{"law", "north"}, 2000, {20, 30, 50}});
  spec.groups.push_back(GroupSpec{{"law", "south"}, 1000, {20, 30, 50}});
  return spec;
}

PrivacyParams Params(size_t m) {
  PrivacyParams p;
  p.lambda = 0.3;
  p.delta = 0.3;
  p.retention_p = 0.5;
  p.domain_m = m;
  return p;
}

/// An SPS release bundle of the simple dataset, deterministic in `seed`.
ReleaseBundle MakeBundle(uint64_t seed = 2015) {
  Table raw = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  Rng rng(seed);
  auto sps = *recpriv::core::SpsPerturbTable(Params(3), raw, rng);
  return ReleaseBundle{std::move(sps.table), Params(3), "Disease", {}};
}

/// A store+engine pair serving MakeBundle() under "simple".
struct Served {
  std::shared_ptr<ReleaseStore> store;
  std::unique_ptr<QueryEngine> engine;
};

Served MakeServed(QueryEngineOptions options = {}) {
  Served s;
  s.store = std::make_shared<ReleaseStore>();
  EXPECT_TRUE(s.store->Publish("simple", MakeBundle()).ok());
  s.engine = std::make_unique<QueryEngine>(s.store, options);
  return s;
}

/// All (d<=2, sa) conjunctive queries over the simple schema: 3*3 NA
/// choices (eng, law, *) x (north, south, *) x 3 SA values = 27 queries.
std::vector<CountQuery> AllQueries(const Table& t) {
  std::vector<CountQuery> out;
  const auto& schema = *t.schema();
  for (int job = -1; job < 2; ++job) {
    for (int city = -1; city < 2; ++city) {
      for (uint32_t sa = 0; sa < 3; ++sa) {
        CountQuery q(schema.num_attributes());
        if (job >= 0) q.na_predicate.Bind(0, uint32_t(job));
        if (city >= 0) q.na_predicate.Bind(1, uint32_t(city));
        q.sa_code = sa;
        q.dimensionality = q.na_predicate.num_bound();
        out.push_back(q);
      }
    }
  }
  return out;
}

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(0, touched.size(), 7, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) touched[i]++;
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRunsInlineOnTinyRanges) {
  ThreadPool pool(4);
  size_t calls = 0;
  pool.ParallelFor(10, 15, 100, [&](size_t lo, size_t hi) {
    ++calls;  // single inline chunk: no data race possible
    EXPECT_EQ(lo, 10u);
    EXPECT_EQ(hi, 15u);
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPoolTest, SubmitAndWaitDrainsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done++; });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  pool.ParallelFor(5, 5, 1, [](size_t, size_t) { FAIL(); });
}

TEST(ThreadPoolTest, GrainForBalancesChunks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.GrainFor(0), 1u);          // min_grain floor
  EXPECT_EQ(pool.GrainFor(16000), 1000u);   // 4 chunks per worker
  EXPECT_EQ(pool.GrainFor(10, 64), 64u);    // explicit floor wins
}

// --- canonical keys --------------------------------------------------------

TEST(CanonicalTest, BindOrderDoesNotChangeKey) {
  CountQuery a(5);
  a.na_predicate.Bind(3, 7);
  a.na_predicate.Bind(1, 2);
  a.sa_code = 4;
  CountQuery b(5);
  b.na_predicate.Bind(1, 2);
  b.na_predicate.Bind(3, 7);
  b.sa_code = 4;
  EXPECT_EQ(recpriv::query::CanonicalKey(a), recpriv::query::CanonicalKey(b));
  EXPECT_EQ(recpriv::query::CanonicalHash(a),
            recpriv::query::CanonicalHash(b));
}

TEST(CanonicalTest, DistinctQueriesGetDistinctKeys) {
  CountQuery base(3);
  base.na_predicate.Bind(0, 1);
  base.sa_code = 0;

  CountQuery other_sa = base;
  other_sa.sa_code = 1;
  CountQuery other_code = base;
  other_code.na_predicate.Bind(0, 2);
  CountQuery other_attr = base;
  other_attr.na_predicate.Unbind(0);
  other_attr.na_predicate.Bind(1, 1);

  const std::string key = recpriv::query::CanonicalKey(base);
  EXPECT_NE(key, recpriv::query::CanonicalKey(other_sa));
  EXPECT_NE(key, recpriv::query::CanonicalKey(other_code));
  EXPECT_NE(key, recpriv::query::CanonicalKey(other_attr));
}

TEST(CanonicalTest, PredicateKeyOmitsSa) {
  CountQuery a(3);
  a.na_predicate.Bind(0, 1);
  a.sa_code = 0;
  CountQuery b = a;
  b.sa_code = 2;
  EXPECT_EQ(recpriv::query::CanonicalPredicateKey(a.na_predicate),
            recpriv::query::CanonicalPredicateKey(b.na_predicate));
  EXPECT_NE(recpriv::query::CanonicalKey(a), recpriv::query::CanonicalKey(b));
}

// --- AnswerCache -----------------------------------------------------------

TEST(AnswerCacheTest, InsertLookupRoundTrip) {
  AnswerCache cache(4);
  cache.Insert("k1", CachedAnswer{10, 100, 17.5});
  CachedAnswer out;
  ASSERT_TRUE(cache.Lookup("k1", &out));
  EXPECT_EQ(out.observed, 10u);
  EXPECT_EQ(out.matched_size, 100u);
  EXPECT_DOUBLE_EQ(out.estimate, 17.5);
  EXPECT_FALSE(cache.Lookup("k2", &out));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(AnswerCacheTest, EvictsLeastRecentlyUsed) {
  AnswerCache cache(2);
  cache.Insert("a", {});
  cache.Insert("b", {});
  CachedAnswer out;
  ASSERT_TRUE(cache.Lookup("a", &out));  // promote a; b is now LRU
  cache.Insert("c", {});                 // evicts b
  EXPECT_TRUE(cache.Lookup("a", &out));
  EXPECT_FALSE(cache.Lookup("b", &out));
  EXPECT_TRUE(cache.Lookup("c", &out));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(AnswerCacheTest, ZeroCapacityDisables) {
  AnswerCache cache(0);
  cache.Insert("a", {});
  CachedAnswer out;
  EXPECT_FALSE(cache.Lookup("a", &out));
  EXPECT_EQ(cache.size(), 0u);
}

// --- ReleaseStore ----------------------------------------------------------

TEST(ReleaseStoreTest, PublishGetAndList) {
  ReleaseStore store;
  EXPECT_FALSE(store.Get("simple").ok());
  auto snap = store.Publish("simple", MakeBundle());
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ((*snap)->epoch, 1u);
  // The SPS release of the 10,000-record input (sampling can shift |D*_2|
  // slightly).
  EXPECT_NEAR(double((*snap)->index.num_records()), 10000.0, 1000.0);

  auto got = store.Get("simple");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->get(), snap->get());

  auto list = store.List();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].name, "simple");
  EXPECT_EQ(list[0].epoch, 1u);
  EXPECT_EQ(list[0].num_groups, 4u);
}

TEST(ReleaseStoreTest, RepublishBumpsEpochAndKeepsOldSnapshotAlive) {
  ReleaseStore store;
  auto first = *store.Publish("simple", MakeBundle(1));
  auto second = *store.Publish("simple", MakeBundle(2));
  EXPECT_EQ(first->epoch, 1u);
  EXPECT_EQ(second->epoch, 2u);
  EXPECT_EQ(store.Get("simple")->get(), second.get());
  // Copy-on-publish: the old snapshot is untouched and still queryable.
  EXPECT_NEAR(double(first->index.num_records()), 10000.0, 1000.0);
  EXPECT_EQ(first->index.num_groups(), 4u);
}

TEST(ReleaseStoreTest, RejectsEmptyNameAndBadBundle) {
  ReleaseStore store;
  EXPECT_FALSE(store.Publish("", MakeBundle()).ok());
  ReleaseBundle bad = MakeBundle();
  bad.params.domain_m = 7;  // schema has 3 SA values
  EXPECT_FALSE(store.Publish("simple", std::move(bad)).ok());
}

TEST(ReleaseStoreTest, PublishFromStreamingRepublishes) {
  Table raw = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  auto publisher =
      *recpriv::core::StreamingPublisher::Make(raw.schema(), Params(3));
  std::vector<uint32_t> row(raw.num_columns());
  for (size_t r = 0; r < raw.num_rows(); ++r) {
    for (size_t c = 0; c < raw.num_columns(); ++c) row[c] = raw.at(r, c);
    ASSERT_TRUE(publisher.Insert(row).ok());
  }
  ReleaseStore store;
  Rng rng(7);
  auto snap = store.PublishFromStreaming("stream", publisher, rng);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ((*snap)->epoch, 1u);
  EXPECT_GT((*snap)->index.num_records(), 0u);
  EXPECT_EQ((*snap)->bundle.sensitive_attribute, "Disease");

  auto again = store.PublishFromStreaming("stream", publisher, rng);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->epoch, 2u);
}

// --- QueryEngine -----------------------------------------------------------

TEST(QueryEngineTest, BatchMatchesSingleQueryReference) {
  for (EvalStrategy strategy :
       {EvalStrategy::kPostings, EvalStrategy::kGroupShard}) {
    QueryEngineOptions options;
    options.num_threads = 4;
    options.strategy = strategy;
    options.cache_capacity = 0;  // isolate the evaluation paths
    Served s = MakeServed(options);
    auto snap = *s.store->Get("simple");

    std::vector<CountQuery> batch = AllQueries(snap->bundle.data);
    auto result = s.engine->AnswerBatch("simple", batch);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->answers.size(), batch.size());
    EXPECT_EQ(result->strategy_used, strategy);
    for (size_t i = 0; i < batch.size(); ++i) {
      const Answer ref = EvaluateUncached(*snap, batch[i]);
      EXPECT_EQ(result->answers[i].observed, ref.observed) << "query " << i;
      EXPECT_EQ(result->answers[i].matched_size, ref.matched_size);
      EXPECT_DOUBLE_EQ(result->answers[i].estimate, ref.estimate);
      EXPECT_FALSE(result->answers[i].cached);
    }
  }
}

TEST(QueryEngineTest, ObservedCountsAreExactForUnboundQuery) {
  Served s = MakeServed();
  auto snap = *s.store->Get("simple");
  CountQuery q(3);  // no NA conditions: matches the whole release
  q.sa_code = 0;
  auto a = s.engine->AnswerOne("simple", q);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->matched_size, snap->index.num_records());
  EXPECT_EQ(a->observed, snap->bundle.data.SaHistogram()[0]);
}

TEST(QueryEngineTest, SecondBatchIsFullyCached) {
  QueryEngineOptions options;
  options.num_threads = 2;
  Served s = MakeServed(options);
  std::vector<CountQuery> batch =
      AllQueries((*s.store->Get("simple"))->bundle.data);

  auto cold = *s.engine->AnswerBatch("simple", batch);
  EXPECT_EQ(cold.cache_hits, 0u);
  auto warm = *s.engine->AnswerBatch("simple", batch);
  EXPECT_EQ(warm.cache_hits, batch.size());
  EXPECT_EQ(warm.cache_misses, 0u);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(warm.answers[i].cached);
    EXPECT_EQ(warm.answers[i].observed, cold.answers[i].observed);
    EXPECT_DOUBLE_EQ(warm.answers[i].estimate, cold.answers[i].estimate);
  }
}

TEST(QueryEngineTest, DuplicateQueriesInOneBatchShareEvaluation) {
  Served s = MakeServed();
  CountQuery q(3);
  q.na_predicate.Bind(0, 0);
  q.sa_code = 1;
  std::vector<CountQuery> batch{q, q, q};
  auto result = *s.engine->AnswerBatch("simple", batch);
  EXPECT_EQ(result.cache_misses, 3u);  // none served from the cache...
  for (size_t i = 1; i < batch.size(); ++i) {  // ...but all agree
    EXPECT_EQ(result.answers[i].observed, result.answers[0].observed);
    EXPECT_DOUBLE_EQ(result.answers[i].estimate, result.answers[0].estimate);
  }
}

TEST(QueryEngineTest, RepublishInvalidatesCacheViaEpoch) {
  Served s = MakeServed();
  std::vector<CountQuery> batch =
      AllQueries((*s.store->Get("simple"))->bundle.data);

  auto cold = *s.engine->AnswerBatch("simple", batch);
  EXPECT_EQ(cold.epoch, 1u);
  ASSERT_TRUE(s.store->Publish("simple", MakeBundle(99)).ok());

  // New epoch: nothing may be served from the stale epoch's entries.
  auto after = *s.engine->AnswerBatch("simple", batch);
  EXPECT_EQ(after.epoch, 2u);
  EXPECT_EQ(after.cache_hits, 0u);
  // The new epoch's answers come from the new (differently-seeded) release.
  auto snap = *s.store->Get("simple");
  for (size_t i = 0; i < batch.size(); ++i) {
    const Answer ref = EvaluateUncached(*snap, batch[i]);
    EXPECT_EQ(after.answers[i].observed, ref.observed);
  }
}

// The pinned-snapshot overload keeps serving the epoch the caller resolved
// its queries against, even after a republish (the wire front end depends
// on this to avoid evaluating old codes on a new dictionary).
TEST(QueryEngineTest, PinnedSnapshotSurvivesRepublish) {
  Served s = MakeServed();
  auto pinned = *s.store->Get("simple");
  std::vector<CountQuery> batch = AllQueries(pinned->bundle.data);
  ASSERT_TRUE(s.store->Publish("simple", MakeBundle(77)).ok());

  auto result = *s.engine->AnswerBatch("simple", pinned, batch);
  EXPECT_EQ(result.epoch, 1u);  // still the pinned epoch, not 2
  for (size_t i = 0; i < batch.size(); ++i) {
    const Answer ref = EvaluateUncached(*pinned, batch[i]);
    EXPECT_EQ(result.answers[i].observed, ref.observed);
  }
  EXPECT_FALSE(s.engine->AnswerBatch("simple", nullptr, batch).ok());
}

TEST(QueryEngineTest, ValidatesQueriesAgainstReleaseSchema) {
  Served s = MakeServed();
  EXPECT_FALSE(s.engine->AnswerBatch("missing", {}).ok());

  CountQuery bad_arity(5);
  bad_arity.sa_code = 0;
  EXPECT_FALSE(s.engine->AnswerOne("simple", bad_arity).ok());

  CountQuery bad_sa(3);
  bad_sa.sa_code = 3;  // m = 3: codes 0..2
  EXPECT_FALSE(s.engine->AnswerOne("simple", bad_sa).ok());

  CountQuery binds_sa(3);
  binds_sa.na_predicate.Bind(2, 0);  // attribute 2 is the SA
  EXPECT_FALSE(s.engine->AnswerOne("simple", binds_sa).ok());
}

// Readers keep answering (from some consistent epoch) while a republisher
// swaps snapshots underneath them: every batch must be internally
// consistent with the snapshot of the epoch it reports.
TEST(QueryEngineTest, ConcurrentReadersAndRepublisherStayConsistent) {
  QueryEngineOptions options;
  options.num_threads = 2;
  Served s = MakeServed(options);
  std::vector<CountQuery> batch =
      AllQueries((*s.store->Get("simple"))->bundle.data);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto result = s.engine->AnswerBatch("simple", batch);
        if (!result.ok()) {
          failures++;
          continue;
        }
        // Every answer's matched size must be bounded by the release size
        // of SOME epoch — all our releases are ~10,000 records, so a torn
        // read mixing epochs would show up as a wild value.
        for (const Answer& a : result->answers) {
          if (a.matched_size > 12000u) failures++;
        }
      }
    });
  }
  std::thread republisher([&] {
    for (uint64_t i = 0; i < 20; ++i) {
      if (!s.store->Publish("simple", MakeBundle(100 + i)).ok()) failures++;
    }
    stop.store(true);
  });
  republisher.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*s.store->Get("simple"))->epoch, 21u);
}

// --- consistency with the offline evaluation path --------------------------

// The engine's estimates against an SPS release must agree with what the
// offline EvaluateRelativeError pipeline computes from the same observed
// histograms: both implement est = |S*| F' (Lemma 2(ii)).
TEST(QueryEngineTest, AgreesWithOfflineEvaluationPipeline) {
  Table raw = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  auto raw_index = recpriv::table::GroupIndex::Build(raw);

  Served s = MakeServed();
  auto snap = *s.store->Get("simple");
  std::vector<CountQuery> batch = AllQueries(raw);
  auto result = *s.engine->AnswerBatch("simple", batch);

  const recpriv::perturb::UniformPerturbation up{0.5, 3};
  for (size_t i = 0; i < batch.size(); ++i) {
    // Recompute est from the snapshot's group histograms by hand.
    uint64_t observed = 0;
    uint64_t matched = 0;
    for (uint32_t gi : snap->index.MatchingGroups(batch[i].na_predicate)) {
      observed += snap->index.sa_count(gi, batch[i].sa_code);
      matched += snap->index.group_size(gi);
    }
    EXPECT_EQ(result.answers[i].observed, observed);
    EXPECT_DOUBLE_EQ(result.answers[i].estimate,
                     recpriv::perturb::MleCount(up, observed, matched));
  }
}

// --- wire protocol ---------------------------------------------------------

TEST(WireTest, ListQueryStatsRoundTrip) {
  Served s = MakeServed();

  JsonValue list = *JsonValue::Parse(
      HandleRequestLine(R"({"op":"list"})", *s.engine));
  EXPECT_TRUE((*list.Get("ok"))->AsBool().ValueOrDie());
  ASSERT_EQ((*list.Get("releases"))->size(), 1u);

  const std::string query_line =
      R"({"op":"query","release":"simple","queries":[)"
      R"({"where":{"Job":"eng"},"sa":"flu"},)"
      R"({"sa":"bc"}]})";
  JsonValue response = *JsonValue::Parse(
      HandleRequestLine(query_line, *s.engine));
  ASSERT_TRUE((*response.Get("ok"))->AsBool().ValueOrDie());
  EXPECT_EQ((*response.Get("epoch"))->AsInt().ValueOrDie(), 1);
  const JsonValue& answers = **response.Get("answers");
  ASSERT_EQ(answers.size(), 2u);

  // First answer must equal the engine's own answer for the same query.
  auto snap = *s.store->Get("simple");
  CountQuery q(3);
  q.na_predicate.Bind(0, 0);  // Job=eng has code 0 (first group)
  q.sa_code = 0;              // flu
  const Answer ref = EvaluateUncached(*snap, q);
  const JsonValue& first = **answers.At(0);
  EXPECT_EQ((*first.Get("observed"))->AsInt().ValueOrDie(),
            int64_t(ref.observed));
  EXPECT_DOUBLE_EQ((*first.Get("estimate"))->AsDouble().ValueOrDie(),
                   ref.estimate);

  JsonValue stats = *JsonValue::Parse(
      HandleRequestLine(R"({"op":"stats"})", *s.engine));
  EXPECT_TRUE((*stats.Get("ok"))->AsBool().ValueOrDie());
  EXPECT_EQ((*(*stats.Get("cache"))->Get("misses"))->AsInt().ValueOrDie(), 2);
}

TEST(WireTest, ErrorsAreResponsesNotCrashes) {
  Served s = MakeServed();
  for (const char* line : {
           "not json at all",
           R"({"no_op":1})",
           R"({"op":"frobnicate"})",
           R"({"op":"query","release":"nope","queries":[]})",
           R"({"op":"query","release":"simple","queries":[{"sa":"typo"}]})",
           R"({"op":"query","release":"simple","queries":[)"
           R"({"where":{"Nope":"x"},"sa":"flu"}]})",
           R"({"op":"query","release":"simple","queries":[)"
           R"({"where":{"Disease":"flu"},"sa":"flu"}]})",
       }) {
    JsonValue response = *JsonValue::Parse(HandleRequestLine(line, *s.engine));
    EXPECT_FALSE((*response.Get("ok"))->AsBool().ValueOrDie()) << line;
    EXPECT_TRUE(response.Has("error")) << line;
  }
}

TEST(WireTest, ServeLinesSkipsBlanksAndCountsRequests) {
  Served s = MakeServed();
  std::istringstream in("{\"op\":\"list\"}\n\n   \n{\"op\":\"stats\"}\n");
  std::ostringstream out;
  EXPECT_EQ(ServeLines(in, out, *s.engine), 2u);
  // Two lines out, both parseable objects.
  std::istringstream lines(out.str());
  std::string line;
  size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonValue::Parse(line).ok());
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace recpriv::serve
