// Tests for the Markov / Chebyshev bounds and the bound comparison used to
// justify the Chernoff choice (paper §4.2).

#include "stats/tail_bounds.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "stats/chernoff.h"

namespace recpriv::stats {
namespace {

TEST(MarkovTest, ClosedForm) {
  EXPECT_DOUBLE_EQ(MarkovUpperTail(1.0), 0.5);
  EXPECT_DOUBLE_EQ(MarkovUpperTail(0.25), 0.8);
}

TEST(ChebyshevTest, ClosedForm) {
  EXPECT_DOUBLE_EQ(ChebyshevTail(0.5, 100.0), 1.0 / 25.0);
  EXPECT_DOUBLE_EQ(ChebyshevTailWithVariance(0.5, 100.0, 25.0),
                   25.0 / 2500.0);
}

TEST(TailBoundsTest, ChernoffDominatesForLargeMu) {
  // The whole point: for realistic group sizes the Chernoff bound is far
  // below Markov and Chebyshev.
  for (double mu : {100.0, 500.0, 5000.0}) {
    for (double omega : {0.2, 0.5, 1.0}) {
      auto c = CompareTailBounds(omega, mu);
      EXPECT_LT(c.chernoff_upper, c.markov) << "mu=" << mu << " w=" << omega;
      EXPECT_LT(c.chernoff_upper, c.chebyshev)
          << "mu=" << mu << " w=" << omega;
    }
  }
}

TEST(TailBoundsTest, ChebyshevCanBeatChernoffForTinyMu) {
  // For very small mu the exponential bound is weak; Chebyshev's 1/(w^2 mu)
  // can cross it — documenting why the comparison is interesting at all.
  auto c = CompareTailBounds(3.0, 0.5);
  EXPECT_LE(c.chebyshev, 1.0);
  EXPECT_LE(c.chernoff_upper, 1.0);
}

TEST(TailBoundsTest, AllBoundsClampedToOne) {
  auto c = CompareTailBounds(0.01, 0.1);
  EXPECT_LE(c.markov, 1.0);
  EXPECT_LE(c.chebyshev, 1.0);
  EXPECT_LE(c.chernoff_upper, 1.0);
  EXPECT_LE(c.chernoff_lower, 1.0);
}

TEST(TailBoundsTest, LowerTailOnlyWithinOmegaOne) {
  auto within = CompareTailBounds(0.9, 50.0);
  EXPECT_LT(within.chernoff_lower, 1.0);
  auto beyond = CompareTailBounds(1.5, 50.0);
  EXPECT_EQ(beyond.chernoff_lower, 1.0);
}

TEST(TailBoundsTest, BoundsHoldEmpiricallyForBinomial) {
  Rng rng(9);
  const uint64_t n = 300;
  const double p = 0.3;
  const double mu = n * p;
  const double omega = 0.4;
  const int reps = 20000;
  int upper = 0;
  for (int i = 0; i < reps; ++i) {
    double x = double(SampleBinomial(rng, n, p));
    upper += ((x - mu) / mu > omega);
  }
  const double empirical = upper / double(reps);
  EXPECT_LT(empirical, MarkovUpperTail(omega));
  EXPECT_LT(empirical, ChebyshevTail(omega, mu));
  EXPECT_LT(empirical, ChernoffUpperTail(omega, mu));
}

TEST(HypergeometricTest, MeanMatches) {
  Rng rng(11);
  const uint64_t population = 1000, successes = 300, draws = 100;
  const int reps = 20000;
  double sum = 0.0;
  for (int i = 0; i < reps; ++i) {
    uint64_t x = SampleHypergeometric(rng, population, successes, draws);
    EXPECT_LE(x, draws);
    EXPECT_LE(x, successes);
    sum += double(x);
  }
  // E[X] = draws * successes / population = 30.
  EXPECT_NEAR(sum / reps, 30.0, 0.3);
}

TEST(HypergeometricTest, DegenerateCases) {
  Rng rng(1);
  EXPECT_EQ(SampleHypergeometric(rng, 10, 0, 5), 0u);
  EXPECT_EQ(SampleHypergeometric(rng, 10, 10, 5), 5u);
  EXPECT_EQ(SampleHypergeometric(rng, 10, 4, 0), 0u);
  EXPECT_EQ(SampleHypergeometric(rng, 10, 4, 10), 4u);  // exhaustive draw
}

TEST(HypergeometricTest, VarianceBelowBinomial) {
  // Without replacement shrinks variance by the finite-population factor.
  Rng rng(13);
  const uint64_t population = 200, successes = 100, draws = 100;
  const int reps = 30000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < reps; ++i) {
    double x = double(SampleHypergeometric(rng, population, successes, draws));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / reps;
  const double var = sum_sq / reps - mean * mean;
  const double binom_var = draws * 0.5 * 0.5;  // 25
  const double fpc = double(population - draws) / double(population - 1);
  EXPECT_NEAR(var, binom_var * fpc, 1.5);
  EXPECT_LT(var, binom_var);
}

}  // namespace
}  // namespace recpriv::stats
