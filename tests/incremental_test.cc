// Tests for the incremental republish pipeline: two-level run merge
// (FlatGroupIndex::MergeRuns), the StreamingPublisher delta path, the
// store's PublishIncremental, and the republish-path regressions this PR
// fixes (digest-keyed answer cache, RNG-clean insert rejection, released
// rows stable across publishes).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <numeric>
#include <vector>

#include "analysis/release.h"
#include "core/streaming.h"
#include "query/count_query.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"
#include "store/snapshot_reader.h"
#include "store/snapshot_writer.h"
#include "table/flat_group_index.h"
#include "workload/synthetic.h"

namespace recpriv::core {
namespace {

namespace fs = std::filesystem;

using recpriv::table::Attribute;
using recpriv::table::Dictionary;
using recpriv::table::FlatGroupIndex;
using recpriv::table::Schema;
using recpriv::table::SchemaPtr;
using recpriv::table::Table;

SchemaPtr MakeSchema(size_t pub_domain = 4) {
  std::vector<std::string> vals;
  for (size_t v = 0; v < pub_domain; ++v) {
    vals.push_back("p" + std::to_string(v));
  }
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"A", *Dictionary::FromValues(vals)});
  attrs.push_back(
      Attribute{"S", *Dictionary::FromValues({"s0", "s1", "s2"})});
  return std::make_shared<Schema>(*Schema::Make(std::move(attrs), 1));
}

PrivacyParams Params() {
  PrivacyParams p;
  p.lambda = 0.3;
  p.delta = 0.3;
  p.retention_p = 0.5;
  p.domain_m = 3;
  return p;
}

template <typename A, typename B>
bool SpanEqual(A a, B b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

bool SameStorage(const FlatGroupIndex& a, const FlatGroupIndex& b) {
  const auto sa = a.storage();
  const auto sb = b.storage();
  return sa.packed == sb.packed && sa.num_groups == sb.num_groups &&
         sa.num_records == sb.num_records &&
         SpanEqual(sa.packed_keys, sb.packed_keys) &&
         SpanEqual(sa.na_codes, sb.na_codes) &&
         SpanEqual(sa.sa_counts, sb.sa_counts) &&
         SpanEqual(sa.row_offsets, sb.row_offsets) &&
         SpanEqual(sa.row_values, sb.row_values);
}

bool SameTable(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (!SpanEqual(a.column(c), b.column(c))) return false;
  }
  return true;
}

// ---------------------------------------------------------------- MergeRuns

TEST(MergeRunsTest, OverlayWinsInsertsAndTombstones) {
  const SchemaPtr schema = MakeSchema();
  // base:    key 0 -> (2,0,1)   key 1 -> (9,9,9)   key 3 -> (1,1,0)
  // overlay: key 1 -> (1,0,0) [replaces], key 2 -> (0,5,0) [inserts],
  //          key 3 -> (0,0,0) [tombstone]
  const std::vector<uint32_t> base_na = {0, 1, 3};
  const std::vector<uint64_t> base_counts = {2, 0, 1, 9, 9, 9, 1, 1, 0};
  const std::vector<uint32_t> over_na = {1, 2, 3};
  const std::vector<uint64_t> over_counts = {1, 0, 0, 0, 5, 0, 0, 0, 0};

  auto merged = FlatGroupIndex::MergeRuns(
      schema, FlatGroupIndex::GroupRun{base_na, base_counts, 3},
      FlatGroupIndex::GroupRun{over_na, over_counts, 3});
  ASSERT_TRUE(merged.ok()) << merged.status();
  const auto s = merged->storage();
  EXPECT_EQ(s.num_groups, 3u);
  EXPECT_EQ(s.num_records, 9u);  // 3 + 1 + 5
  EXPECT_TRUE(SpanEqual(s.na_codes, std::vector<uint32_t>{0, 1, 2}));
  EXPECT_TRUE(SpanEqual(
      s.sa_counts, std::vector<uint64_t>{2, 0, 1, 1, 0, 0, 0, 5, 0}));
  EXPECT_TRUE(SpanEqual(s.row_offsets, std::vector<uint64_t>{0, 3, 4, 9}));
  // Identity row permutation: the merged index describes the canonical
  // group-major table directly.
  std::vector<uint32_t> iota(9);
  std::iota(iota.begin(), iota.end(), 0);
  EXPECT_TRUE(SpanEqual(s.row_values, iota));
}

TEST(MergeRunsTest, RejectsMalformedRuns) {
  const SchemaPtr schema = MakeSchema();
  const std::vector<uint32_t> ok_na = {0, 1};
  const std::vector<uint64_t> ok_counts = {1, 0, 0, 0, 1, 0};
  const FlatGroupIndex::GroupRun ok{ok_na, ok_counts, 2};
  const FlatGroupIndex::GroupRun empty{{}, {}, 0};

  EXPECT_FALSE(FlatGroupIndex::MergeRuns(nullptr, ok, empty).ok());

  const std::vector<uint32_t> descending = {1, 0};
  EXPECT_FALSE(FlatGroupIndex::MergeRuns(
                   schema, FlatGroupIndex::GroupRun{descending, ok_counts, 2},
                   empty)
                   .ok());

  const std::vector<uint32_t> duplicate = {1, 1};
  EXPECT_FALSE(FlatGroupIndex::MergeRuns(
                   schema, FlatGroupIndex::GroupRun{duplicate, ok_counts, 2},
                   empty)
                   .ok());

  const std::vector<uint32_t> out_of_domain = {0, 9};
  EXPECT_FALSE(
      FlatGroupIndex::MergeRuns(
          schema, FlatGroupIndex::GroupRun{out_of_domain, ok_counts, 2}, empty)
          .ok());

  const std::vector<uint64_t> short_counts = {1, 0, 0};
  EXPECT_FALSE(FlatGroupIndex::MergeRuns(
                   schema, FlatGroupIndex::GroupRun{ok_na, short_counts, 2},
                   empty)
                   .ok());
}

TEST(MergeRunsTest, ForceWideMatchesPackedContent) {
  const SchemaPtr schema = MakeSchema();
  const std::vector<uint32_t> base_na = {0, 2};
  const std::vector<uint64_t> base_counts = {1, 0, 2, 0, 3, 0};
  const std::vector<uint32_t> over_na = {1};
  const std::vector<uint64_t> over_counts = {0, 0, 4};
  const FlatGroupIndex::GroupRun base{base_na, base_counts, 2};
  const FlatGroupIndex::GroupRun overlay{over_na, over_counts, 1};

  auto packed = FlatGroupIndex::MergeRuns(schema, base, overlay,
                                          FlatGroupIndex::KeyMode::kAuto);
  auto wide = FlatGroupIndex::MergeRuns(schema, base, overlay,
                                        FlatGroupIndex::KeyMode::kForceWide);
  ASSERT_TRUE(packed.ok());
  ASSERT_TRUE(wide.ok());
  EXPECT_TRUE(packed->storage().packed);
  EXPECT_FALSE(wide->storage().packed);
  EXPECT_TRUE(wide->storage().packed_keys.empty());
  EXPECT_TRUE(
      SpanEqual(packed->storage().na_codes, wide->storage().na_codes));
  EXPECT_TRUE(
      SpanEqual(packed->storage().sa_counts, wide->storage().sa_counts));
  EXPECT_TRUE(
      SpanEqual(packed->storage().row_offsets, wide->storage().row_offsets));
}

// --------------------------------------------------- incremental publishing

Result<StreamingPublisher> LoadedPublisher(size_t n) {
  RECPRIV_ASSIGN_OR_RETURN(StreamingPublisher pub,
                           StreamingPublisher::Make(MakeSchema(), Params()));
  for (size_t i = 0; i < n; ++i) {
    RECPRIV_RETURN_NOT_OK(pub.Insert(
        std::vector<uint32_t>{uint32_t(i % 4), uint32_t((i * 7) % 3)}));
  }
  return pub;
}

TEST(IncrementalPublishTest, FirstPublishTreatsWholeBufferAsDelta) {
  auto pub = *LoadedPublisher(500);
  EXPECT_EQ(pub.pending_delta_rows(), 500u);
  Rng rng(11);
  auto result = pub.PublishIncremental(rng);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.delta_rows, 500u);
  EXPECT_EQ(result->stats.groups_carried, 0u);  // no base yet
  EXPECT_EQ(result->stats.groups_touched, result->index.num_groups());
  EXPECT_EQ(pub.published_rows(), 500u);
  EXPECT_EQ(pub.pending_delta_rows(), 0u);
  // The merged index is bit-identical to a full Build over its own table.
  EXPECT_TRUE(
      SameStorage(result->index, FlatGroupIndex::Build(result->table)));
}

TEST(IncrementalPublishTest, MergeOnAndOffAreBitIdentical) {
  // Same insert history, same RNG seeds: the merge_index flag must select
  // only the index-build algorithm — tables and indexes bit-identical.
  auto on = *LoadedPublisher(800);
  auto off = *LoadedPublisher(800);
  Rng rng_on(21);
  Rng rng_off(21);
  for (int round = 0; round < 3; ++round) {
    auto a = on.PublishIncremental(rng_on, /*merge_index=*/true);
    auto b = off.PublishIncremental(rng_off, /*merge_index=*/false);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(SameTable(a->table, b->table)) << "round " << round;
    EXPECT_TRUE(SameStorage(a->index, b->index)) << "round " << round;
    // Next round's delta.
    for (size_t i = 0; i < 60; ++i) {
      const std::vector<uint32_t> row{uint32_t((i + round) % 4),
                                      uint32_t(i % 3)};
      ASSERT_TRUE(on.Insert(row).ok());
      ASSERT_TRUE(off.Insert(row).ok());
    }
  }
}

TEST(IncrementalPublishTest, UntouchedGroupsCarryForwardBitIdentically) {
  auto pub = *StreamingPublisher::Make(MakeSchema(), Params());
  // Two groups (keys 0 and 2), then a delta touching only key 2.
  for (size_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        pub.Insert(std::vector<uint32_t>{0, uint32_t(i % 3)}).ok());
    ASSERT_TRUE(
        pub.Insert(std::vector<uint32_t>{2, uint32_t((i * 5) % 3)}).ok());
  }
  Rng rng(31);
  auto first = pub.PublishIncremental(rng);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->index.num_groups(), 2u);
  const std::vector<uint64_t> group0_before{
      first->index.sa_counts(0).begin(), first->index.sa_counts(0).end()};

  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        pub.Insert(std::vector<uint32_t>{2, uint32_t(i % 3)}).ok());
  }
  auto second = pub.PublishIncremental(rng);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.delta_rows, 40u);
  EXPECT_EQ(second->stats.groups_touched, 1u);
  EXPECT_EQ(second->stats.groups_carried, 1u);
  EXPECT_EQ(second->stats.sps.num_groups, 1u);  // SPS re-ran on key 2 only
  // Group 0 (key 0) carried its previous perturbation forward untouched.
  EXPECT_TRUE(SpanEqual(second->index.sa_counts(0), group0_before));
  EXPECT_TRUE(
      SameStorage(second->index, FlatGroupIndex::Build(second->table)));
}

TEST(IncrementalPublishTest, RejectedInsertLeavesRngStreamUntouched) {
  // Satellite regression: a rejected InsertAndRelease must not draw from
  // the caller's RNG, or every release after it shifts and record/replay
  // byte-equality breaks.
  auto clean = *StreamingPublisher::Make(MakeSchema(), Params());
  auto faulty = *StreamingPublisher::Make(MakeSchema(), Params());
  Rng rng_clean(77);
  Rng rng_faulty(77);
  std::vector<uint32_t> released_clean;
  std::vector<uint32_t> released_faulty;
  for (size_t i = 0; i < 400; ++i) {
    const std::vector<uint32_t> row{uint32_t(i % 4), uint32_t(i % 3)};
    auto a = clean.InsertAndRelease(row, rng_clean);
    ASSERT_TRUE(a.ok());
    released_clean.insert(released_clean.end(), a->begin(), a->end());
    // The faulty stream interleaves invalid rows (bad arity, bad domain)
    // before each valid one.
    EXPECT_FALSE(
        faulty.InsertAndRelease(std::vector<uint32_t>{0}, rng_faulty).ok());
    EXPECT_FALSE(
        faulty.InsertAndRelease(std::vector<uint32_t>{9, 0}, rng_faulty)
            .ok());
    EXPECT_FALSE(
        faulty.InsertAndRelease(std::vector<uint32_t>{0, 9}, rng_faulty)
            .ok());
    auto b = faulty.InsertAndRelease(row, rng_faulty);
    ASSERT_TRUE(b.ok());
    released_faulty.insert(released_faulty.end(), b->begin(), b->end());
  }
  EXPECT_EQ(clean.num_records(), 400u);
  EXPECT_EQ(faulty.num_records(), 400u);
  EXPECT_EQ(released_clean, released_faulty);  // byte-equal replay
}

TEST(IncrementalPublishTest, AppendOnlyReleasesStableAcrossPublishes) {
  // Satellite coverage: rows released via InsertAndRelease must be
  // byte-stable whether or not incremental publishes interleave — a
  // published release never rewrites what append-only UP already released.
  auto plain = *StreamingPublisher::Make(MakeSchema(), Params());
  auto publishing = *StreamingPublisher::Make(MakeSchema(), Params());
  Rng rng_plain(91);
  Rng rng_publishing(91);
  Rng publish_rng(92);  // publishes draw from their own stream
  std::vector<uint32_t> released_plain;
  std::vector<uint32_t> released_publishing;
  for (size_t i = 0; i < 600; ++i) {
    const std::vector<uint32_t> row{uint32_t((i * 3) % 4), uint32_t(i % 3)};
    auto a = plain.InsertAndRelease(row, rng_plain);
    ASSERT_TRUE(a.ok());
    released_plain.insert(released_plain.end(), a->begin(), a->end());
    auto b = publishing.InsertAndRelease(row, rng_publishing);
    ASSERT_TRUE(b.ok());
    released_publishing.insert(released_publishing.end(), b->begin(),
                               b->end());
    if (i % 150 == 149) {
      ASSERT_TRUE(publishing.PublishIncremental(publish_rng).ok());
    }
  }
  EXPECT_EQ(released_plain, released_publishing);
}

TEST(IncrementalPublishTest, AuditFromRunsAgreesWithAudit) {
  auto pub = *StreamingPublisher::Make(MakeSchema(), Params());
  Rng rng(41);
  auto expect_agreement = [&](const char* when) {
    const ViolationReport full = pub.Audit();
    const ViolationReport runs = pub.AuditFromRuns();
    EXPECT_EQ(full.num_groups, runs.num_groups) << when;
    EXPECT_EQ(full.num_records, runs.num_records) << when;
    EXPECT_EQ(full.violating_groups, runs.violating_groups) << when;
    EXPECT_EQ(full.violating_records, runs.violating_records) << when;
  };
  // Heavily skewed group 1 grows past s_g; group 0 stays small and mixed.
  for (size_t i = 0; i < 1500; ++i) {
    ASSERT_TRUE(pub.Insert(std::vector<uint32_t>{
                       1, (i % 20) == 0 ? 1u : 0u})
                    .ok());
    if (i % 10 == 0) {
      ASSERT_TRUE(
          pub.Insert(std::vector<uint32_t>{0, uint32_t(i % 3)}).ok());
    }
    if (i == 200) {
      expect_agreement("buffered only");
      ASSERT_TRUE(pub.PublishIncremental(rng).ok());
      expect_agreement("published, empty delta");
    }
  }
  expect_agreement("published base + pending delta");
  ASSERT_TRUE(pub.PublishIncremental(rng).ok());
  expect_agreement("fully published");
  EXPECT_GT(pub.Audit().violating_groups, 0u);  // the audit sees something
}

// ------------------------------------------------------------- serve layer

TEST(IncrementalServeTest, StorePublishIncrementalServesMergedSnapshots) {
  const fs::path dir =
      fs::temp_directory_path() / "recpriv_incremental_store_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  serve::ReleaseStore::Options options;
  options.snapshot_dir = dir.string();
  serve::ReleaseStore store(options);

  auto pub = *LoadedPublisher(700);
  Rng rng(51);
  IncrementalPublishStats stats;
  auto first = store.PublishIncremental("r", pub, rng, /*merge_index=*/true,
                                        &stats);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ((*first)->epoch, 1u);
  EXPECT_EQ((*first)->source.kind, "incremental");
  EXPECT_EQ(stats.delta_rows, 700u);

  for (size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(pub.Insert(std::vector<uint32_t>{uint32_t(i % 4), 0}).ok());
  }
  auto second = store.PublishIncremental("r", pub, rng, /*merge_index=*/true,
                                         &stats);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->epoch, 2u);
  EXPECT_EQ(stats.delta_rows, 50u);
  EXPECT_NE((*first)->content_digest, (*second)->content_digest);

  // Persisted snapshots are self-contained: reopening the .rps yields the
  // same release, epoch, and content digest (the borrow from the base
  // image is an in-memory seam only).
  auto path = store.ManagedSnapshotPath("r", 2);
  ASSERT_TRUE(path.ok());
  auto reopened = store::OpenSnapshot(*path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->release, "r");
  EXPECT_EQ(reopened->snapshot->epoch, 2u);
  EXPECT_EQ(reopened->snapshot->content_digest, (*second)->content_digest);
  fs::remove_all(dir);
}

TEST(IncrementalServeTest, DropThenReinstalledEpochDoesNotServeStaleCache) {
  // Satellite regression: the answer cache must key on snapshot content,
  // not (release, epoch) — Drop + OpenSnapshot can legitimately reinstall
  // a previously-used epoch number with different data, and an epoch-keyed
  // cache would answer from the dropped release.
  const fs::path dir = fs::temp_directory_path() / "recpriv_cache_epoch_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  workload::SyntheticReleaseSpec spec;
  spec.records = 800;
  auto bundle_a = *workload::MakeBundle(spec, 11);
  auto bundle_b = *workload::MakeBundle(spec, 22);  // same shape, fresh noise

  auto store = std::make_shared<serve::ReleaseStore>();
  serve::QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.cache_capacity = 256;
  serve::QueryEngine engine(store, engine_options);

  const size_t arity = bundle_a.data.schema()->num_attributes();
  auto snap_a = store->Publish("r", std::move(bundle_a));
  ASSERT_TRUE(snap_a.ok());
  EXPECT_EQ((*snap_a)->epoch, 1u);

  query::CountQuery q(arity);
  q.sa_code = 0;
  auto warm = engine.AnswerOne("r", q);
  ASSERT_TRUE(warm.ok());
  auto hit = engine.AnswerOne("r", q);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cached);  // the cache IS live for this key

  // A different snapshot of the same release at the SAME epoch number,
  // installed through the Drop + OpenSnapshot path (replication/restart).
  auto snap_b = analysis::SnapshotRelease(std::move(bundle_b), /*epoch=*/1);
  ASSERT_TRUE(snap_b.ok());
  const std::string path = (dir / "r-b.rps").string();
  ASSERT_TRUE(store::WriteSnapshot(**snap_b, "r", path).ok());
  ASSERT_TRUE(store->Drop("r").ok());
  auto reinstalled = store->OpenSnapshot(path);
  ASSERT_TRUE(reinstalled.ok()) << reinstalled.status();
  EXPECT_EQ(reinstalled->epoch, 1u);  // the epoch number IS reused

  const auto served = store->Get("r");
  ASSERT_TRUE(served.ok());
  ASSERT_NE((*served)->content_digest, (*snap_a)->content_digest);

  // The same query again: must MISS (fresh digest) and answer from the
  // reinstalled data, not the dropped release's cached entry.
  auto after = engine.AnswerOne("r", q);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cached);
  const serve::Answer expected = serve::EvaluateUncached(**served, q);
  EXPECT_EQ(after->observed, expected.observed);
  EXPECT_EQ(after->matched_size, expected.matched_size);
  EXPECT_EQ(after->estimate, expected.estimate);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace recpriv::core
