// Unit and statistical tests for the PRNG and distribution samplers. All
// statistical assertions use fixed seeds with tolerance bands several
// standard errors wide, so they are deterministic.

#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace recpriv {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkDivergesFromParent) {
  Rng parent(7);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent() == child());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  // SE = 1/sqrt(12 n) ~ 0.00065; allow 6 SEs.
  EXPECT_NEAR(sum / n, 0.5, 0.004);
}

TEST(RngTest, NextUint64Unbiased) {
  Rng rng(11);
  const uint64_t n = 7;
  std::vector<int> hist(n, 0);
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) ++hist[rng.NextUint64(n)];
  for (uint64_t k = 0; k < n; ++k) {
    EXPECT_NEAR(hist[k], draws / double(n), 6 * std::sqrt(draws / double(n)));
  }
}

TEST(RngTest, NextInt64CoversInclusiveRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt64(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  const double p = 0.3;
  const int n = 100000;
  int heads = 0;
  for (int i = 0; i < n; ++i) heads += rng.NextBernoulli(p);
  EXPECT_NEAR(heads / double(n), p, 6 * std::sqrt(p * (1 - p) / n));
}

TEST(LaplaceTest, MeanZeroAndVariance) {
  Rng rng(21);
  const double b = 4.0;
  const int n = 200000;
  double sum = 0.0, sum_abs = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = SampleLaplace(rng, b);
    sum += x;
    sum_abs += std::abs(x);
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.1);          // E[X] = 0
  EXPECT_NEAR(sum_abs / n, b, 0.1);        // E|X| = b
  EXPECT_NEAR(sum_sq / n, 2 * b * b, 1.2); // Var = 2 b^2
}

TEST(NormalTest, MomentsMatch) {
  Rng rng(33);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = SampleNormal(rng, 2.0, 3.0);
    sum += x;
    sum_sq += (x - 2.0) * (x - 2.0);
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 9.0, 0.3);
}

struct BinomialCase {
  uint64_t n;
  double p;
};

class BinomialTest : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialTest, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  Rng rng(1000 + n);
  const int draws = 40000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < draws; ++i) {
    uint64_t x = SampleBinomial(rng, n, p);
    EXPECT_LE(x, n);
    sum += double(x);
    sum_sq += double(x) * double(x);
  }
  const double mean = sum / draws;
  const double var = sum_sq / draws - mean * mean;
  const double expect_mean = n * p;
  const double expect_var = n * p * (1 - p);
  EXPECT_NEAR(mean, expect_mean,
              0.05 + 6 * std::sqrt(expect_var / draws));
  EXPECT_NEAR(var, expect_var, 0.05 + 0.1 * expect_var);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BinomialTest,
    ::testing::Values(BinomialCase{1, 0.5}, BinomialCase{10, 0.2},
                      BinomialCase{100, 0.5}, BinomialCase{100, 0.02},
                      BinomialCase{1000, 0.9}, BinomialCase{1000, 0.001},
                      BinomialCase{5000, 0.7}));

TEST(BinomialTest, DegenerateCases) {
  Rng rng(2);
  EXPECT_EQ(SampleBinomial(rng, 0, 0.5), 0u);
  EXPECT_EQ(SampleBinomial(rng, 100, 0.0), 0u);
  EXPECT_EQ(SampleBinomial(rng, 100, 1.0), 100u);
}

TEST(DiscreteTest, RespectsWeights) {
  Rng rng(8);
  std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> hist(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++hist[SampleDiscrete(rng, w)];
  EXPECT_EQ(hist[1], 0);
  EXPECT_NEAR(hist[0] / double(n), 0.25, 0.015);
  EXPECT_NEAR(hist[2] / double(n), 0.75, 0.015);
}

TEST(AliasSamplerTest, MatchesWeights) {
  Rng rng(13);
  std::vector<double> w{5.0, 1.0, 0.0, 4.0};
  AliasSampler sampler(w);
  EXPECT_EQ(sampler.size(), 4u);
  std::vector<int> hist(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hist[sampler.Sample(rng)];
  EXPECT_EQ(hist[2], 0);
  EXPECT_NEAR(hist[0] / double(n), 0.5, 0.01);
  EXPECT_NEAR(hist[1] / double(n), 0.1, 0.01);
  EXPECT_NEAR(hist[3] / double(n), 0.4, 0.01);
}

TEST(AliasSamplerTest, SingleBucket) {
  Rng rng(1);
  AliasSampler sampler(std::vector<double>{2.5});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(SampleWithoutReplacementTest, DistinctAndInRange) {
  Rng rng(55);
  auto s = SampleWithoutReplacement(rng, 100, 20);
  ASSERT_EQ(s.size(), 20u);
  std::set<uint64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (uint64_t v : s) EXPECT_LT(v, 100u);
}

TEST(SampleWithoutReplacementTest, FullDraw) {
  Rng rng(56);
  auto s = SampleWithoutReplacement(rng, 10, 10);
  std::set<uint64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(SampleWithoutReplacementTest, UniformInclusion) {
  Rng rng(77);
  std::vector<int> hist(10, 0);
  const int reps = 30000;
  for (int i = 0; i < reps; ++i) {
    for (uint64_t v : SampleWithoutReplacement(rng, 10, 3)) ++hist[v];
  }
  for (int k = 0; k < 10; ++k) {
    EXPECT_NEAR(hist[k] / double(reps), 0.3, 0.02);
  }
}

TEST(ShuffleTest, PermutesAllElements) {
  Rng rng(91);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  Shuffle(rng, v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(SplitMixTest, KnownFirstOutputsDiffer) {
  uint64_t s1 = 0, s2 = 1;
  EXPECT_NE(SplitMix64Next(s1), SplitMix64Next(s2));
}

}  // namespace
}  // namespace recpriv
