// Tests for the persistent snapshot store (src/store/): checksum and
// endian primitives, write/open round-trips at the file and ReleaseStore
// level, FromStorage structural validation, fail-fast on foreign format
// versions, header/section corruption detection, and restart recovery of
// the retained-epoch window.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/release.h"
#include "client/in_process_client.h"
#include "common/checksum.h"
#include "common/endian.h"
#include "serve/release_store.h"
#include "store/snapshot_format.h"
#include "store/snapshot_reader.h"
#include "store/snapshot_writer.h"
#include "table/flat_group_index.h"
#include "testing_util.h"

namespace recpriv::store {
namespace {

namespace fs = std::filesystem;

using recpriv::analysis::ReleaseBundle;
using recpriv::analysis::ReleaseSnapshot;
using recpriv::analysis::SnapshotRelease;
using recpriv::table::FlatGroupIndex;

/// A fresh per-test scratch directory under the system temp dir.
std::string TempDir(const std::string& name) {
  const fs::path dir =
      fs::temp_directory_path() / ("recpriv_snapshot_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            std::streamsize(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Recomputes and patches the header checksum after a deliberate header
/// edit, so the edit itself (not the checksum) is what the reader sees.
void ResealHeader(std::vector<uint8_t>& bytes) {
  ASSERT_GE(bytes.size(), kSuperblockBytes);
  const Superblock sb = DecodeSuperblock(bytes.data());
  const uint64_t header_bytes = kSuperblockBytes + sb.table_bytes;
  ASSERT_GE(bytes.size(), header_bytes);
  std::vector<uint8_t> region(bytes.begin(),
                              bytes.begin() + ptrdiff_t(header_bytes));
  std::memset(region.data() + 56, 0, 8);
  StoreLE64(XxHash64(region.data(), region.size()), bytes.data() + 56);
}

/// A written demo snapshot plus its in-memory original, shared per test.
struct WrittenSnapshot {
  std::string dir;
  std::string path;
  std::shared_ptr<const ReleaseSnapshot> original;
};

WrittenSnapshot WriteDemo(const std::string& test_name,
                          uint64_t seed = 2015, uint64_t epoch = 7) {
  WrittenSnapshot w;
  w.dir = TempDir(test_name);
  w.path = w.dir + "/demo.rps";
  ReleaseBundle bundle = recpriv::testing::DemoBundle(seed);
  auto snap = SnapshotRelease(std::move(bundle), epoch);
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  w.original = *snap;
  const Status written = WriteSnapshot(*w.original, "demo", w.path);
  EXPECT_TRUE(written.ok()) << written.ToString();
  return w;
}

// --- primitives ------------------------------------------------------------

TEST(Checksum, Xxh64OfficialVectors) {
  // Reference values from the xxHash specification's test vectors.
  EXPECT_EQ(XxHash64("", 0), 0xef46db3751d8e999ULL);
  EXPECT_EQ(XxHash64("abc", 3), 0x44bc2cf5ad770999ULL);
  EXPECT_NE(XxHash64("abc", 3, /*seed=*/1), XxHash64("abc", 3));
}

TEST(Checksum, SensitiveToEveryByte) {
  std::vector<uint8_t> data(257, 0xAB);
  const uint64_t base = XxHash64(data.data(), data.size());
  for (size_t i = 0; i < data.size(); i += 17) {
    data[i] ^= 0x01;
    EXPECT_NE(XxHash64(data.data(), data.size()), base) << "byte " << i;
    data[i] ^= 0x01;
  }
}

TEST(Endian, LittleEndianRoundTrip) {
  uint8_t buf[8];
  StoreLE64(0x0102030405060708ULL, buf);
  EXPECT_EQ(buf[0], 0x08);  // least significant byte first
  EXPECT_EQ(buf[7], 0x01);
  EXPECT_EQ(LoadLE64(buf), 0x0102030405060708ULL);
  StoreLE32(0xdeadbeefU, buf);
  EXPECT_EQ(buf[0], 0xef);
  EXPECT_EQ(LoadLE32(buf), 0xdeadbeefU);
}

TEST(Format, SuperblockEncodeDecode) {
  Superblock sb;
  sb.section_count = 7;
  sb.file_bytes = 12345;
  sb.table_offset = kSuperblockBytes;
  sb.table_bytes = 7 * kSectionEntryBytes;
  sb.header_crc = 0x1122334455667788ULL;
  uint8_t buf[kSuperblockBytes];
  EncodeSuperblock(sb, buf);
  const Superblock back = DecodeSuperblock(buf);
  EXPECT_EQ(back.magic, kSnapshotMagic);
  EXPECT_EQ(back.version, kSnapshotFormatVersion);
  EXPECT_EQ(back.endian_tag, kEndianTag);
  EXPECT_EQ(back.section_count, 7u);
  EXPECT_EQ(back.file_bytes, 12345u);
  EXPECT_EQ(back.header_crc, sb.header_crc);
}

// --- round trip ------------------------------------------------------------

TEST(Snapshot, RoundTripIsBitIdentical) {
  const WrittenSnapshot w = WriteDemo("round_trip");
  auto opened = OpenSnapshot(w.path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->release, "demo");

  const ReleaseSnapshot& a = *w.original;
  const ReleaseSnapshot& b = *opened->snapshot;
  EXPECT_EQ(b.epoch, a.epoch);
  EXPECT_EQ(b.source.kind, "snapshot");
  EXPECT_GT(b.source.bytes_mapped, 0u);

  // Parameters and schema survive exactly.
  EXPECT_EQ(b.bundle.params.retention_p, a.bundle.params.retention_p);
  EXPECT_EQ(b.bundle.params.lambda, a.bundle.params.lambda);
  EXPECT_EQ(b.bundle.params.delta, a.bundle.params.delta);
  EXPECT_EQ(b.bundle.params.domain_m, a.bundle.params.domain_m);
  EXPECT_EQ(b.bundle.sensitive_attribute, a.bundle.sensitive_attribute);
  const auto& sa = *a.bundle.data.schema();
  const auto& sb = *b.bundle.data.schema();
  ASSERT_EQ(sb.num_attributes(), sa.num_attributes());
  for (size_t at = 0; at < sa.num_attributes(); ++at) {
    EXPECT_EQ(sb.attribute(at).name, sa.attribute(at).name);
    EXPECT_EQ(sb.attribute(at).domain.values(),
              sa.attribute(at).domain.values());
    EXPECT_EQ(sb.is_sensitive(at), sa.is_sensitive(at));
  }

  // Every index array is bit-identical (the mmap'd spans vs the built
  // vectors), and so is the table itself.
  const FlatGroupIndex::Storage sa_st = a.index.storage();
  const FlatGroupIndex::Storage sb_st = b.index.storage();
  EXPECT_EQ(sb_st.packed, sa_st.packed);
  EXPECT_EQ(sb_st.num_groups, sa_st.num_groups);
  EXPECT_EQ(sb_st.num_records, sa_st.num_records);
  auto equal = [](auto lhs, auto rhs) {
    return std::equal(lhs.begin(), lhs.end(), rhs.begin(), rhs.end());
  };
  EXPECT_TRUE(equal(sb_st.packed_keys, sa_st.packed_keys));
  EXPECT_TRUE(equal(sb_st.na_codes, sa_st.na_codes));
  EXPECT_TRUE(equal(sb_st.sa_counts, sa_st.sa_counts));
  EXPECT_TRUE(equal(sb_st.row_offsets, sa_st.row_offsets));
  EXPECT_TRUE(equal(sb_st.row_values, sa_st.row_values));
  ASSERT_EQ(b.bundle.data.num_rows(), a.bundle.data.num_rows());
  for (size_t c = 0; c < sa.num_attributes(); ++c) {
    EXPECT_TRUE(equal(b.bundle.data.column(c), a.bundle.data.column(c)))
        << "column " << c;
  }
}

TEST(Snapshot, MmapAlignment) {
  const WrittenSnapshot w = WriteDemo("alignment");
  auto opened = OpenSnapshot(w.path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const FlatGroupIndex::Storage st = opened->snapshot->index.storage();
  auto aligned = [](const void* p) {
    return reinterpret_cast<uintptr_t>(p) % kSectionAlignment == 0;
  };
  EXPECT_TRUE(aligned(st.na_codes.data()));
  EXPECT_TRUE(aligned(st.sa_counts.data()));
  EXPECT_TRUE(aligned(st.row_offsets.data()));
  EXPECT_TRUE(aligned(st.row_values.data()));
  if (st.packed) EXPECT_TRUE(aligned(st.packed_keys.data()));
}

TEST(Snapshot, InspectReportsIdentityAndSections) {
  const WrittenSnapshot w = WriteDemo("inspect");
  auto info = InspectSnapshot(w.path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->release, "demo");
  EXPECT_EQ(info->epoch, 7u);
  EXPECT_EQ(info->num_records, w.original->index.num_records());
  EXPECT_EQ(info->num_groups, w.original->index.num_groups());
  EXPECT_EQ(info->superblock.version, kSnapshotFormatVersion);
  EXPECT_EQ(size_t(info->superblock.section_count), info->sections.size());
  EXPECT_EQ(info->superblock.file_bytes, fs::file_size(w.path));
  bool saw_manifest = false;
  for (const SectionEntry& e : info->sections) {
    EXPECT_EQ(e.offset % kSectionAlignment, 0u);
    if (SectionKind(e.kind) == SectionKind::kManifestJson) saw_manifest = true;
  }
  EXPECT_TRUE(saw_manifest);
}

TEST(Snapshot, AnswersMatchAcrossSaveAndOpen) {
  const WrittenSnapshot w = WriteDemo("answers");

  // Serve the original and the reopened snapshot side by side and compare
  // a full query sweep (every public value and every SA value).
  auto direct_store = std::make_shared<serve::ReleaseStore>();
  ASSERT_TRUE(direct_store
                  ->Publish("demo", recpriv::testing::DemoBundle(2015))
                  .ok());
  auto mapped_store = std::make_shared<serve::ReleaseStore>();
  ASSERT_TRUE(mapped_store->OpenSnapshot(w.path).ok());

  client::InProcessClient direct(direct_store);
  client::InProcessClient mapped(mapped_store);
  auto schema = direct.GetSchema("demo");
  ASSERT_TRUE(schema.ok());

  client::QueryRequest request;
  request.release = "demo";
  for (const client::AttributeInfo& attr : schema->attributes) {
    if (attr.sensitive) continue;
    for (const std::string& value : attr.values) {
      for (const client::AttributeInfo& sa : schema->attributes) {
        if (!sa.sensitive) continue;
        for (const std::string& sa_value : sa.values) {
          client::QuerySpec spec;
          spec.where = {{attr.name, value}};
          spec.sa = sa_value;
          request.queries.push_back(std::move(spec));
        }
      }
    }
  }
  ASSERT_FALSE(request.queries.empty());

  auto direct_answer = direct.Query(request);
  auto mapped_answer = mapped.Query(request);
  ASSERT_TRUE(direct_answer.ok()) << direct_answer.status().ToString();
  ASSERT_TRUE(mapped_answer.ok()) << mapped_answer.status().ToString();
  ASSERT_EQ(direct_answer->answers.size(), mapped_answer->answers.size());
  for (size_t i = 0; i < direct_answer->answers.size(); ++i) {
    EXPECT_EQ(mapped_answer->answers[i].observed,
              direct_answer->answers[i].observed) << "query " << i;
    EXPECT_EQ(mapped_answer->answers[i].matched_size,
              direct_answer->answers[i].matched_size) << "query " << i;
    EXPECT_EQ(mapped_answer->answers[i].estimate,
              direct_answer->answers[i].estimate) << "query " << i;
  }
}

// --- corruption and versioning ---------------------------------------------

TEST(Snapshot, RejectsBadMagic) {
  const WrittenSnapshot w = WriteDemo("bad_magic");
  std::vector<uint8_t> bytes = ReadFileBytes(w.path);
  bytes[0] ^= 0xFF;
  ResealHeader(bytes);
  WriteFileBytes(w.path, bytes);
  auto opened = OpenSnapshot(w.path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
}

TEST(Snapshot, FailsFastOnForeignFormatVersion) {
  const WrittenSnapshot w = WriteDemo("foreign_version");
  std::vector<uint8_t> bytes = ReadFileBytes(w.path);
  // A well-formed file from a future format: version bumped, header crc
  // valid. The reader must refuse by version, not by checksum accident.
  StoreLE32(kSnapshotFormatVersion + 41, bytes.data() + 8);
  ResealHeader(bytes);
  WriteFileBytes(w.path, bytes);
  auto opened = OpenSnapshot(w.path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotImplemented);
  EXPECT_NE(opened.status().message().find("version"), std::string::npos);
}

TEST(Snapshot, DetectsHeaderCorruption) {
  const WrittenSnapshot w = WriteDemo("header_corruption");
  std::vector<uint8_t> bytes = ReadFileBytes(w.path);
  bytes[kSuperblockBytes + 16] ^= 0x01;  // a section entry's offset field
  WriteFileBytes(w.path, bytes);
  auto opened = OpenSnapshot(w.path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
}

TEST(Snapshot, DetectsTruncation) {
  const WrittenSnapshot w = WriteDemo("truncation");
  std::vector<uint8_t> bytes = ReadFileBytes(w.path);
  bytes.resize(bytes.size() - 1);
  WriteFileBytes(w.path, bytes);
  auto opened = OpenSnapshot(w.path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);

  bytes.resize(kSuperblockBytes / 2);  // not even a whole superblock
  WriteFileBytes(w.path, bytes);
  opened = OpenSnapshot(w.path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
}

TEST(Snapshot, DetectsPayloadCorruptionInEverySection) {
  const WrittenSnapshot w = WriteDemo("payload_corruption");
  auto info = InspectSnapshot(w.path);
  ASSERT_TRUE(info.ok());
  const std::vector<uint8_t> pristine = ReadFileBytes(w.path);
  for (const SectionEntry& e : info->sections) {
    std::vector<uint8_t> bytes = pristine;
    bytes[e.offset + e.bytes / 2] ^= 0x10;
    WriteFileBytes(w.path, bytes);
    auto opened = OpenSnapshot(w.path);
    ASSERT_FALSE(opened.ok()) << "section kind " << e.kind;
    EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss)
        << "section kind " << e.kind;
  }
}

TEST(FromStorage, RejectsStructurallyInvalidArrays) {
  ReleaseBundle bundle = recpriv::testing::DemoBundle(2015);
  const FlatGroupIndex built = FlatGroupIndex::Build(bundle.data);
  const FlatGroupIndex::Storage good = built.storage();
  const auto schema = bundle.data.schema();

  {
    auto ok = FlatGroupIndex::FromStorage(schema, good);
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  }
  {
    FlatGroupIndex::Storage bad = good;
    bad.num_records += 1;  // CSR no longer covers every record
    EXPECT_EQ(FlatGroupIndex::FromStorage(schema, bad).status().code(),
              StatusCode::kDataLoss);
  }
  {
    FlatGroupIndex::Storage bad = good;
    std::vector<uint64_t> offsets(good.row_offsets.begin(),
                                  good.row_offsets.end());
    offsets[0] = 1;  // CSR must start at 0
    bad.row_offsets = offsets;
    EXPECT_EQ(FlatGroupIndex::FromStorage(schema, bad).status().code(),
              StatusCode::kDataLoss);
  }
  {
    FlatGroupIndex::Storage bad = good;
    std::vector<uint32_t> rows(good.row_values.begin(),
                               good.row_values.end());
    rows[0] = rows[1];  // no longer a permutation
    bad.row_values = rows;
    EXPECT_EQ(FlatGroupIndex::FromStorage(schema, bad).status().code(),
              StatusCode::kDataLoss);
  }
  {
    FlatGroupIndex::Storage bad = good;
    std::vector<uint64_t> counts(good.sa_counts.begin(),
                                 good.sa_counts.end());
    counts[0] += 1;  // histogram row no longer sums to the group size
    bad.sa_counts = counts;
    EXPECT_EQ(FlatGroupIndex::FromStorage(schema, bad).status().code(),
              StatusCode::kDataLoss);
  }
}

// --- ReleaseStore persistence ----------------------------------------------

TEST(ReleaseStorePersistence, PublishPersistsAndRecoverySeesIt) {
  const std::string dir = TempDir("persist_recover");
  serve::ReleaseStore::Options options;
  options.retained_epochs = 4;
  options.snapshot_dir = dir;
  uint64_t first_epoch = 0;
  {
    serve::ReleaseStore store(options);
    ASSERT_TRUE(store.RecoverFromDir().ok());
    auto snap = store.Publish("demo", recpriv::testing::DemoBundle(2015));
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    first_epoch = (*snap)->epoch;
    ASSERT_TRUE(
        store.Publish("demo", recpriv::testing::DemoBundle(2016)).ok());
    // Two epochs, two managed files.
    size_t files = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
      if (e.path().extension() == ".rps") ++files;
    }
    EXPECT_EQ(files, 2u);
  }
  // A fresh store over the same directory recovers the full window and
  // continues the epoch sequence instead of reusing numbers.
  serve::ReleaseStore restarted(options);
  ASSERT_TRUE(restarted.RecoverFromDir().ok());
  auto info = restarted.Info("demo");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->oldest_epoch, first_epoch);
  EXPECT_EQ(info->epoch, first_epoch + 1);
  EXPECT_EQ(info->retained_epochs, 2u);
  EXPECT_EQ(info->source_kind, "snapshot");
  auto republished =
      restarted.Publish("demo", recpriv::testing::DemoBundle(2017));
  ASSERT_TRUE(republished.ok());
  EXPECT_EQ((*republished)->epoch, first_epoch + 2);
}

TEST(ReleaseStorePersistence, EvictionAndDropDeleteManagedFiles) {
  const std::string dir = TempDir("evict_drop");
  serve::ReleaseStore::Options options;
  options.retained_epochs = 2;
  options.snapshot_dir = dir;
  serve::ReleaseStore store(options);
  ASSERT_TRUE(store.RecoverFromDir().ok());
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    ASSERT_TRUE(
        store.Publish("demo", recpriv::testing::DemoBundle(seed)).ok());
  }
  size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".rps") ++files;
  }
  EXPECT_EQ(files, 2u);  // epochs 1 and 2 were evicted with their files

  ASSERT_TRUE(store.Drop("demo").ok());
  files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".rps") ++files;
  }
  EXPECT_EQ(files, 0u);  // dropped releases cannot be resurrected
}

TEST(ReleaseStorePersistence, RecoveryFailsFastOnCorruptFile) {
  const std::string dir = TempDir("recover_corrupt");
  serve::ReleaseStore::Options options;
  options.snapshot_dir = dir;
  {
    serve::ReleaseStore store(options);
    ASSERT_TRUE(store.RecoverFromDir().ok());
    ASSERT_TRUE(
        store.Publish("demo", recpriv::testing::DemoBundle(2015)).ok());
  }
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() != ".rps") continue;
    std::vector<uint8_t> bytes = ReadFileBytes(e.path().string());
    bytes[bytes.size() / 2] ^= 0x01;
    WriteFileBytes(e.path().string(), bytes);
  }
  serve::ReleaseStore restarted(options);
  const Status recovered = restarted.RecoverFromDir();
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.code(), StatusCode::kDataLoss);
  EXPECT_NE(recovered.message().find("recovery failed"), std::string::npos);
}

TEST(ReleaseStorePersistence, DuplicateEpochInstallIsAlreadyExists) {
  const WrittenSnapshot w = WriteDemo("dup_epoch");
  serve::ReleaseStore store;
  ASSERT_TRUE(store.OpenSnapshot(w.path).ok());
  const auto again = store.OpenSnapshot(w.path);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST(ReleaseStorePersistence, SanitizedFilenamesForHostileNames) {
  const std::string dir = TempDir("hostile_names");
  serve::ReleaseStore::Options options;
  options.snapshot_dir = dir;
  serve::ReleaseStore store(options);
  ASSERT_TRUE(store.RecoverFromDir().ok());
  ASSERT_TRUE(store
                  .Publish("../etc/passwd x%41",
                           recpriv::testing::DemoBundle(2015))
                  .ok());
  // Everything the publish wrote stays inside the managed directory, and
  // recovery restores the hostile name from the manifest, not the path.
  size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    EXPECT_TRUE(e.is_regular_file());
    EXPECT_EQ(e.path().extension(), ".rps");
    ++files;
  }
  EXPECT_EQ(files, 1u);
  serve::ReleaseStore restarted(options);
  ASSERT_TRUE(restarted.RecoverFromDir().ok());
  EXPECT_TRUE(restarted.Get("../etc/passwd x%41").ok());
}

}  // namespace
}  // namespace recpriv::store
