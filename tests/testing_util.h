// Shared seed and fixture helpers for the test suites and benches — the
// ONE place the harness's RNG plumbing lives, so every seeded suite
// reproduces the same way and a failure prints the seed that re-runs it.
//
// gtest-free by design: the bench binaries include this header too (the
// CMake test/bench targets add tests/ to their include path).

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/demo.h"
#include "client/api.h"
#include "common/result.h"

namespace recpriv::testing {

/// The seed a suite/bench should run with: `fallback` unless the
/// RECPRIV_SEED environment variable overrides it (for reproducing a CI
/// failure or widening local fuzzing). An override is announced on stderr
/// so a log always records which seed actually ran.
inline uint64_t HarnessSeed(uint64_t fallback) {
  const char* env = std::getenv("RECPRIV_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  const uint64_t seed = std::strtoull(env, nullptr, 0);
  std::fprintf(stderr, "RECPRIV_SEED=%llu (overriding %llu)\n",
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(fallback));
  return seed;
}

/// The shared demo release (analysis/demo.h) at test scale (~1k records by
/// default); distinct seeds give genuinely different observed counts.
/// Aborts on generation failure — a fixture, not a code path under test.
inline recpriv::analysis::ReleaseBundle DemoBundle(
    uint64_t seed, size_t base_group_size = 100) {
  auto bundle = recpriv::analysis::MakeDemoReleaseBundle(seed,
                                                         base_group_size);
  if (!bundle.ok()) {
    std::fprintf(stderr, "demo bundle generation failed: %s\n",
                 bundle.status().ToString().c_str());
    std::abort();
  }
  return *std::move(bundle);
}

/// The identity of an answer batch, excluding the cache flags (whether a
/// row came from the LRU is timing-dependent; the counts must not be).
inline std::string AnswerFingerprint(const recpriv::client::BatchAnswer& batch) {
  std::string out = batch.release + "@" + std::to_string(batch.epoch);
  for (const auto& row : batch.answers) {
    out += "|" + std::to_string(row.observed) + "," +
           std::to_string(row.matched_size) + "," +
           std::to_string(row.estimate);
  }
  return out;
}

}  // namespace recpriv::testing
