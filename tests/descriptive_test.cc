// Tests for descriptive statistics (mean / variance / SE).

#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

namespace recpriv::stats {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.standard_error(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats rs;
  rs.Add(3.5);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.5);
  EXPECT_DOUBLE_EQ(rs.max(), 3.5);
}

TEST(RunningStatsTest, KnownSample) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample variance 32/7.
  RunningStats rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(v);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(rs.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(rs.standard_error(), std::sqrt(32.0 / 7.0) / std::sqrt(8.0),
              1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  // Welford should survive a large common offset.
  RunningStats rs;
  const double offset = 1e12;
  for (double v : {1.0, 2.0, 3.0}) rs.Add(offset + v);
  EXPECT_NEAR(rs.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(rs.variance(), 1.0, 1e-3);
}

TEST(SummarizeTest, MatchesRunningStats) {
  std::vector<double> values{0.5, 1.5, 2.5, 3.5};
  Summary s = Summarize(values);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_NEAR(s.variance, 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
}

TEST(SummarizeTest, EmptyInput) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(MeanTest, Basics) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 6.0}), 3.0);
}

}  // namespace
}  // namespace recpriv::stats
