// Tests for the Chernoff bounds (Theorem 3) and the Theorem 2 bound
// conversion between observed-count error and MLE error.

#include "stats/chernoff.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace recpriv::stats {
namespace {

TEST(ChernoffTest, ClosedForms) {
  EXPECT_DOUBLE_EQ(ChernoffUpperTail(1.0, 30.0), std::exp(-30.0 / 3.0));
  EXPECT_DOUBLE_EQ(ChernoffLowerTail(1.0, 30.0), std::exp(-15.0));
  EXPECT_DOUBLE_EQ(ChernoffUpperTail(0.5, 100.0),
                   std::exp(-0.25 * 100.0 / 2.5));
}

TEST(ChernoffTest, LowerTailIsTighterForOmegaUpToOne) {
  for (double omega : {0.1, 0.3, 0.5, 0.9, 1.0}) {
    for (double mu : {1.0, 10.0, 500.0}) {
      EXPECT_LE(ChernoffLowerTail(omega, mu), ChernoffUpperTail(omega, mu));
    }
  }
}

TEST(ChernoffTest, DecreasingInMuAndOmega) {
  EXPECT_GT(ChernoffUpperTail(0.5, 10.0), ChernoffUpperTail(0.5, 100.0));
  EXPECT_GT(ChernoffUpperTail(0.2, 50.0), ChernoffUpperTail(0.8, 50.0));
  EXPECT_GT(ChernoffLowerTail(0.2, 50.0), ChernoffLowerTail(0.8, 50.0));
}

TEST(ChernoffTest, BoundsActuallyHoldForBinomial) {
  // Empirical check that the bound is a true upper bound for a Binomial
  // (a sum of i.i.d. Poisson trials).
  Rng rng(42);
  const uint64_t n = 400;
  const double p = 0.25;
  const double mu = n * p;
  const double omega = 0.3;
  const int reps = 20000;
  int upper_exceed = 0, lower_exceed = 0;
  for (int i = 0; i < reps; ++i) {
    double x = double(SampleBinomial(rng, n, p));
    upper_exceed += ((x - mu) / mu > omega);
    lower_exceed += ((x - mu) / mu < -omega);
  }
  EXPECT_LT(upper_exceed / double(reps), ChernoffUpperTail(omega, mu));
  EXPECT_LT(lower_exceed / double(reps), ChernoffLowerTail(omega, mu));
}

GroupBoundParams MakeParams(double size, double f, double p, double m) {
  GroupBoundParams g;
  g.group_size = size;
  g.frequency = f;
  g.retention = p;
  g.domain_size = m;
  return g;
}

TEST(BoundConversionTest, ExpectedObservedCountMatchesLemma2) {
  // E[O*] = |S| (f p + (1-p)/m).
  auto g = MakeParams(1000, 0.4, 0.5, 10.0);
  EXPECT_DOUBLE_EQ(ExpectedObservedCount(g), 1000 * (0.4 * 0.5 + 0.05));
}

TEST(BoundConversionTest, OmegaLambdaRoundTrip) {
  auto g = MakeParams(1000, 0.4, 0.5, 10.0);
  for (double lambda : {0.05, 0.1, 0.3, 0.5, 1.0}) {
    EXPECT_NEAR(LambdaForOmega(g, OmegaForLambda(g, lambda)), lambda, 1e-12);
  }
}

TEST(BoundConversionTest, OmegaIndependentOfGroupSize) {
  auto g1 = MakeParams(10, 0.4, 0.5, 10.0);
  auto g2 = MakeParams(100000, 0.4, 0.5, 10.0);
  EXPECT_DOUBLE_EQ(OmegaForLambda(g1, 0.3), OmegaForLambda(g2, 0.3));
}

TEST(BoundConversionTest, MaxLambdaMapsToOmegaOne) {
  for (double f : {0.1, 0.5, 0.9}) {
    for (double p : {0.3, 0.5, 0.7}) {
      for (double m : {2.0, 10.0, 50.0}) {
        auto g = MakeParams(500, f, p, m);
        EXPECT_NEAR(OmegaForLambda(g, MaxLambdaForLowerTail(g)), 1.0, 1e-12);
      }
    }
  }
}

TEST(BoundConversionTest, MleBoundsAreChernoffAtConvertedOmega) {
  auto g = MakeParams(2000, 0.25, 0.5, 5.0);
  const double lambda = 0.3;
  const double omega = OmegaForLambda(g, lambda);
  const double mu = ExpectedObservedCount(g);
  EXPECT_DOUBLE_EQ(MleUpperTailBound(g, lambda), ChernoffUpperTail(omega, mu));
  EXPECT_DOUBLE_EQ(MleLowerTailBound(g, lambda), ChernoffLowerTail(omega, mu));
}

TEST(BoundConversionTest, BestBoundIsMin) {
  auto g = MakeParams(2000, 0.25, 0.5, 5.0);
  EXPECT_DOUBLE_EQ(MleBestTailBound(g, 0.3),
                   std::min(MleUpperTailBound(g, 0.3),
                            MleLowerTailBound(g, 0.3)));
}

TEST(BoundConversionTest, BestBoundFallsBackToUpperBeyondOmegaOne) {
  // Large lambda pushes omega > 1; only the upper tail applies.
  auto g = MakeParams(2000, 0.9, 0.9, 2.0);
  const double big_lambda = 2.0 * MaxLambdaForLowerTail(g);
  EXPECT_GT(OmegaForLambda(g, big_lambda), 1.0);
  EXPECT_DOUBLE_EQ(MleBestTailBound(g, big_lambda),
                   MleUpperTailBound(g, big_lambda));
}

TEST(BoundConversionTest, SmallerGroupsGiveLargerBounds) {
  // Reducing |S| increases the bound exponentially — the lever the SPS
  // algorithm uses (paper §4.2 discussion).
  auto big = MakeParams(5000, 0.5, 0.5, 2.0);
  auto small = MakeParams(50, 0.5, 0.5, 2.0);
  EXPECT_LT(MleBestTailBound(big, 0.3), MleBestTailBound(small, 0.3));
}

/// Empirical: the converted bound really bounds the MLE tail probability.
TEST(BoundConversionTest, MleTailBoundHoldsEmpirically) {
  Rng rng(7);
  const uint64_t size = 500;
  const double f = 0.3, p = 0.5, m = 4.0;
  auto g = MakeParams(double(size), f, p, m);
  const double lambda = 0.4;
  const uint64_t true_count = uint64_t(f * size);
  const int reps = 20000;
  int exceed = 0;
  for (int i = 0; i < reps; ++i) {
    // Simulate O*: retained + uniform noise from both sources.
    uint64_t retained = SampleBinomial(rng, true_count, p + (1 - p) / m);
    uint64_t noise = SampleBinomial(rng, size - true_count, (1 - p) / m);
    double observed = double(retained + noise);
    double f_prime = (observed / size - (1 - p) / m) / p;
    exceed += ((f_prime - f) / f > lambda);
  }
  EXPECT_LT(exceed / double(reps), MleUpperTailBound(g, lambda));
}

}  // namespace
}  // namespace recpriv::stats
