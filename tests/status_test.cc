// Unit tests for Status / Result error propagation.

#include "common/result.h"
#include "common/status.h"

#include <gtest/gtest.h>

namespace recpriv {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("p out of range");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "p out of range");
  EXPECT_EQ(s.ToString(), "InvalidArgument: p out of range");
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  const StatusCode codes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kOutOfRange,   StatusCode::kNotFound,
      StatusCode::kAlreadyExists, StatusCode::kIOError,
      StatusCode::kFailedPrecondition, StatusCode::kInternal,
      StatusCode::kNotImplemented};
  for (size_t i = 0; i < std::size(codes); ++i) {
    for (size_t j = i + 1; j < std::size(codes); ++j) {
      EXPECT_NE(StatusCodeToString(codes[i]), StatusCodeToString(codes[j]));
    }
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

Status FailingInner() { return Status::IOError("disk"); }

Status PropagatingOuter() {
  RECPRIV_RETURN_NOT_OK(FailingInner());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  Status s = PropagatingOuter();
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 41);
  EXPECT_EQ(*r, 41);
  EXPECT_EQ(r.ValueOr(7), 41);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  RECPRIV_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnHappyPath) {
  Result<int> r = QuarterEven(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> r = QuarterEven(6);  // 6 -> 3, second halving fails
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace recpriv
