// Tests for dictionary encoding.

#include "table/dictionary.h"

#include <gtest/gtest.h>

namespace recpriv::table {
namespace {

TEST(DictionaryTest, GetOrAddAssignsDenseCodes) {
  Dictionary d;
  EXPECT_EQ(d.GetOrAdd("a"), 0u);
  EXPECT_EQ(d.GetOrAdd("b"), 1u);
  EXPECT_EQ(d.GetOrAdd("a"), 0u);  // idempotent
  EXPECT_EQ(d.size(), 2u);
}

TEST(DictionaryTest, GetCodeAndValueRoundTrip) {
  Dictionary d;
  d.GetOrAdd("alpha");
  d.GetOrAdd("beta");
  EXPECT_EQ(*d.GetCode("beta"), 1u);
  EXPECT_EQ(*d.GetValue(0), "alpha");
  EXPECT_EQ(d.value(1), "beta");
}

TEST(DictionaryTest, MissingLookups) {
  Dictionary d;
  d.GetOrAdd("x");
  EXPECT_FALSE(d.GetCode("y").ok());
  EXPECT_EQ(d.GetCode("y").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(d.GetValue(5).ok());
  EXPECT_EQ(d.GetValue(5).status().code(), StatusCode::kOutOfRange);
}

TEST(DictionaryTest, Contains) {
  Dictionary d;
  d.GetOrAdd("v");
  EXPECT_TRUE(d.Contains("v"));
  EXPECT_FALSE(d.Contains("w"));
}

TEST(DictionaryTest, FromValuesPreservesOrder) {
  auto d = Dictionary::FromValues({"c", "a", "b"});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d->GetCode("c"), 0u);
  EXPECT_EQ(*d->GetCode("a"), 1u);
  EXPECT_EQ(*d->GetCode("b"), 2u);
}

TEST(DictionaryTest, FromValuesRejectsDuplicates) {
  auto d = Dictionary::FromValues({"x", "y", "x"});
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kAlreadyExists);
}

TEST(DictionaryTest, EmptyStringIsAValue) {
  Dictionary d;
  EXPECT_EQ(d.GetOrAdd(""), 0u);
  EXPECT_TRUE(d.Contains(""));
}

}  // namespace
}  // namespace recpriv::table
