// Tests for count queries, the random pool generator, and the relative
// error evaluation.

#include <gtest/gtest.h>

#include <set>

#include "core/generalization.h"
#include "datagen/simple.h"
#include "query/count_query.h"
#include "query/evaluation.h"
#include "query/query_pool.h"
#include "table/flat_group_index.h"

namespace recpriv::query {
namespace {

using recpriv::core::PrivacyParams;
using recpriv::datagen::GroupSpec;
using recpriv::datagen::SimpleDatasetSpec;
using recpriv::table::FlatGroupIndex;
using recpriv::table::Table;

SimpleDatasetSpec MakeSpec() {
  SimpleDatasetSpec spec;
  spec.public_attributes = {"Job", "City"};
  spec.sensitive_attribute = "Disease";
  spec.sa_domain = {"flu", "hiv", "bc"};
  spec.groups.push_back(GroupSpec{{"eng", "north"}, 4000, {70, 20, 10}});
  spec.groups.push_back(GroupSpec{{"eng", "south"}, 3000, {70, 20, 10}});
  spec.groups.push_back(GroupSpec{{"law", "north"}, 2000, {20, 30, 50}});
  spec.groups.push_back(GroupSpec{{"law", "south"}, 1000, {20, 30, 50}});
  return spec;
}

TEST(CountQueryTest, TrueAnswerSumsMatchingGroups) {
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  FlatGroupIndex idx = FlatGroupIndex::Build(t);

  CountQuery q(3);
  q.na_predicate.Bind(0, *t.schema()->attribute(0).domain.GetCode("eng"));
  q.sa_code = 0;  // flu
  EXPECT_EQ(TrueAnswer(q, idx), 4900u);  // 2800 + 2100
  EXPECT_NEAR(Selectivity(q, idx), 4900.0 / 10000.0, 1e-12);

  q.na_predicate.Bind(1, *t.schema()->attribute(1).domain.GetCode("south"));
  EXPECT_EQ(TrueAnswer(q, idx), 2100u);
}

TEST(QueryPoolTest, RespectsConfig) {
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  FlatGroupIndex idx = FlatGroupIndex::Build(t);
  Rng rng(31);
  QueryPoolConfig config;
  config.pool_size = 200;
  config.dimensionalities = {1, 2};
  config.min_selectivity = 0.01;
  auto pool = GenerateQueryPool(idx, config, rng);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool->size(), 200u);
  for (const auto& q : *pool) {
    EXPECT_GE(q.dimensionality, 1u);
    EXPECT_LE(q.dimensionality, 2u);
    EXPECT_EQ(q.na_predicate.num_bound(), q.dimensionality);
    EXPECT_FALSE(q.na_predicate.is_bound(2));  // SA never in the predicate
    EXPECT_GE(Selectivity(q, idx), 0.01);
    EXPECT_LT(q.sa_code, 3u);
  }
}

TEST(QueryPoolTest, SelectivityFloorFiltersRareQueries) {
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  FlatGroupIndex idx = FlatGroupIndex::Build(t);
  Rng rng(37);
  QueryPoolConfig config;
  config.pool_size = 100;
  config.dimensionalities = {1, 2};
  // bc in eng groups is 10%; with a 35% floor only broad flu queries pass.
  config.min_selectivity = 0.35;
  auto pool = GenerateQueryPool(idx, config, rng);
  ASSERT_TRUE(pool.ok());
  for (const auto& q : *pool) {
    EXPECT_GE(Selectivity(q, idx), 0.35);
  }
}

TEST(QueryPoolTest, ImpossibleFloorErrors) {
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  FlatGroupIndex idx = FlatGroupIndex::Build(t);
  Rng rng(41);
  QueryPoolConfig config;
  config.pool_size = 10;
  config.dimensionalities = {1, 2};
  config.min_selectivity = 0.99;  // unreachable: max selectivity < 0.5
  config.max_attempts = 5000;
  auto pool = GenerateQueryPool(idx, config, rng);
  EXPECT_FALSE(pool.ok());
  EXPECT_EQ(pool.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QueryPoolTest, ConfigValidation) {
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  FlatGroupIndex idx = FlatGroupIndex::Build(t);
  Rng rng(1);
  QueryPoolConfig bad;
  bad.pool_size = 0;
  EXPECT_FALSE(GenerateQueryPool(idx, bad, rng).ok());
  QueryPoolConfig bad_dim;
  bad_dim.dimensionalities = {5};  // only 2 public attributes
  EXPECT_FALSE(GenerateQueryPool(idx, bad_dim, rng).ok());
}

TEST(QueryPoolTest, MapPoolFollowsGeneralization) {
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  FlatGroupIndex idx = FlatGroupIndex::Build(t);
  auto plan = *recpriv::core::ComputeGeneralization(t);
  Rng rng(43);
  QueryPoolConfig config;
  config.pool_size = 50;
  config.dimensionalities = {1, 2};
  config.min_selectivity = 0.01;
  auto raw_pool = *GenerateQueryPool(idx, config, rng);
  auto mapped = MapQueryPool(plan, raw_pool);
  ASSERT_TRUE(mapped.ok());
  ASSERT_EQ(mapped->size(), raw_pool.size());
  for (size_t i = 0; i < raw_pool.size(); ++i) {
    EXPECT_EQ((*mapped)[i].sa_code, raw_pool[i].sa_code);
    for (size_t a = 0; a < 2; ++a) {
      if (raw_pool[i].na_predicate.is_bound(a)) {
        EXPECT_EQ((*mapped)[i].na_predicate.code(a),
                  plan.MapCode(a, raw_pool[i].na_predicate.code(a)));
      }
    }
  }
}

PrivacyParams Params(size_t m) {
  PrivacyParams p;
  p.lambda = 0.3;
  p.delta = 0.3;
  p.retention_p = 0.5;
  p.domain_m = m;
  return p;
}

TEST(EvaluationTest, PerturbAllGroupsPreservesSizes) {
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  FlatGroupIndex idx = FlatGroupIndex::Build(t);
  Rng rng(47);
  auto perturbed = PerturbAllGroups(idx, 0.5, rng);
  ASSERT_TRUE(perturbed.ok());
  ASSERT_EQ(perturbed->observed.size(), idx.num_groups());
  for (size_t gi = 0; gi < idx.num_groups(); ++gi) {
    EXPECT_EQ(perturbed->sizes[gi], idx.group_size(gi));
  }
}

TEST(EvaluationTest, ZeroErrorWhenReconstructionIsExact) {
  // With the identity "perturbation" unavailable (p<1), check instead that
  // evaluating against unperturbed counts embedded as observations with
  // p ~ 1 yields near-zero error.
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  FlatGroupIndex idx = FlatGroupIndex::Build(t);
  PerturbedGroups fake;
  for (size_t gi = 0; gi < idx.num_groups(); ++gi) {
    const auto row = idx.sa_counts(gi);
    fake.observed.emplace_back(row.begin(), row.end());
    fake.sizes.push_back(idx.group_size(gi));
  }
  CountQuery q(3);
  q.na_predicate.Bind(0, 0);
  q.sa_code = 0;
  auto result = EvaluateRelativeError({q}, idx, fake, 0.999999);
  EXPECT_EQ(result.queries_evaluated, 1u);
  EXPECT_NEAR(result.mean_relative_error, 0.0, 1e-3);
}

TEST(EvaluationTest, ErrorShrinksWithRetention) {
  // Higher retention p -> less noise -> smaller relative error.
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  FlatGroupIndex idx = FlatGroupIndex::Build(t);
  Rng rng(53);
  QueryPoolConfig config;
  config.pool_size = 300;
  config.dimensionalities = {1, 2};
  config.min_selectivity = 0.01;
  auto pool = *GenerateQueryPool(idx, config, rng);

  auto mean_error = [&](double p) {
    double total = 0.0;
    const int runs = 10;
    Rng prng(1000 + uint64_t(p * 10));
    for (int i = 0; i < runs; ++i) {
      auto perturbed = *PerturbAllGroups(idx, p, prng);
      total += EvaluateRelativeError(pool, idx, perturbed, p)
                   .mean_relative_error;
    }
    return total / runs;
  };
  EXPECT_GT(mean_error(0.1), mean_error(0.9));
}

TEST(EvaluationTest, SpsAllGroupsReportsSampling) {
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  FlatGroupIndex idx = FlatGroupIndex::Build(t);
  Rng rng(59);
  auto sps = SpsAllGroups(idx, Params(3), rng);
  ASSERT_TRUE(sps.ok());
  // All four groups are large with f in {0.5, 0.7}: all sampled.
  EXPECT_EQ(sps->sps_stats.num_groups, 4u);
  EXPECT_GT(sps->sps_stats.groups_sampled, 0u);
  EXPECT_EQ(sps->sps_stats.records_in, 10000u);
}

TEST(EvaluationTest, SkipsZeroAnswerQueries) {
  Table t = *recpriv::datagen::GenerateSimpleExact(MakeSpec());
  FlatGroupIndex idx = FlatGroupIndex::Build(t);
  PerturbedGroups fake;
  for (size_t gi = 0; gi < idx.num_groups(); ++gi) {
    const auto row = idx.sa_counts(gi);
    fake.observed.emplace_back(row.begin(), row.end());
    fake.sizes.push_back(idx.group_size(gi));
  }
  CountQuery q(3);
  q.na_predicate.Bind(0, 0);
  q.na_predicate.Bind(1, 0);
  q.sa_code = 2;
  // Make its true answer zero by pointing at a group/value that is empty:
  // eng-north bc has count 400, so use an out-of-data group instead.
  t.schema()->attribute(0).domain.GetOrAdd("ghost");
  CountQuery ghost(3);
  ghost.na_predicate.Bind(0, 2);  // ghost never appears in data
  ghost.sa_code = 0;
  auto result = EvaluateRelativeError({ghost}, idx, fake, 0.5);
  EXPECT_EQ(result.queries_evaluated, 0u);
  EXPECT_EQ(result.skipped_zero_answer, 1u);
}

}  // namespace
}  // namespace recpriv::query
