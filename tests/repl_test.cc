// Tests for the replication subsystem (src/repl): content digests, the
// subscribe push stream and its event ordering, checksummed snapshot
// transfer (including structured DATA_LOSS on tampered bytes), the
// follower Replicator's convergence under clean and fault-injected links,
// the bounded-staleness stats contract, and — the point of the whole
// subsystem — bit-identical answers from a follower, verified with the
// workload oracle on both client backends.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "client/in_process_client.h"
#include "client/line_protocol_client.h"
#include "client/tcp_transport.h"
#include "common/string_util.h"
#include "net/fault_injector.h"
#include "net/line_channel.h"
#include "net/socket.h"
#include "repl/digest.h"
#include "repl/replicator.h"
#include "repl/snapshot_provider.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "store/snapshot_writer.h"
#include "testing_util.h"
#include "workload/oracle.h"

namespace recpriv::repl {
namespace {

namespace fs = std::filesystem;

using recpriv::client::EpochEvent;
using recpriv::client::QueryRequest;
using recpriv::client::QuerySpec;
using recpriv::testing::AnswerFingerprint;
using recpriv::testing::DemoBundle;

std::string TempDir(const std::string& name) {
  const fs::path dir =
      fs::temp_directory_path() / ("recpriv_repl_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

QueryRequest DemoQueries(const std::string& release) {
  QueryRequest request;
  request.release = release;
  request.queries.push_back(QuerySpec{{{"Job", "eng"}}, "flu"});
  request.queries.push_back(QuerySpec{{{"Job", "law"}, {"City", "south"}},
                                      "hiv"});
  request.queries.push_back(QuerySpec{{}, "bc"});
  return request;
}

/// A primary serving stack with the replication ops enabled.
struct Primary {
  std::shared_ptr<serve::ReleaseStore> store;
  std::shared_ptr<serve::QueryEngine> engine;
  std::unique_ptr<SnapshotProvider> provider;
  std::unique_ptr<serve::Server> server;

  static Primary Make(size_t retained_epochs = 4) {
    Primary p;
    p.store = std::make_shared<serve::ReleaseStore>(retained_epochs);
    serve::QueryEngineOptions options;
    options.num_threads = 2;
    p.engine = std::make_shared<serve::QueryEngine>(p.store, options);
    p.provider = std::make_unique<SnapshotProvider>(*p.store);
    serve::ServerOptions server_options;
    server_options.snapshot_provider = p.provider.get();
    auto server = serve::Server::Start(p.engine, server_options);
    EXPECT_TRUE(server.ok()) << server.status();
    p.server = std::move(*server);
    return p;
  }
};

/// A follower stack: durable store + engine over it + Replicator.
struct Follower {
  std::shared_ptr<serve::ReleaseStore> store;
  std::shared_ptr<serve::QueryEngine> engine;
  std::unique_ptr<Replicator> replicator;

  static Follower Make(const std::string& dir, uint16_t primary_port,
                       ReplicatorOptions repl_options = {}) {
    Follower f;
    serve::ReleaseStore::Options store_options;
    store_options.snapshot_dir = dir;
    f.store = std::make_shared<serve::ReleaseStore>(store_options);
    EXPECT_TRUE(f.store->RecoverFromDir().ok());
    serve::QueryEngineOptions options;
    options.num_threads = 2;
    f.engine = std::make_shared<serve::QueryEngine>(f.store, options);
    repl_options.primary_port = primary_port;
    auto replicator = Replicator::Start(*f.store, repl_options);
    EXPECT_TRUE(replicator.ok()) << replicator.status();
    f.replicator = std::move(*replicator);
    return f;
  }
};

// --- digests ---------------------------------------------------------------

TEST(ReplDigestTest, FormatParseRoundTrip) {
  const uint64_t value = 0x00ff12ab34cd56efULL;
  const std::string formatted = FormatDigest(value);
  EXPECT_EQ(formatted, "xxh64:00ff12ab34cd56ef");
  auto parsed = ParseDigest(formatted);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, value);

  EXPECT_FALSE(ParseDigest("xxh64:00FF12AB34CD56EF").ok());  // uppercase
  EXPECT_FALSE(ParseDigest("xxh64:00ff12ab34cd56e").ok());   // short
  EXPECT_FALSE(ParseDigest("md5:00ff12ab34cd56ef").ok());    // wrong scheme
  EXPECT_FALSE(ParseDigest("00ff12ab34cd56ef").ok());        // no scheme
}

TEST(ReplDigestTest, FileDigestMatchesBytesDigest) {
  const std::string dir = TempDir("file_digest");
  const std::string path = dir + "/blob.bin";
  std::vector<uint8_t> bytes(4099);
  for (size_t i = 0; i < bytes.size(); ++i) bytes[i] = uint8_t(i * 31);
  ASSERT_TRUE(store::WriteBytesAtomic(bytes, path).ok());
  auto from_file = FileDigest(path);
  ASSERT_TRUE(from_file.ok()) << from_file.status();
  EXPECT_EQ(*from_file, BytesDigest(bytes.data(), bytes.size()));
  fs::remove_all(dir);
}

// --- ReleaseStore listener hook (satellite) --------------------------------

TEST(ReleaseStoreListenerTest, InstallRetireDropEventsInOrder) {
  serve::ReleaseStore store(/*retained_epochs=*/2);
  std::vector<serve::StoreEvent> seen;
  const uint64_t token = store.AddListener(
      [&seen](const serve::StoreEvent& e) { seen.push_back(e); });

  ASSERT_TRUE(store.Publish("rel", DemoBundle(1)).ok());
  ASSERT_TRUE(store.Publish("rel", DemoBundle(2)).ok());
  ASSERT_TRUE(store.Publish("rel", DemoBundle(3)).ok());  // evicts epoch 1
  ASSERT_TRUE(store.Drop("rel").ok());

  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen[0].kind, serve::StoreEvent::Kind::kInstall);
  EXPECT_EQ(seen[0].epoch, 1u);
  ASSERT_NE(seen[0].snapshot, nullptr);  // handed the snapshot directly
  EXPECT_EQ(seen[1].kind, serve::StoreEvent::Kind::kInstall);
  EXPECT_EQ(seen[1].epoch, 2u);
  EXPECT_EQ(seen[2].kind, serve::StoreEvent::Kind::kInstall);
  EXPECT_EQ(seen[2].epoch, 3u);
  EXPECT_EQ(seen[3].kind, serve::StoreEvent::Kind::kRetire);
  EXPECT_EQ(seen[3].epoch, 1u);
  // Drop is one event for the whole release, not one per retained epoch.
  EXPECT_EQ(seen[4].kind, serve::StoreEvent::Kind::kDrop);
  EXPECT_EQ(seen[4].release, "rel");

  store.RemoveListener(token);
  const size_t before = seen.size();
  ASSERT_TRUE(store.Publish("rel", DemoBundle(4)).ok());
  EXPECT_EQ(seen.size(), before);  // quiescent after removal
}

// --- subscribe stream over TCP ---------------------------------------------

TEST(ReplSubscribeTest, ListingThenEventsInPublicationOrder) {
  Primary p = Primary::Make(/*retained_epochs=*/2);
  client::InProcessClient admin(p.engine);
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(1)).ok());

  auto client = client::ConnectTcp("127.0.0.1", p.server->port());
  ASSERT_TRUE(client.ok()) << client.status();
  auto subscription = (*client)->Subscribe();
  ASSERT_TRUE(subscription.ok()) << subscription.status();
  ASSERT_EQ(subscription->releases.size(), 1u);
  EXPECT_EQ(subscription->releases[0].name, "rel");
  ASSERT_EQ(subscription->releases[0].epochs.size(), 1u);
  EXPECT_EQ(subscription->releases[0].epochs[0].epoch, 1u);
  EXPECT_TRUE(
      ParseDigest(subscription->releases[0].epochs[0].digest).ok());

  // Publish twice more: epoch 2 installs, epoch 3 installs + retires 1.
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(2)).ok());
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(3)).ok());

  std::vector<EpochEvent> events;
  for (int spin = 0; spin < 100 && events.size() < 3; ++spin) {
    auto polled = (*client)->PollEvents(100);
    ASSERT_TRUE(polled.ok()) << polled.status();
    events.insert(events.end(), polled->begin(), polled->end());
  }
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EpochEvent::Kind::kPublish);
  EXPECT_EQ(events[0].epoch, 2u);
  EXPECT_TRUE(ParseDigest(events[0].digest).ok());
  EXPECT_EQ(events[1].kind, EpochEvent::Kind::kPublish);
  EXPECT_EQ(events[1].epoch, 3u);
  EXPECT_EQ(events[2].kind, EpochEvent::Kind::kRetire);
  EXPECT_EQ(events[2].epoch, 1u);

  // Unsubscribed sessions never see pushes: a fresh client's queries are
  // undisturbed by the publishes above.
  auto fresh = client::ConnectTcp("127.0.0.1", p.server->port());
  ASSERT_TRUE(fresh.ok());
  auto answer = (*fresh)->Query(DemoQueries("rel"));
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->epoch, 3u);
}

TEST(ReplSubscribeTest, PushInvalidatesStalePin) {
  Primary p = Primary::Make(/*retained_epochs=*/2);
  client::InProcessClient admin(p.engine);
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(1)).ok());

  auto client = client::ConnectTcp("127.0.0.1", p.server->port());
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE((*client)->Subscribe().ok());
  (*client)->Pin("rel", 1);
  ASSERT_TRUE((*client)->PinnedEpoch("rel").has_value());

  auto pinned = (*client)->Query(DemoQueries("rel"));
  ASSERT_TRUE(pinned.ok()) << pinned.status();
  EXPECT_EQ(pinned->epoch, 1u);  // the pin filled in the epoch

  // Age epoch 1 out of the window; the pushed retire clears the pin
  // before the next query instead of it failing STALE_EPOCH.
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(2)).ok());
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(3)).ok());
  bool cleared = false;
  for (int spin = 0; spin < 100 && !cleared; ++spin) {
    ASSERT_TRUE((*client)->PollEvents(100).ok());
    cleared = !(*client)->PinnedEpoch("rel").has_value();
  }
  EXPECT_TRUE(cleared);
  EXPECT_EQ((*client)->pin_invalidations(), 1u);
  ASSERT_TRUE((*client)->LatestKnownEpoch("rel").has_value());
  EXPECT_EQ(*(*client)->LatestKnownEpoch("rel"), 3u);

  auto unpinned = (*client)->Query(DemoQueries("rel"));
  ASSERT_TRUE(unpinned.ok()) << unpinned.status();
  EXPECT_EQ(unpinned->epoch, 3u);  // stepped forward, no STALE_EPOCH
}

// --- snapshot transfer -----------------------------------------------------

TEST(ReplFetchTest, ChunkedFetchReassemblesTheExactImage) {
  Primary p = Primary::Make();
  client::InProcessClient admin(p.engine);
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(1)).ok());

  auto snap = p.store->Get("rel");
  ASSERT_TRUE(snap.ok());
  auto expect = store::SerializeSnapshot(**snap, "rel");
  ASSERT_TRUE(expect.ok()) << expect.status();

  serve::RequestContext context;
  context.snapshots = p.provider.get();
  client::LineProtocolClient client(
      std::make_unique<client::LoopbackTransport>(*p.engine, context));

  std::vector<uint8_t> image;
  std::string digest;
  uint64_t offset = 0;
  for (;;) {
    auto chunk = client.FetchSnapshotChunk("rel", 1, offset, 4096);
    ASSERT_TRUE(chunk.ok()) << chunk.status();
    EXPECT_EQ(chunk->total_bytes, expect->size());
    digest = chunk->digest;
    image.insert(image.end(), chunk->data.begin(), chunk->data.end());
    offset += chunk->data.size();
    if (chunk->eof) break;
    ASSERT_LE(chunk->data.size(), 4096u);
  }
  EXPECT_EQ(image, *expect);
  EXPECT_EQ(digest, FormatDigest(BytesDigest(image.data(), image.size())));

  // Out-of-range offset is a structured error, unknown epochs propagate
  // the store's taxonomy (STALE_EPOCH for aged-out, NOT_FOUND for unknown).
  EXPECT_EQ(client.FetchSnapshotChunk("rel", 1, expect->size() + 1, 4096)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client.FetchSnapshotChunk("rel", 99, 0, 4096).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.FetchSnapshotChunk("nope", 1, 0, 4096).status().code(),
            StatusCode::kNotFound);
}

/// Wraps the loopback transport and corrupts the payload of every
/// fetch_snapshot response WITHOUT fixing the chunk digest — the decoder
/// must reject the chunk as DATA_LOSS before any byte is accepted.
class TamperingTransport : public client::LineTransport {
 public:
  TamperingTransport(serve::QueryEngine& engine,
                     serve::RequestContext context)
      : inner_(engine, std::move(context)) {}

  Result<std::string> RoundTrip(const std::string& request_line) override {
    RECPRIV_ASSIGN_OR_RETURN(std::string response,
                             inner_.RoundTrip(request_line));
    auto parsed = JsonValue::Parse(response);
    if (!parsed.ok() || !parsed->Has("data_b64")) return response;
    auto data = parsed->Get("data_b64");
    auto text = (*data)->AsString();
    if (!text.ok() || text->empty()) return response;
    auto bytes = Base64Decode(*text);
    if (!bytes.ok() || bytes->empty()) return response;
    (*bytes)[0] ^= 0xff;
    parsed->Set("data_b64",
                JsonValue::String(Base64Encode(bytes->data(), bytes->size())));
    return parsed->ToString();
  }

 private:
  client::LoopbackTransport inner_;
};

TEST(ReplFetchTest, TamperedChunkIsStructuredDataLoss) {
  Primary p = Primary::Make();
  client::InProcessClient admin(p.engine);
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(1)).ok());

  serve::RequestContext context;
  context.snapshots = p.provider.get();
  client::LineProtocolClient client(
      std::make_unique<TamperingTransport>(*p.engine, context));
  auto chunk = client.FetchSnapshotChunk("rel", 1, 0, 4096);
  ASSERT_FALSE(chunk.ok());
  EXPECT_EQ(chunk.status().code(), StatusCode::kDataLoss);
}

/// A fake primary whose chunks pass the per-chunk check but whose image
/// digest cannot: it recomputes chunk_digest over corrupted bytes, so only
/// the follower's whole-image verification can catch it.
class CorruptImagePrimary {
 public:
  explicit CorruptImagePrimary(std::shared_ptr<serve::QueryEngine> engine,
                               SnapshotProvider* provider)
      : engine_(std::move(engine)), provider_(provider) {
    auto listener = net::Listener::Bind("127.0.0.1", 0);
    EXPECT_TRUE(listener.ok()) << listener.status();
    listener_ = std::move(*listener);
    thread_ = std::thread([this] { Serve(); });
  }

  ~CorruptImagePrimary() {
    stopping_ = true;
    listener_.Close();
    thread_.join();
  }

  uint16_t port() const { return listener_.port(); }

 private:
  void Serve() {
    while (!stopping_) {
      auto accepted = listener_.Accept(50);
      if (!accepted.ok()) return;  // listener closed
      if (accepted->timed_out) continue;
      net::LineChannel channel(std::move(accepted->fd));
      serve::RequestContext context;
      context.snapshots = provider_;
      context.on_subscribe = [] { return true; };
      while (!stopping_) {
        auto read = channel.ReadLine(50);
        if (!read.ok() || read->event == net::ReadEvent::kEof) break;
        if (read->event != net::ReadEvent::kLine) continue;
        std::string response = serve::HandleRequestLine(
            read->line, *engine_, context, nullptr);
        Corrupt(&response);
        if (!channel.WriteLine(response, 1000).ok()) break;
      }
    }
  }

  /// Flips a payload byte and re-signs the chunk, leaving the advertised
  /// whole-image digest untouched.
  static void Corrupt(std::string* response) {
    auto parsed = JsonValue::Parse(*response);
    if (!parsed.ok() || !parsed->Has("data_b64")) return;
    auto text = (*parsed->Get("data_b64"))->AsString();
    if (!text.ok() || text->empty()) return;
    auto bytes = Base64Decode(*text);
    if (!bytes.ok() || bytes->empty()) return;
    (*bytes)[0] ^= 0xff;
    parsed->Set("data_b64",
                JsonValue::String(Base64Encode(bytes->data(), bytes->size())));
    parsed->Set("chunk_digest",
                JsonValue::String(FormatDigest(
                    BytesDigest(bytes->data(), bytes->size()))));
    *response = parsed->ToString();
  }

  std::shared_ptr<serve::QueryEngine> engine_;
  SnapshotProvider* provider_;
  net::Listener listener_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

TEST(ReplicatorTest, RejectsCorruptImageAndNeverInstalls) {
  auto store = std::make_shared<serve::ReleaseStore>();
  serve::QueryEngineOptions options;
  options.num_threads = 1;
  auto engine = std::make_shared<serve::QueryEngine>(store, options);
  client::InProcessClient admin(engine);
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(1)).ok());
  SnapshotProvider provider(*store);
  CorruptImagePrimary primary(engine, &provider);

  const std::string dir = TempDir("corrupt_image");
  ReplicatorOptions repl_options;
  repl_options.retry.initial_backoff_ms = 1;
  repl_options.retry.max_backoff_ms = 10;
  Follower f = Follower::Make(dir, primary.port(), repl_options);

  // The follower keeps reconnecting and re-failing; give it a few rounds.
  for (int spin = 0; spin < 200; ++spin) {
    if (f.replicator->Stats().digest_mismatches >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const client::ReplicationStats stats = f.replicator->Stats();
  EXPECT_GE(stats.digest_mismatches, 2u);  // rejected on every attempt
  EXPECT_EQ(stats.installs, 0u);           // nothing corrupt was installed
  EXPECT_EQ(f.store->size(), 0u);
  f.replicator->Stop();
  fs::remove_all(dir);
}

// --- follower convergence --------------------------------------------------

TEST(ReplicatorTest, MirrorsPublishesAndDrops) {
  Primary p = Primary::Make();
  client::InProcessClient admin(p.engine);
  ASSERT_TRUE(admin.PublishBundle("alpha", DemoBundle(1)).ok());
  ASSERT_TRUE(admin.PublishBundle("beta", DemoBundle(2)).ok());

  const std::string dir = TempDir("mirrors");
  Follower f = Follower::Make(dir, p.server->port());
  ASSERT_TRUE(f.replicator->WaitForConnected(5000));
  ASSERT_TRUE(f.replicator->WaitForEpoch("alpha", 1, 5000));
  ASSERT_TRUE(f.replicator->WaitForEpoch("beta", 1, 5000));

  // Live churn: a republish and a drop arrive as pushed events.
  ASSERT_TRUE(admin.PublishBundle("alpha", DemoBundle(3)).ok());
  ASSERT_TRUE(admin.Drop("beta").ok());
  ASSERT_TRUE(f.replicator->WaitForEpoch("alpha", 2, 5000));
  for (int spin = 0; spin < 500 && f.store->Get("beta").ok(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(f.store->Get("beta").ok());

  const client::ReplicationStats stats = f.replicator->Stats();
  EXPECT_TRUE(stats.connected);
  EXPECT_EQ(stats.installs, 3u);
  EXPECT_EQ(stats.drops, 1u);
  EXPECT_EQ(stats.digest_mismatches, 0u);
  EXPECT_EQ(stats.lag_epochs, 0u);  // fully caught up
  EXPECT_EQ(stats.lag_ms, 0.0);

  // The follower's file for the served epoch hashes to the primary's
  // advertisement — the on-disk state is bit-identical, not just the
  // answers.
  auto path = f.store->ManagedSnapshotPath("alpha", 2);
  ASSERT_TRUE(path.ok());
  auto file_digest = FileDigest(*path);
  ASSERT_TRUE(file_digest.ok());
  auto primary_snap = p.store->Get("alpha", 2);
  ASSERT_TRUE(primary_snap.ok());
  auto packed = p.provider->Pack("alpha", *primary_snap);
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(*file_digest, packed->digest);

  f.replicator->Stop();
  fs::remove_all(dir);
}

TEST(ReplicatorTest, ConvergesCleanUnderInjectedFaults) {
  Primary p = Primary::Make();
  client::InProcessClient admin(p.engine);
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(1)).ok());
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(2)).ok());
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(3)).ok());

  net::FaultOptions fault_options;
  fault_options.seed = recpriv::testing::HarnessSeed(2015);
  fault_options.drop_rate = 0.03;
  fault_options.disconnect_rate = 0.03;
  fault_options.truncate_rate = 0.03;  // dies mid-line, mid-transfer

  const std::string dir = TempDir("faulted");
  ReplicatorOptions repl_options;
  repl_options.chunk_bytes = 8192;  // many chunk round trips per epoch
  repl_options.retry.initial_backoff_ms = 1;
  repl_options.retry.max_backoff_ms = 20;
  repl_options.fault_injector =
      std::make_shared<net::FaultInjector>(fault_options);
  Follower f = Follower::Make(dir, p.server->port(), repl_options);

  ASSERT_TRUE(f.replicator->WaitForEpoch("rel", 1, 30000));
  ASSERT_TRUE(f.replicator->WaitForEpoch("rel", 2, 30000));
  ASSERT_TRUE(f.replicator->WaitForEpoch("rel", 3, 30000));

  const client::ReplicationStats stats = f.replicator->Stats();
  EXPECT_GE(stats.reconnects, 1u);  // the schedule really fired
  EXPECT_EQ(stats.digest_mismatches, 0u);  // faults never corrupt, only kill

  // Answer-clean: every epoch the follower serves is bit-identical to the
  // primary's.
  client::InProcessClient primary_reader(p.engine);
  client::InProcessClient follower_reader(f.engine);
  for (uint64_t epoch = 1; epoch <= 3; ++epoch) {
    QueryRequest request = DemoQueries("rel");
    request.epoch = epoch;
    auto want = primary_reader.Query(request);
    auto got = follower_reader.Query(request);
    ASSERT_TRUE(want.ok()) << want.status();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(AnswerFingerprint(*want), AnswerFingerprint(*got));
  }

  f.replicator->Stop();
  fs::remove_all(dir);
}

// --- bounded staleness stats contract --------------------------------------

TEST(ReplStatsTest, ReplicationSectionPresentOnlyWhenFollowing) {
  Primary p = Primary::Make();
  client::InProcessClient admin(p.engine);
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(1)).ok());

  // A primary (not following anyone) has no "replication" section — the
  // golden transcripts of non-replicating servers must not change.
  auto primary_client = client::ConnectTcp("127.0.0.1", p.server->port());
  ASSERT_TRUE(primary_client.ok());
  auto primary_stats = (*primary_client)->Stats();
  ASSERT_TRUE(primary_stats.ok()) << primary_stats.status();
  EXPECT_FALSE(primary_stats->replication.has_value());

  // A follower's own serving endpoint reports the section.
  const std::string dir = TempDir("stats_contract");
  Follower f = Follower::Make(dir, p.server->port());
  ASSERT_TRUE(f.replicator->WaitForEpoch("rel", 1, 5000));

  serve::ServerOptions follower_server_options;
  follower_server_options.replication_stats = [r = f.replicator.get()] {
    return r->Stats();
  };
  auto follower_server =
      serve::Server::Start(f.engine, follower_server_options);
  ASSERT_TRUE(follower_server.ok()) << follower_server.status();
  auto follower_client =
      client::ConnectTcp("127.0.0.1", (*follower_server)->port());
  ASSERT_TRUE(follower_client.ok());
  auto follower_stats = (*follower_client)->Stats();
  ASSERT_TRUE(follower_stats.ok()) << follower_stats.status();
  ASSERT_TRUE(follower_stats->replication.has_value());
  const client::ReplicationStats& repl = *follower_stats->replication;
  EXPECT_EQ(repl.primary,
            "127.0.0.1:" + std::to_string(p.server->port()));
  EXPECT_TRUE(repl.connected);
  EXPECT_GE(repl.installs, 1u);
  EXPECT_GE(repl.snapshots_fetched, 1u);
  EXPECT_GE(repl.bytes_fetched, 1u);
  EXPECT_EQ(repl.lag_epochs, 0u);  // caught up => bounded staleness is 0
  EXPECT_EQ(repl.lag_ms, 0.0);

  f.replicator->Stop();
  fs::remove_all(dir);
}

TEST(ReplStatsTest, DisconnectedFollowerReportsNotConnected) {
  // Point a follower at a port nothing listens on: it must keep retrying
  // and report connected=false rather than erroring out.
  auto closed = net::Listener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(closed.ok()) << closed.status();
  const uint16_t dead_port = closed->port();
  closed->Close();

  const std::string dir = TempDir("disconnected");
  ReplicatorOptions repl_options;
  repl_options.retry.initial_backoff_ms = 1;
  repl_options.retry.max_backoff_ms = 10;
  Follower f = Follower::Make(dir, dead_port, repl_options);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const client::ReplicationStats stats = f.replicator->Stats();
  EXPECT_FALSE(stats.connected);
  EXPECT_EQ(stats.installs, 0u);
  f.replicator->Stop();
  fs::remove_all(dir);
}

// --- bit-identity under the workload oracle --------------------------------

TEST(ReplOracleTest, FollowerAnswersBitIdenticalOnBothBackends) {
  Primary p = Primary::Make();
  client::InProcessClient admin(p.engine);
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(7)).ok());
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(8)).ok());

  // The oracle holds the PRIMARY's snapshots: any answer a follower gives
  // must recompute bit-exactly from what the primary published.
  workload::Oracle oracle;
  for (uint64_t epoch = 1; epoch <= 2; ++epoch) {
    auto snap = p.store->Get("rel", epoch);
    ASSERT_TRUE(snap.ok());
    oracle.Register("rel", *snap);
  }

  const std::string dir = TempDir("oracle");
  Follower f = Follower::Make(dir, p.server->port());
  ASSERT_TRUE(f.replicator->WaitForEpoch("rel", 2, 5000));

  serve::ServerOptions follower_server_options;
  auto follower_server =
      serve::Server::Start(f.engine, follower_server_options);
  ASSERT_TRUE(follower_server.ok());

  const QueryRequest request = DemoQueries("rel");

  // Backend 1: in-process client over the follower's engine.
  client::InProcessClient in_process(f.engine);
  auto local = in_process.Query(request);
  ASSERT_TRUE(local.ok()) << local.status();
  std::string detail;
  EXPECT_EQ(oracle.Verify("rel", request.queries, *local, &detail),
            workload::Oracle::Verdict::kVerified)
      << detail;

  // Backend 2: the full TCP wire to the follower's server.
  auto tcp = client::ConnectTcp("127.0.0.1", (*follower_server)->port());
  ASSERT_TRUE(tcp.ok());
  auto remote = (*tcp)->Query(request);
  ASSERT_TRUE(remote.ok()) << remote.status();
  EXPECT_EQ(oracle.Verify("rel", request.queries, *remote, &detail),
            workload::Oracle::Verdict::kVerified)
      << detail;

  // And the two backends agree with each other and with the primary.
  auto from_primary = admin.Query(request);
  ASSERT_TRUE(from_primary.ok());
  EXPECT_EQ(AnswerFingerprint(*local), AnswerFingerprint(*remote));
  EXPECT_EQ(AnswerFingerprint(*local), AnswerFingerprint(*from_primary));

  f.replicator->Stop();
  fs::remove_all(dir);
}

// --- binary frames (wire "hello" negotiation) -------------------------------

TEST(BinaryFrameTest, TranscriptMatchesJsonSessionByteForByte) {
  Primary p = Primary::Make();
  client::InProcessClient admin(p.engine);
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(1)).ok());
  // Warm the answer cache so both sessions' query responses report the
  // same hit/miss counters regardless of which session asks first.
  ASSERT_TRUE(admin.Query(DemoQueries("rel")).ok());

  auto json_session =
      client::TcpTransport::Connect("127.0.0.1", p.server->port());
  ASSERT_TRUE(json_session.ok()) << json_session.status();
  auto bin_session =
      client::TcpTransport::Connect("127.0.0.1", p.server->port());
  ASSERT_TRUE(bin_session.ok()) << bin_session.status();
  auto hello = (*bin_session)
                   ->RoundTrip(serve::wire::EncodeHelloRequest("binary", 1)
                                   .ToString());
  ASSERT_TRUE(hello.ok()) << hello.status();
  EXPECT_NE(hello->find("\"frame\":\"binary\""), std::string::npos) << *hello;
  ASSERT_TRUE((*bin_session)->SetBinaryFrame(true).ok());

  // The golden-transcript contract: the same request bytes produce the
  // same response bytes on a line-framed and a binary-framed session —
  // success shapes, v1 shapes, structured errors, and MALFORMED alike
  // (the "stats" op is excluded: its counters are session-dependent).
  const std::vector<std::string> transcript = {
      "{\"v\":2,\"id\":10,\"op\":\"list\"}",
      "{\"v\":2,\"id\":11,\"op\":\"schema\",\"release\":\"rel\"}",
      serve::wire::EncodeQueryRequest(DemoQueries("rel"), 12).ToString(),
      "{\"v\":2,\"id\":13,\"op\":\"schema\",\"release\":\"nope\"}",
      "{\"v\":2,\"id\":14,\"op\":\"frobnicate\"}",
      "this is not json",
      "{\"op\":\"list\"}",  // a v1-shaped request rides frames unchanged
  };
  for (const std::string& request : transcript) {
    auto from_json = (*json_session)->RoundTrip(request);
    auto from_binary = (*bin_session)->RoundTrip(request);
    ASSERT_TRUE(from_json.ok()) << from_json.status();
    ASSERT_TRUE(from_binary.ok()) << from_binary.status();
    EXPECT_EQ(*from_json, *from_binary) << "request: " << request;
  }
}

TEST(BinaryFrameTest, FetchSnapshotChunkRidesAsRawAttachment) {
  Primary p = Primary::Make();
  client::InProcessClient admin(p.engine);
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(1)).ok());
  auto snap = p.store->Get("rel");
  ASSERT_TRUE(snap.ok());
  auto expect = store::SerializeSnapshot(**snap, "rel");
  ASSERT_TRUE(expect.ok()) << expect.status();

  // Fetch the image over a JSON session and over a binary session; the
  // reassembled bytes must be identical, and the binary path must carry
  // the chunk as a raw frame attachment ("data_bytes"), never base64.
  auto fetch_image = [&](client::LineProtocolClient& client) {
    std::vector<uint8_t> image;
    uint64_t offset = 0;
    for (;;) {
      auto chunk = client.FetchSnapshotChunk("rel", 1, offset, 4096);
      EXPECT_TRUE(chunk.ok()) << chunk.status();
      if (!chunk.ok()) break;
      image.insert(image.end(), chunk->data.begin(), chunk->data.end());
      offset += chunk->data.size();
      if (chunk->eof) break;
    }
    return image;
  };

  auto json_client = client::ConnectTcp("127.0.0.1", p.server->port());
  ASSERT_TRUE(json_client.ok());
  const std::vector<uint8_t> via_json = fetch_image(**json_client);
  EXPECT_EQ(via_json, *expect);

  auto bin_client = client::ConnectTcp("127.0.0.1", p.server->port());
  ASSERT_TRUE(bin_client.ok());
  auto negotiated = (*bin_client)->NegotiateBinaryFrame();
  ASSERT_TRUE(negotiated.ok()) << negotiated.status();
  EXPECT_TRUE(*negotiated);
  const std::vector<uint8_t> via_binary = fetch_image(**bin_client);
  EXPECT_EQ(via_binary, *expect);

  // Peek under the client: the raw binary-framed response says
  // "data_bytes" and carries a non-empty attachment.
  auto raw = client::TcpTransport::Connect("127.0.0.1", p.server->port());
  ASSERT_TRUE(raw.ok());
  auto hello = (*raw)->RoundTrip(
      serve::wire::EncodeHelloRequest("binary", 1).ToString());
  ASSERT_TRUE(hello.ok()) << hello.status();
  ASSERT_TRUE((*raw)->SetBinaryFrame(true).ok());
  auto response = (*raw)->RoundTrip(
      serve::wire::EncodeFetchSnapshotRequest("rel", 1, 0, 4096, 2)
          .ToString());
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_NE(response->find("\"data_bytes\":"), std::string::npos) << *response;
  EXPECT_EQ(response->find("\"data_b64\""), std::string::npos) << *response;
  ASSERT_NE((*raw)->LastAttachment(), nullptr);
  EXPECT_EQ((*raw)->LastAttachment()->size(),
            std::min<size_t>(4096, expect->size()));
}

TEST(BinaryFrameTest, PushedEventsRideFrames) {
  Primary p = Primary::Make();
  client::InProcessClient admin(p.engine);
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(1)).ok());

  auto client = client::ConnectTcp("127.0.0.1", p.server->port());
  ASSERT_TRUE(client.ok());
  auto negotiated = (*client)->NegotiateBinaryFrame();
  ASSERT_TRUE(negotiated.ok()) << negotiated.status();
  EXPECT_TRUE(*negotiated);
  auto sub = (*client)->Subscribe();
  ASSERT_TRUE(sub.ok()) << sub.status();
  ASSERT_EQ(sub->releases.size(), 1u);

  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(2)).ok());
  std::vector<EpochEvent> events;
  for (int spin = 0; spin < 100 && events.empty(); ++spin) {
    auto polled = (*client)->PollEvents(100);
    ASSERT_TRUE(polled.ok()) << polled.status();
    events.insert(events.end(), polled->begin(), polled->end());
  }
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].kind, EpochEvent::Kind::kPublish);
  EXPECT_EQ(events[0].release, "rel");
  EXPECT_EQ(events[0].epoch, 2u);
}

TEST(BinaryFrameTest, LoopbackDegradesToJsonGracefully) {
  Primary p = Primary::Make();
  client::InProcessClient admin(p.engine);
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(1)).ok());
  // A loopback transport cannot switch framings: negotiation reports a
  // JSON session without touching the wire, and everything still works.
  client::LineProtocolClient client(
      std::make_unique<client::LoopbackTransport>(*p.engine));
  auto negotiated = client.NegotiateBinaryFrame();
  ASSERT_TRUE(negotiated.ok()) << negotiated.status();
  EXPECT_FALSE(*negotiated);
  EXPECT_TRUE(client.List().ok());
}

TEST(ReplicatorTest, MirrorsOverBinaryFrames) {
  Primary p = Primary::Make();
  client::InProcessClient admin(p.engine);
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(1)).ok());

  const std::string dir = TempDir("binary_frames");
  ReplicatorOptions repl_options;
  repl_options.binary_frame = true;
  Follower f = Follower::Make(dir, p.server->port(), repl_options);
  ASSERT_TRUE(f.replicator->WaitForConnected(5000));
  ASSERT_TRUE(f.replicator->WaitForEpoch("rel", 1, 5000));

  // Live publish arrives as a framed push and fetches as raw attachments;
  // the installed file still hashes to the primary's advertisement.
  ASSERT_TRUE(admin.PublishBundle("rel", DemoBundle(2)).ok());
  ASSERT_TRUE(f.replicator->WaitForEpoch("rel", 2, 5000));
  auto path = f.store->ManagedSnapshotPath("rel", 2);
  ASSERT_TRUE(path.ok());
  auto file_digest = FileDigest(*path);
  ASSERT_TRUE(file_digest.ok());
  auto primary_snap = p.store->Get("rel", 2);
  ASSERT_TRUE(primary_snap.ok());
  auto packed = p.provider->Pack("rel", *primary_snap);
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(*file_digest, packed->digest);
  EXPECT_EQ(f.replicator->Stats().digest_mismatches, 0u);

  f.replicator->Stop();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace recpriv::repl
