// Tests for rho1-rho2 privacy (amplification) and its interplay with the
// uniform perturbation matrix.

#include "core/rho_privacy.h"

#include <gtest/gtest.h>

#include "perturb/matrix_perturbation.h"

namespace recpriv::core {
namespace {

TEST(RhoPrivacyTest, Validation) {
  EXPECT_TRUE((RhoPrivacy{0.1, 0.5}).Validate().ok());
  EXPECT_FALSE((RhoPrivacy{0.5, 0.5}).Validate().ok());
  EXPECT_FALSE((RhoPrivacy{0.6, 0.5}).Validate().ok());
  EXPECT_FALSE((RhoPrivacy{0.0, 0.5}).Validate().ok());
  EXPECT_FALSE((RhoPrivacy{0.1, 1.0}).Validate().ok());
}

TEST(RhoPrivacyTest, BreachBoundClosedForm) {
  // B = rho2 (1 - rho1) / (rho1 (1 - rho2)).
  RhoPrivacy target{0.1, 0.5};
  EXPECT_NEAR(target.BreachBound(), 0.5 * 0.9 / (0.1 * 0.5), 1e-12);  // 9
  RhoPrivacy even{0.25, 0.75};
  EXPECT_NEAR(even.BreachBound(), 0.75 * 0.75 / (0.25 * 0.25), 1e-12);  // 9
}

TEST(RhoPrivacyTest, UniformGammaMatchesMatrixOperator) {
  for (double p : {0.2, 0.5, 0.8}) {
    for (size_t m : {2u, 10u, 50u}) {
      auto mp = *recpriv::perturb::MatrixPerturbation::Uniform(m, p);
      EXPECT_NEAR(UniformAmplificationGamma(p, m), mp.AmplificationGamma(),
                  1e-9)
          << "p=" << p << " m=" << m;
    }
  }
}

TEST(RhoPrivacyTest, MaxRetentionClosedForm) {
  // With B = 9 and m = 10: p_max = 8 / 18.
  RhoPrivacy target{0.1, 0.5};
  auto p_max = MaxRetentionForRho(target, 10);
  ASSERT_TRUE(p_max.ok());
  EXPECT_NEAR(*p_max, 8.0 / 18.0, 1e-12);
}

TEST(RhoPrivacyTest, MaxRetentionIsBoundary) {
  RhoPrivacy target{0.1, 0.5};
  const size_t m = 10;
  const double p_max = *MaxRetentionForRho(target, m);
  EXPECT_TRUE(*UniformSatisfiesRho(target, p_max - 1e-9, m));
  EXPECT_FALSE(*UniformSatisfiesRho(target, p_max + 1e-6, m));
}

TEST(RhoPrivacyTest, LargerDomainsNeedSmallerRetention) {
  RhoPrivacy target{0.1, 0.5};
  EXPECT_GT(*MaxRetentionForRho(target, 2), *MaxRetentionForRho(target, 50));
}

TEST(RhoPrivacyTest, LooserTargetsAllowMoreRetention) {
  RhoPrivacy strict{0.1, 0.3};
  RhoPrivacy loose{0.1, 0.8};
  EXPECT_LT(*MaxRetentionForRho(strict, 10), *MaxRetentionForRho(loose, 10));
}

TEST(RhoPrivacyTest, SatisfiesRejectsBadArguments) {
  RhoPrivacy target{0.1, 0.5};
  EXPECT_FALSE(UniformSatisfiesRho(target, 0.0, 10).ok());
  EXPECT_FALSE(UniformSatisfiesRho(target, 0.5, 1).ok());
  EXPECT_FALSE(UniformSatisfiesRho(RhoPrivacy{0.7, 0.3}, 0.5, 10).ok());
}

/// Semantic check via Bayes: with a uniform prior concentrated to rho1 on
/// one value, the worst posterior after observing any output must stay
/// below rho2 when gamma <= B. We verify on the uniform operator at the
/// derived p_max.
TEST(RhoPrivacyTest, PosteriorStaysBelowRho2AtDerivedP) {
  RhoPrivacy target{0.2, 0.6};
  const size_t m = 4;
  const double p = *MaxRetentionForRho(target, m);
  auto mp = *recpriv::perturb::MatrixPerturbation::Uniform(m, p);
  // Prior: Pr[SA = 0] = rho1, rest uniform.
  std::vector<double> prior(m, (1.0 - target.rho1) / double(m - 1));
  prior[0] = target.rho1;
  for (size_t w = 0; w < m; ++w) {
    double joint0 = mp.matrix().at(w, 0) * prior[0];
    double total = 0.0;
    for (size_t u = 0; u < m; ++u) total += mp.matrix().at(w, u) * prior[u];
    EXPECT_LE(joint0 / total, target.rho2 + 1e-9) << "output " << w;
  }
}

}  // namespace
}  // namespace recpriv::core
