// The workload subsystem's own contract: scenario specs round-trip through
// JSON, generation is a pure function of the spec (byte-identical streams
// and record files), record/replay reproduces the exact op streams, and
// the driver runs every builtin shape answer-clean — zero oracle
// mismatches — in-process, over TCP, and with the micro-batching scheduler
// underneath, with churn surfacing only the legal error taxonomy.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "table/flat_group_index.h"
#include "testing_util.h"
#include "workload/driver.h"
#include "workload/generator.h"
#include "workload/scenario.h"
#include "workload/synthetic.h"

namespace recpriv::workload {
namespace {

/// A deliberately small scenario for fast driver runs.
ScenarioSpec SmallScenario(uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "small";
  spec.seed = seed;
  for (size_t i = 0; i < 2; ++i) {
    SyntheticReleaseSpec r;
    r.name = "r" + std::to_string(i);
    r.data_seed = seed + i;
    r.records = 600;
    r.public_domains = {3, 4};
    r.sa_domain = 3;
    spec.releases.push_back(std::move(r));
  }
  spec.clients = 3;
  spec.ops_per_client = 15;
  spec.queries_per_request = 2;
  return spec;
}

std::string FileContents(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(WorkloadScenarioTest, JsonRoundTripIsLossless) {
  auto spec = BuiltinScenario("republish_churn", 77);
  ASSERT_TRUE(spec.ok());
  const std::string once = ScenarioToJson(*spec).ToString(2);
  auto parsed = ScenarioFromJson(ScenarioToJson(*spec));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(ScenarioToJson(*parsed).ToString(2), once);
}

TEST(WorkloadScenarioTest, SaveLoadRoundTrips) {
  auto spec = BuiltinScenario("hot_release_zipf", 5);
  ASSERT_TRUE(spec.ok());
  const std::string path = TempPath("scenario.json");
  ASSERT_TRUE(SaveScenario(*spec, path).ok());
  auto loaded = LoadScenario(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(ScenarioToJson(*loaded).ToString(),
            ScenarioToJson(*spec).ToString());
  std::remove(path.c_str());
}

TEST(WorkloadScenarioTest, UnknownProfileIsNotFound) {
  auto spec = BuiltinScenario("no_such_profile");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kNotFound);
}

TEST(WorkloadGeneratorTest, GenerationIsDeterministic) {
  auto spec = BuiltinScenario("republish_churn", 123);
  ASSERT_TRUE(spec.ok());
  auto a = GenerateWorkload(*spec);
  auto b = GenerateWorkload(*spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const std::string path_a = TempPath("workload_a.jsonl");
  const std::string path_b = TempPath("workload_b.jsonl");
  ASSERT_TRUE(WriteWorkload(*a, path_a).ok());
  ASSERT_TRUE(WriteWorkload(*b, path_b).ok());
  const std::string bytes = FileContents(path_a);
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, FileContents(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(WorkloadGeneratorTest, DifferentSeedsDiverge) {
  auto a = GenerateWorkload(*BuiltinScenario("steady_uniform", 1));
  auto b = GenerateWorkload(*BuiltinScenario("steady_uniform", 2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const std::string path_a = TempPath("seed_a.jsonl");
  const std::string path_b = TempPath("seed_b.jsonl");
  ASSERT_TRUE(WriteWorkload(*a, path_a).ok());
  ASSERT_TRUE(WriteWorkload(*b, path_b).ok());
  EXPECT_NE(FileContents(path_a), FileContents(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(WorkloadGeneratorTest, RecordReplayReproducesTheStreams) {
  auto spec = BuiltinScenario("republish_churn", 9);
  ASSERT_TRUE(spec.ok());
  auto generated = GenerateWorkload(*spec);
  ASSERT_TRUE(generated.ok());
  const std::string path = TempPath("replay.jsonl");
  ASSERT_TRUE(WriteWorkload(*generated, path).ok());
  auto replayed = ReadWorkload(path);
  ASSERT_TRUE(replayed.ok()) << replayed.status();

  // Round-tripping the replayed workload yields the same bytes: the op
  // streams survived intact, writer stream included.
  const std::string path2 = TempPath("replay2.jsonl");
  ASSERT_TRUE(WriteWorkload(*replayed, path2).ok());
  EXPECT_EQ(FileContents(path), FileContents(path2));
  EXPECT_EQ(replayed->writer_ops.size(), spec->churn.writer_ops);

  // Publish seeds must survive against the IN-MEMORY originals, not just
  // read->write idempotence: a seed that rounded through the JSON number
  // representation would make the replay republish different data than
  // the live run that produced the recording.
  ASSERT_EQ(replayed->writer_ops.size(), generated->writer_ops.size());
  for (size_t i = 0; i < generated->writer_ops.size(); ++i) {
    EXPECT_EQ(replayed->writer_ops[i].publish_seed,
              generated->writer_ops[i].publish_seed)
        << "writer op " << i;
  }
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(WorkloadGeneratorTest, BuiltinProfilesAllGenerate) {
  for (const std::string& name : BuiltinScenarioNames()) {
    auto spec = BuiltinScenario(name, 3);
    ASSERT_TRUE(spec.ok()) << name;
    auto generated = GenerateWorkload(*spec);
    ASSERT_TRUE(generated.ok()) << name;
    EXPECT_EQ(generated->client_ops.size(), spec->clients) << name;
    for (size_t c = 0; c < generated->client_ops.size(); ++c) {
      // Abusive clients (qos.abusive_clients leading streams) run at the
      // declared multiplier; everyone else at ops_per_client exactly.
      const size_t expected = c < spec->qos.abusive_clients
                                  ? spec->ops_per_client *
                                        spec->qos.abusive_ops_multiplier
                                  : spec->ops_per_client;
      EXPECT_EQ(generated->client_ops[c].size(), expected)
          << name << " client " << c;
    }
  }
}

TEST(WorkloadSyntheticTest, RawTableIsDeterministicAndShaped) {
  SyntheticReleaseSpec spec;
  spec.records = 500;
  spec.public_domains = {3, 5};
  spec.sa_domain = 4;
  auto a = MakeRawTable(spec);
  auto b = MakeRawTable(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_rows(), 500u);
  ASSERT_EQ(a->num_columns(), 3u);
  for (size_t col = 0; col < a->num_columns(); ++col) {
    EXPECT_EQ(a->column(col), b->column(col)) << "column " << col;
  }
  // Groups genuinely differ in SA mix (the rotation in MakeRawTable).
  const auto index = table::FlatGroupIndex::Build(*a);
  EXPECT_GT(index.num_groups(), 1u);
}

TEST(WorkloadSyntheticTest, RepublishKeepsDataChangesNoise) {
  SyntheticReleaseSpec spec;
  spec.records = 400;
  auto bundle_a = MakeBundle(spec, /*perturb_seed=*/1);
  auto bundle_b = MakeBundle(spec, /*perturb_seed=*/2);
  ASSERT_TRUE(bundle_a.ok());
  ASSERT_TRUE(bundle_b.ok());
  // Same NA data...
  for (size_t col = 0; col + 1 < bundle_a->data.num_columns(); ++col) {
    EXPECT_EQ(bundle_a->data.column(col), bundle_b->data.column(col));
  }
  // ...different perturbed SA columns (400 records: a collision of the
  // whole column across seeds is practically impossible).
  EXPECT_NE(bundle_a->data.column(bundle_a->data.num_columns() - 1),
            bundle_b->data.column(bundle_b->data.num_columns() - 1));
}

TEST(WorkloadDriverTest, SteadyScenarioRunsAnswerClean) {
  DriverOptions options;
  options.engine.num_threads = 2;
  auto report = RunScenario(SmallScenario(11), options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->mismatches, 0u);
  EXPECT_EQ(report->unknown_epochs, 0u);
  EXPECT_EQ(report->hard_failures, 0u);
  EXPECT_EQ(report->requests, 3u * 15u);
  EXPECT_EQ(report->queries, 3u * 15u * 2u);
  // No churn: every request verified, no error responses at all.
  EXPECT_EQ(report->verified, report->requests);
  EXPECT_TRUE(report->errors.empty());
  EXPECT_EQ(report->publishes, 2u);
}

TEST(WorkloadDriverTest, ReplayedWorkloadRunsIdentically) {
  const ScenarioSpec spec = SmallScenario(13);
  DriverOptions options;
  options.engine.num_threads = 2;
  const std::string path = TempPath("driver_replay.jsonl");
  auto direct = RunScenario(spec, options, path);
  ASSERT_TRUE(direct.ok()) << direct.status();
  auto workload = ReadWorkload(path);
  ASSERT_TRUE(workload.ok());
  auto replayed = RunWorkload(*workload, options);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(replayed->requests, direct->requests);
  EXPECT_EQ(replayed->verified, direct->verified);
  EXPECT_EQ(replayed->mismatches, 0u);
  std::remove(path.c_str());
}

TEST(WorkloadDriverTest, ChurnSurfacesOnlyTheLegalErrorTaxonomy) {
  auto spec = BuiltinScenario("republish_churn", 21);
  ASSERT_TRUE(spec.ok());
  // Shrink for test runtime; keep the churn character.
  spec->ops_per_client = 25;
  spec->churn.writer_ops = 15;
  spec->churn.pacing_us = 200;
  DriverOptions options;
  options.engine.num_threads = 2;
  auto report = RunScenario(*spec, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->mismatches, 0u)
      << (report->mismatch_details.empty() ? std::string()
                                           : report->mismatch_details[0]);
  EXPECT_EQ(report->unknown_epochs, 0u);
  EXPECT_EQ(report->hard_failures, 0u);
  for (const auto& [code, count] : report->errors) {
    EXPECT_TRUE(code == "NOT_FOUND" || code == "STALE_EPOCH")
        << code << "=" << count;
  }
  EXPECT_GT(report->publishes, 2u);
}

TEST(WorkloadDriverTest, TcpDriverRunsAnswerClean) {
  DriverOptions options;
  options.engine.num_threads = 2;
  options.over_tcp = true;
  auto report = RunScenario(SmallScenario(17), options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->mismatches, 0u);
  EXPECT_EQ(report->hard_failures, 0u);
  EXPECT_EQ(report->verified, report->requests);
}

TEST(WorkloadDriverTest, MicroBatchedDriverIsCleanAndCoalesces) {
  auto spec = BuiltinScenario("burst_same_release", 29);
  ASSERT_TRUE(spec.ok());
  spec->ops_per_client = 30;
  DriverOptions options;
  options.engine.num_threads = 2;
  options.engine.micro_batch_window_us = 200;
  auto report = RunScenario(*spec, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->mismatches, 0u);
  EXPECT_EQ(report->hard_failures, 0u);
  ASSERT_TRUE(report->scheduler.has_value());
  EXPECT_EQ(report->scheduler->window_us, 200u);
  EXPECT_GT(report->scheduler->submissions, 0u);
  // A burst profile must actually fuse: fewer engine batches than
  // submissions (coalescing > 0 would flake only on a pathologically
  // loaded machine; batches < submissions is the same fact, robustly).
  EXPECT_LT(report->scheduler->batches, report->scheduler->submissions);
}

}  // namespace
}  // namespace recpriv::workload
