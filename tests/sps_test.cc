// Tests for the SPS (Sampling-Perturbing-Scaling) enforcement algorithm:
// frequency preservation (Fact 1), size preservation (Scaling), the privacy
// guarantee (Theorem 4) via the sample-size cap, the utility guarantee
// (Theorem 5, unbiasedness) empirically, and record-vs-count path agreement.

#include "core/sps.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "perturb/mle.h"
#include "table/schema.h"

namespace recpriv::core {
namespace {

using recpriv::perturb::UniformPerturbation;
using recpriv::table::Attribute;
using recpriv::table::Dictionary;
using recpriv::table::GroupIndex;
using recpriv::table::Schema;
using recpriv::table::SchemaPtr;
using recpriv::table::Table;

PrivacyParams Params(double lambda, double delta, double p, size_t m) {
  PrivacyParams params;
  params.lambda = lambda;
  params.delta = delta;
  params.retention_p = p;
  params.domain_m = m;
  return params;
}

TEST(FrequencyPreservingSampleTest, ExactWhenTauTimesCountsAreIntegral) {
  Rng rng(1);
  std::vector<uint64_t> counts{100, 50, 50};
  auto sample = FrequencyPreservingSample(counts, 0.5, rng);
  EXPECT_EQ(sample, (std::vector<uint64_t>{50, 25, 25}));
}

TEST(FrequencyPreservingSampleTest, FractionalPartsAverageOut) {
  std::vector<uint64_t> counts{10, 10};
  const double tau = 0.35;
  Rng rng(7);
  double total = 0.0;
  const int reps = 20000;
  for (int i = 0; i < reps; ++i) {
    auto s = FrequencyPreservingSample(counts, tau, rng);
    total += double(s[0] + s[1]);
  }
  EXPECT_NEAR(total / reps, 7.0, 0.05);  // E[|g1|] = tau * |g|
}

TEST(FrequencyPreservingSampleTest, NeverExceedsAvailableRecords) {
  Rng rng(3);
  std::vector<uint64_t> counts{3, 1};
  for (int i = 0; i < 1000; ++i) {
    auto s = FrequencyPreservingSample(counts, 0.999, rng);
    EXPECT_LE(s[0], 3u);
    EXPECT_LE(s[1], 1u);
  }
}

TEST(ScaleCountsTest, IntegralFactorIsExact) {
  Rng rng(5);
  std::vector<uint64_t> observed{7, 3};
  EXPECT_EQ(ScaleCounts(observed, 3.0, rng),
            (std::vector<uint64_t>{21, 9}));
}

TEST(ScaleCountsTest, FractionalFactorIsUnbiased) {
  Rng rng(9);
  std::vector<uint64_t> observed{100};
  double total = 0.0;
  const int reps = 20000;
  for (int i = 0; i < reps; ++i) {
    total += double(ScaleCounts(observed, 2.3, rng)[0]);
  }
  EXPECT_NEAR(total / reps, 230.0, 1.0);
}

TEST(SpsCountsTest, SmallGroupBypassesSampling) {
  // A group below s_g is perturbed as-is: output size equals input size.
  auto params = Params(0.3, 0.3, 0.5, 10);
  std::vector<uint64_t> counts(10, 2);  // |g| = 20, far below s_g
  Rng rng(11);
  auto r = SpsPerturbGroupCounts(params, counts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->sampled);
  uint64_t total = 0;
  for (uint64_t c : r->observed) total += c;
  EXPECT_EQ(total, 20u);
}

TEST(SpsCountsTest, LargeGroupIsSampled) {
  auto params = Params(0.3, 0.3, 0.5, 2);
  std::vector<uint64_t> counts{8000, 2000};  // f = 0.8 -> s_g ~ 100
  Rng rng(13);
  auto r = SpsPerturbGroupCounts(params, counts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->sampled);
  // Sample size ~ s_g.
  const double s_g = MaxGroupSize(params, 0.8);
  EXPECT_NEAR(double(r->sample_size), s_g, 0.15 * s_g + 2.0);
  // Scaled output returns to ~ the original size.
  uint64_t total = 0;
  for (uint64_t c : r->observed) total += c;
  EXPECT_NEAR(double(total), 10000.0, 0.15 * 10000.0);
}

TEST(SpsCountsTest, SampleSizeNeverExceedsThreshold) {
  // Theorem 4 hinges on |g1| <= ~s_g: every perturbed record count in a
  // sampled group stays near the cap across repetitions.
  auto params = Params(0.3, 0.3, 0.5, 2);
  std::vector<uint64_t> counts{5000, 5000};  // f = 0.5
  const double s_g = MaxGroupSize(params, 0.5);
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    auto r = *SpsPerturbGroupCounts(params, counts, rng);
    ASSERT_TRUE(r.sampled);
    // Rounding adds at most one record per SA value.
    EXPECT_LE(double(r.sample_size), s_g + 2.0);
  }
}

TEST(SpsCountsTest, EmptyGroup) {
  auto params = Params(0.3, 0.3, 0.5, 3);
  Rng rng(19);
  const std::vector<uint64_t> zero{0, 0, 0};
  auto r = SpsPerturbGroupCounts(params, zero, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->sampled);
  EXPECT_EQ(r->observed, (std::vector<uint64_t>{0, 0, 0}));
}

TEST(SpsCountsTest, ArityValidation) {
  auto params = Params(0.3, 0.3, 0.5, 3);
  Rng rng(1);
  const std::vector<uint64_t> two{1, 2};
  EXPECT_FALSE(SpsPerturbGroupCounts(params, two, rng).ok());
}

TEST(SpsCountsTest, UnbiasedReconstructionAfterSps) {
  // Theorem 5: the MLE from the SPS output is an unbiased estimator of the
  // original frequency, despite sampling and scaling.
  auto params = Params(0.3, 0.3, 0.5, 2);
  const UniformPerturbation up{params.retention_p, params.domain_m};
  std::vector<uint64_t> counts{7000, 3000};
  Rng rng(23);
  const int reps = 4000;
  double sum = 0.0;
  for (int i = 0; i < reps; ++i) {
    auto r = *SpsPerturbGroupCounts(params, counts, rng);
    uint64_t size = r.observed[0] + r.observed[1];
    ASSERT_GT(size, 0u);
    sum += recpriv::perturb::MleFrequency(up, r.observed[0], size);
  }
  // The estimator is noisy per run (only ~s_g random trials), but the mean
  // over runs must converge to f = 0.7.
  EXPECT_NEAR(sum / reps, 0.7, 0.01);
}

SchemaPtr TwoGroupSchema() {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"G", *Dictionary::FromValues({"a", "b"})});
  attrs.push_back(Attribute{"SA", *Dictionary::FromValues({"s0", "s1"})});
  return std::make_shared<Schema>(*Schema::Make(std::move(attrs), 1));
}

Table TwoGroupTable(uint64_t big, uint64_t small) {
  Table t(TwoGroupSchema());
  // Group "a": 80% s0; group "b": 50% s0.
  for (uint64_t i = 0; i < big; ++i) {
    uint32_t sa = (i % 10) < 8 ? 0 : 1;
    EXPECT_TRUE(t.AppendRow(std::vector<uint32_t>{0, sa}).ok());
  }
  for (uint64_t i = 0; i < small; ++i) {
    EXPECT_TRUE(t.AppendRow(std::vector<uint32_t>{1, uint32_t(i % 2)}).ok());
  }
  return t;
}

TEST(SpsTableTest, PreservesSchemaAndRoughSize) {
  auto params = Params(0.3, 0.3, 0.5, 2);
  Table input = TwoGroupTable(5000, 20);
  Rng rng(29);
  auto r = SpsPerturbTable(params, input, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.schema(), input.schema());
  EXPECT_EQ(r->stats.records_in, 5020u);
  EXPECT_EQ(r->stats.num_groups, 2u);
  EXPECT_EQ(r->stats.groups_sampled, 1u);  // only the big group violates
  EXPECT_NEAR(double(r->table.num_rows()), 5020.0, 0.15 * 5020.0);
}

TEST(SpsTableTest, NaColumnsNeverChange) {
  auto params = Params(0.3, 0.3, 0.5, 2);
  Table input = TwoGroupTable(2000, 100);
  Rng rng(31);
  auto r = *SpsPerturbTable(params, input, rng);
  // Per-group output sizes ~ input sizes; NA codes only from {0,1}.
  GroupIndex out_idx = GroupIndex::Build(r.table);
  EXPECT_EQ(out_idx.num_groups(), 2u);
  for (const auto& g : out_idx.groups()) {
    EXPECT_LT(g.na_codes[0], 2u);
  }
}

TEST(SpsTableTest, OutputGroupsSatisfyEffectiveTrialCap) {
  // The published group may have |g2*| ~ |g|, but it must be produced from
  // <= s_g independent trials; we can't observe trials directly, so check
  // the stats: records_sampled ~ s_g per sampled group.
  auto params = Params(0.3, 0.3, 0.5, 2);
  Table input = TwoGroupTable(8000, 10);
  Rng rng(37);
  auto r = *SpsPerturbTable(params, input, rng);
  ASSERT_EQ(r.stats.groups_sampled, 1u);
  const double s_g = MaxGroupSize(params, 0.8);
  EXPECT_LE(double(r.stats.records_sampled), s_g + 2.0);
}

TEST(SpsTableTest, CountAndRecordPathsAgreeInDistribution) {
  auto params = Params(0.3, 0.3, 0.5, 2);
  std::vector<uint64_t> counts{4000, 1000};
  Table input(TwoGroupSchema());
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(
        input.AppendRow(std::vector<uint32_t>{0, i < 4000 ? 0u : 1u}).ok());
  }
  Rng rng_counts(41), rng_table(43);
  const int reps = 300;
  double counts_mean = 0.0, table_mean = 0.0;
  for (int i = 0; i < reps; ++i) {
    auto rc = *SpsPerturbGroupCounts(params, counts, rng_counts);
    counts_mean += double(rc.observed[0]);
    auto rt = *SpsPerturbTable(params, input, rng_table);
    uint64_t s0 = 0;
    const auto& sa_col = rt.table.column(1);
    for (uint32_t v : sa_col) s0 += (v == 0);
    table_mean += double(s0);
  }
  counts_mean /= reps;
  table_mean /= reps;
  EXPECT_NEAR(counts_mean, table_mean, 0.04 * counts_mean);
}

TEST(SpsTableTest, DomainMismatchRejected) {
  auto params = Params(0.3, 0.3, 0.5, 7);
  Table input(TwoGroupSchema());
  Rng rng(1);
  EXPECT_FALSE(SpsPerturbTable(params, input, rng).ok());
}

struct SpsGridCase {
  double lambda, delta, p;
};

class SpsPrivacyGridTest : public ::testing::TestWithParam<SpsGridCase> {};

/// Property: for every parameter setting, the effective sample of a
/// violating group stays within the Eq. (10) cap, which is exactly the
/// condition for (lambda,delta)-reconstruction-privacy of g1* (Theorem 4).
TEST_P(SpsPrivacyGridTest, SampleCapHolds) {
  const auto [lambda, delta, p] = GetParam();
  auto params = Params(lambda, delta, p, 2);
  std::vector<uint64_t> counts{6000, 4000};
  const double f = 0.6;
  const double s_g = MaxGroupSize(params, f);
  Rng rng(uint64_t(lambda * 100) ^ uint64_t(delta * 1000) ^ uint64_t(p * 7));
  for (int i = 0; i < 50; ++i) {
    auto r = *SpsPerturbGroupCounts(params, counts, rng);
    if (10000.0 <= s_g) {
      EXPECT_FALSE(r.sampled);
    } else {
      EXPECT_TRUE(r.sampled);
      EXPECT_LE(double(r.sample_size), s_g + 2.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpsPrivacyGridTest,
    ::testing::Values(SpsGridCase{0.1, 0.3, 0.5}, SpsGridCase{0.2, 0.3, 0.5},
                      SpsGridCase{0.3, 0.3, 0.5}, SpsGridCase{0.5, 0.3, 0.5},
                      SpsGridCase{0.3, 0.1, 0.5}, SpsGridCase{0.3, 0.5, 0.5},
                      SpsGridCase{0.3, 0.3, 0.1}, SpsGridCase{0.3, 0.3, 0.9}));

}  // namespace
}  // namespace recpriv::core
