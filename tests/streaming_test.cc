// Tests for the streaming publisher (paper §3.1's record-insertion story).

#include "core/streaming.h"

#include <gtest/gtest.h>

#include <memory>

#include "perturb/mle.h"
#include "perturb/uniform_perturbation.h"
#include "table/group_index.h"

namespace recpriv::core {
namespace {

using recpriv::table::Attribute;
using recpriv::table::Dictionary;
using recpriv::table::Schema;
using recpriv::table::SchemaPtr;

SchemaPtr MakeSchema() {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"Job", *Dictionary::FromValues({"eng", "law"})});
  attrs.push_back(
      Attribute{"Disease", *Dictionary::FromValues({"flu", "hiv", "bc"})});
  return std::make_shared<Schema>(*Schema::Make(std::move(attrs), 1));
}

PrivacyParams Params() {
  PrivacyParams p;
  p.lambda = 0.3;
  p.delta = 0.3;
  p.retention_p = 0.5;
  p.domain_m = 3;
  return p;
}

TEST(StreamingTest, MakeValidation) {
  EXPECT_FALSE(StreamingPublisher::Make(nullptr, Params()).ok());
  PrivacyParams wrong_m = Params();
  wrong_m.domain_m = 7;
  EXPECT_FALSE(StreamingPublisher::Make(MakeSchema(), wrong_m).ok());
  EXPECT_TRUE(StreamingPublisher::Make(MakeSchema(), Params()).ok());
}

TEST(StreamingTest, InsertValidatesRows) {
  auto pub = *StreamingPublisher::Make(MakeSchema(), Params());
  EXPECT_TRUE(pub.Insert(std::vector<uint32_t>{0, 1}).ok());
  EXPECT_FALSE(pub.Insert(std::vector<uint32_t>{0}).ok());       // arity
  EXPECT_FALSE(pub.Insert(std::vector<uint32_t>{0, 9}).ok());    // domain
  EXPECT_EQ(pub.num_records(), 1u);
}

TEST(StreamingTest, InsertAndReleaseKeepsNaPerturbsSa) {
  auto pub = *StreamingPublisher::Make(MakeSchema(), Params());
  Rng rng(3);
  size_t changed = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    auto released = *pub.InsertAndRelease(std::vector<uint32_t>{0, 1}, rng);
    EXPECT_EQ(released[0], 0u);  // NA untouched
    EXPECT_LT(released[1], 3u);
    changed += (released[1] != 1u);
  }
  EXPECT_EQ(pub.num_records(), size_t(n));
  // Pr[changed] = (1-p)(1 - 1/m) = 0.5 * 2/3 = 1/3.
  EXPECT_NEAR(changed / double(n), 1.0 / 3.0, 0.04);
}

TEST(StreamingTest, AuditTracksGrowth) {
  auto pub = *StreamingPublisher::Make(MakeSchema(), Params());
  // Insert a skewed group until it violates: f ~ 0.9, s_g is finite.
  const double s_g = MaxGroupSize(Params(), 0.9);
  size_t inserted = 0;
  bool saw_private_phase = false;
  for (size_t i = 0; i < size_t(s_g) + 200; ++i) {
    uint32_t sa = (i % 10) == 0 ? 1u : 0u;  // 90% flu
    ASSERT_TRUE(pub.Insert(std::vector<uint32_t>{0, sa}).ok());
    ++inserted;
    if (inserted == 20) {
      saw_private_phase = (pub.Audit().violating_groups == 0);
    }
  }
  EXPECT_TRUE(saw_private_phase);  // small buffers are private
  EXPECT_EQ(pub.Audit().violating_groups, 1u);  // the grown group violates
}

TEST(StreamingTest, PublishEnforcesSps) {
  auto pub = *StreamingPublisher::Make(MakeSchema(), Params());
  for (size_t i = 0; i < 5000; ++i) {
    uint32_t sa = (i % 10) < 8 ? 0u : 2u;
    ASSERT_TRUE(pub.Insert(std::vector<uint32_t>{i % 2 == 0 ? 0u : 1u, sa})
                    .ok());
  }
  Rng rng(5);
  auto release = pub.Publish(rng);
  ASSERT_TRUE(release.ok());
  EXPECT_GT(release->stats.groups_sampled, 0u);
  EXPECT_NEAR(double(release->table.num_rows()), 5000.0, 0.15 * 5000.0);
}

TEST(StreamingTest, AppendOnlyStreamSupportsReconstruction) {
  // The released UP stream reconstructs the true SA distribution.
  auto pub = *StreamingPublisher::Make(MakeSchema(), Params());
  Rng rng(7);
  std::vector<uint64_t> observed(3, 0);
  const size_t n = 30000;
  for (size_t i = 0; i < n; ++i) {
    uint32_t sa = (i % 10) < 6 ? 0u : ((i % 10) < 9 ? 1u : 2u);  // 60/30/10
    auto released = *pub.InsertAndRelease(std::vector<uint32_t>{0, sa}, rng);
    ++observed[released[1]];
  }
  const recpriv::perturb::UniformPerturbation up{0.5, 3};
  EXPECT_NEAR(recpriv::perturb::MleFrequency(up, observed[0], n), 0.6, 0.02);
  EXPECT_NEAR(recpriv::perturb::MleFrequency(up, observed[1], n), 0.3, 0.02);
  EXPECT_NEAR(recpriv::perturb::MleFrequency(up, observed[2], n), 0.1, 0.02);
}

}  // namespace
}  // namespace recpriv::core
