// Seed-driven deterministic fuzz harness for the wire front end
// (serve/wire.h) and the typed service behind it: thousands of mutated,
// truncated, and type-confused request lines — all derived from valid
// v1/v2 requests plus raw garbage — are pushed through HandleRequestLine
// against a live engine, and every response must satisfy the protocol
// contract:
//
//   * the response parses as a JSON object with a boolean "ok";
//   * ok:false responses carry a structured {"error":{code,message}} whose
//     code is in the stable taxonomy (v2 shape), or the v1 flat string
//     when the request negotiated v1;
//   * a request that carried an "id" gets it echoed back, verbatim;
//   * the dispatcher never crashes, hangs, or emits unstructured output.
//
// Everything is seeded from one Rng (common/random.h), so a failure
// reproduces exactly; the failing input line is printed by the assertion.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "client/api.h"
#include "common/json.h"
#include "common/random.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"
#include "serve/wire.h"
#include "testing_util.h"

namespace recpriv::serve {
namespace {

using recpriv::testing::DemoBundle;
using recpriv::testing::HarnessSeed;

// --- valid request corpus --------------------------------------------------

std::vector<std::string> ValidCorpus() {
  return {
      // v1 shapes
      R"({"op":"list"})",
      R"({"op":"stats"})",
      R"({"op":"query","release":"demo","queries":[{"where":{"Job":"eng"},"sa":"flu"}]})",
      R"({"op":"query","release":"demo","queries":[{"sa":"bc"},{"where":{"City":"north","Job":"law"},"sa":"hiv"}]})",
      // v2 shapes, every op
      R"({"v":2,"id":1,"op":"list"})",
      R"({"v":2,"id":2,"op":"stats"})",
      R"({"v":2,"id":3,"op":"schema","release":"demo"})",
      R"({"v":2,"id":4,"op":"schema","release":"demo","epoch":1})",
      R"({"v":2,"id":5,"op":"query","release":"demo","epoch":1,"queries":[{"where":{"Job":"eng"},"sa":"flu"}]})",
      R"({"v":2,"id":6,"op":"query","release":"demo","queries":[{"sa":"flu"}]})",
      R"({"v":2,"id":7,"op":"publish","name":"other","release":"no_such_bundle"})",
      R"({"v":2,"id":8,"op":"drop","release":"demo"})",
      R"({"v":2,"id":9,"op":"drop","release":"never_published"})",
      R"({"v":2,"id":10,"op":"frobnicate"})",
      R"({"v":7,"id":11,"op":"list"})",
      // near-valid shapes that must be structured errors
      R"({"op":"query","release":"demo","queries":[{"where":{"Job":"nope"},"sa":"flu"}]})",
      R"({"op":"query","release":"demo","queries":[{"where":{"Disease":"flu"},"sa":"flu"}]})",
      R"({"v":2,"op":"query","release":"demo","epoch":999,"queries":[{"sa":"flu"}]})",
      R"({"v":2,"op":"query","release":"ghost","queries":[{"sa":"flu"}]})",
      // integer-exactness territory: ids and integral fields above 2^53,
      // where a double-typed decode silently rounds. The contract checker
      // compares the echoed id byte-for-byte, so these fail loudly if the
      // codec regresses to doubles.
      R"({"v":2,"id":9007199254740993,"op":"list"})",
      R"({"v":2,"id":18446744073709551615,"op":"stats"})",
      R"({"v":2,"id":20,"op":"schema","release":"demo","epoch":9007199254740993})",
      R"({"v":2,"id":21,"op":"schema","release":"demo","epoch":18446744073709551615})",
      R"({"v":2,"id":22,"op":"schema","release":"demo","epoch":1e18})",
      R"({"v":2,"id":23,"op":"schema","release":"demo","epoch":-1})",
      R"({"v":2,"id":24,"op":"schema","release":"demo","epoch":18446744073709551616})",
  };
}

// --- mutators --------------------------------------------------------------

/// Replacement palette for structured type confusion.
JsonValue RandomReplacement(Rng& rng) {
  switch (rng.NextUint64(9)) {
    case 0: return JsonValue::Null();
    case 1: return JsonValue::Bool(rng.NextBernoulli(0.5));
    case 2: return JsonValue::Int(-1);
    case 3: return JsonValue::Number(1e308);
    case 4: return JsonValue::String("");
    case 5: return JsonValue::Array();
    case 6: return JsonValue::Object();
    case 7: return JsonValue::Int(int64_t(rng.NextUint64(1) == 0
                                              ? 999999999999LL
                                              : 0));
    default: return JsonValue::String("zzz_nonexistent");
  }
}

size_t CountNodes(const JsonValue& v) {
  size_t n = 1;
  if (v.is_array()) {
    for (size_t i = 0; i < v.size(); ++i) n += CountNodes(**v.At(i));
  } else if (v.is_object()) {
    for (const std::string& key : v.Keys()) n += CountNodes(**v.Get(key));
  }
  return n;
}

/// Rebuilds `v` with the node at preorder index `target` replaced.
JsonValue ReplaceNode(const JsonValue& v, size_t& counter, size_t target,
                      const JsonValue& replacement) {
  const size_t index = counter++;
  if (index == target) return replacement;
  if (v.is_array()) {
    JsonValue out = JsonValue::Array();
    for (size_t i = 0; i < v.size(); ++i) {
      out.Append(ReplaceNode(**v.At(i), counter, target, replacement));
    }
    return out;
  }
  if (v.is_object()) {
    JsonValue out = JsonValue::Object();
    for (const std::string& key : v.Keys()) {
      out.Set(key, ReplaceNode(**v.Get(key), counter, target, replacement));
    }
    return out;
  }
  return v;
}

/// Drops the object key at preorder-ish position `target` (top level only
/// matters most: "op", "release", "queries", ...).
JsonValue DropRandomKey(const JsonValue& v, Rng& rng) {
  if (!v.is_object() || v.size() == 0) return v;
  const std::vector<std::string> keys = v.Keys();
  const std::string victim = keys[rng.NextUint64(keys.size())];
  JsonValue out = JsonValue::Object();
  for (const std::string& key : keys) {
    if (key != victim) out.Set(key, **v.Get(key));
  }
  return out;
}

std::string MutateLine(const std::string& line, Rng& rng) {
  switch (rng.NextUint64(8)) {
    case 0:  // truncate
      return line.substr(0, rng.NextUint64(line.size() + 1));
    case 1: {  // flip one byte to anything
      if (line.empty()) return line;
      std::string out = line;
      out[rng.NextUint64(out.size())] = char(rng.NextUint64(256));
      return out;
    }
    case 2: {  // insert a byte
      std::string out = line;
      out.insert(out.begin() + long(rng.NextUint64(out.size() + 1)),
                 char(rng.NextUint64(256)));
      return out;
    }
    case 3: {  // delete a byte
      if (line.empty()) return line;
      std::string out = line;
      out.erase(out.begin() + long(rng.NextUint64(out.size())));
      return out;
    }
    case 4: {  // structured type confusion
      auto parsed = JsonValue::Parse(line);
      if (!parsed.ok()) return line + "}";
      const size_t nodes = CountNodes(*parsed);
      size_t counter = 0;
      return ReplaceNode(*parsed, counter, rng.NextUint64(nodes),
                         RandomReplacement(rng))
          .ToString();
    }
    case 5: {  // drop a key
      auto parsed = JsonValue::Parse(line);
      if (!parsed.ok()) return "";
      return DropRandomKey(*parsed, rng).ToString();
    }
    case 6:  // trailing garbage (Parse must reject)
      return line + line;
    default: {  // pure garbage line
      std::string out;
      const size_t len = rng.NextUint64(40);
      for (size_t i = 0; i < len; ++i) out.push_back(char(rng.NextUint64(256)));
      return out;
    }
  }
}

// --- the protocol contract -------------------------------------------------

/// Checks one response line against the wire contract; `input` only feeds
/// the failure message.
void CheckResponseContract(const std::string& input,
                           const std::string& response_line) {
  ASSERT_FALSE(response_line.empty()) << "empty response for: " << input;
  auto response = JsonValue::Parse(response_line);
  ASSERT_TRUE(response.ok()) << "unparseable response '" << response_line
                             << "' for: " << input;
  ASSERT_TRUE(response->is_object()) << "non-object response for: " << input;
  ASSERT_TRUE(response->Has("ok")) << "no 'ok' field for: " << input;
  auto ok = (*response->Get("ok"))->AsBool();
  ASSERT_TRUE(ok.ok()) << "'ok' not a bool for: " << input;

  if (!*ok) {
    ASSERT_TRUE(response->Has("error")) << "ok:false without error for: "
                                        << input;
    const JsonValue* error = *response->Get("error");
    if (response->Has("v")) {
      // v2 shape: structured code from the stable taxonomy + a message.
      ASSERT_TRUE(error->is_object())
          << "v2 error not structured for: " << input;
      ASSERT_TRUE(error->Has("code") && error->Has("message"))
          << "v2 error missing code/message for: " << input;
      auto code = (*error->Get("code"))->AsString();
      ASSERT_TRUE(code.ok()) << "error code not a string for: " << input;
      ASSERT_TRUE(client::ErrorCodeFromName(*code).has_value())
          << "unknown error code '" << *code << "' for: " << input;
      ASSERT_TRUE((*error->Get("message"))->is_string())
          << "error message not a string for: " << input;
    } else {
      // v1 legacy shape: the flat "<Code>: <message>" string.
      ASSERT_TRUE(error->is_string()) << "v1 error not a string for: " << input;
    }
  }

  // The id, when the request carried one, is echoed verbatim.
  auto request = JsonValue::Parse(input);
  if (request.ok() && request->is_object() && request->Has("id")) {
    ASSERT_TRUE(response->Has("id")) << "id not echoed for: " << input;
    EXPECT_EQ((*response->Get("id"))->ToString(),
              (*request->Get("id"))->ToString())
        << "id changed for: " << input;
  }
}

class WireFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_shared<ReleaseStore>();
    QueryEngineOptions options;
    options.num_threads = 2;
    engine_ = std::make_unique<QueryEngine>(store_, options);
    ASSERT_TRUE(store_->Publish("demo", DemoBundle(2015)).ok());
  }

  /// Feeds one line and checks the contract. Republishes "demo" when a
  /// fuzzed drop actually removed it, so later query lines still have a
  /// live release to land on.
  void Feed(const std::string& line) {
    CheckResponseContract(line, HandleRequestLine(line, *engine_));
    if (!store_->Get("demo").ok()) {
      ASSERT_TRUE(store_->Publish("demo", DemoBundle(2015)).ok());
    }
  }

  std::shared_ptr<ReleaseStore> store_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(WireFuzzTest, ValidCorpusSatisfiesContract) {
  for (const std::string& line : ValidCorpus()) Feed(line);
}

TEST_F(WireFuzzTest, MutatedCorpusNeverBreaksTheContract) {
  constexpr size_t kRounds = 300;
  Rng rng(HarnessSeed(0xF022EDB7u));
  const std::vector<std::string> corpus = ValidCorpus();
  for (size_t round = 0; round < kRounds; ++round) {
    for (const std::string& base : corpus) {
      Feed(MutateLine(base, rng));
      if (HasFatalFailure()) return;  // first failing input is enough
    }
  }
}

TEST_F(WireFuzzTest, DoublyMutatedLinesNeverBreakTheContract) {
  constexpr size_t kRounds = 150;
  Rng rng(HarnessSeed(0xD06F00Du));
  const std::vector<std::string> corpus = ValidCorpus();
  for (size_t round = 0; round < kRounds; ++round) {
    const std::string& base = corpus[rng.NextUint64(corpus.size())];
    Feed(MutateLine(MutateLine(base, rng), rng));
    if (HasFatalFailure()) return;
  }
}

TEST_F(WireFuzzTest, IntegralWireFieldsAreExactAboveTwoToThe53) {
  // A schema request pinned to an epoch above 2^53 must come back as a
  // STALE_EPOCH-class error naming a different epoch — never succeed
  // because the requested epoch rounded down to the published one, and
  // never crash. 9007199254740993 (2^53 + 1) rounds to 2^53 in a double.
  const std::string line =
      R"({"v":2,"id":1,"op":"schema","release":"demo","epoch":9007199254740993})";
  auto response = JsonValue::Parse(HandleRequestLine(line, *engine_));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(*(*response->Get("ok"))->AsBool());

  // Non-exact syntax for the same magnitude (1e18, an integral double) is
  // rejected outright: the codec refuses to guess which integer was meant.
  const std::string sloppy =
      R"({"v":2,"id":2,"op":"schema","release":"demo","epoch":1e18})";
  response = JsonValue::Parse(HandleRequestLine(sloppy, *engine_));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(*(*response->Get("ok"))->AsBool());
  auto code = (*(*response->Get("error"))->Get("code"))->AsString();
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(*code, "INVALID_REQUEST");

  // The id survives byte-for-byte even at UINT64_MAX.
  const std::string huge_id = R"({"v":2,"id":18446744073709551615,"op":"list"})";
  response = JsonValue::Parse(HandleRequestLine(huge_id, *engine_));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ((*response->Get("id"))->ToString(), "18446744073709551615");
}

TEST_F(WireFuzzTest, EmptyAndWhitespaceLines) {
  // ServeLines skips blanks; HandleRequestLine itself must still answer
  // structurally if handed one.
  for (const std::string line : {"", " ", "\t", "   \t "}) {
    CheckResponseContract(line, HandleRequestLine(line, *engine_));
  }
}

}  // namespace
}  // namespace recpriv::serve
