// Tests for the violation audit (v_g / v_r of Figures 2 & 4).

#include "core/violation.h"

#include <gtest/gtest.h>

#include <memory>

#include "table/schema.h"

namespace recpriv::core {
namespace {

using recpriv::table::Attribute;
using recpriv::table::Dictionary;
using recpriv::table::GroupIndex;
using recpriv::table::Schema;
using recpriv::table::Table;

PrivacyParams Params(double lambda, double delta, double p, size_t m) {
  PrivacyParams params;
  params.lambda = lambda;
  params.delta = delta;
  params.retention_p = p;
  params.domain_m = m;
  return params;
}

TEST(ViolationTest, ProfileOverloadCountsCorrectly) {
  auto params = Params(0.3, 0.3, 0.5, 2);
  const double s = MaxGroupSize(params, 0.8);
  std::vector<std::pair<uint64_t, double>> profiles{
      {uint64_t(s) - 1, 0.8},   // private
      {uint64_t(s) + 10, 0.8},  // violating
      {uint64_t(s) + 50, 0.8},  // violating
  };
  ViolationReport r = AuditViolations(profiles, params);
  EXPECT_EQ(r.num_groups, 3u);
  EXPECT_EQ(r.violating_groups, 2u);
  EXPECT_EQ(r.violating_group_ids, (std::vector<size_t>{1, 2}));
  EXPECT_EQ(r.violating_records, uint64_t(s) + 10 + uint64_t(s) + 50);
  EXPECT_NEAR(r.GroupViolationRate(), 2.0 / 3.0, 1e-12);
  const double total = 3 * uint64_t(s) + 59;
  EXPECT_NEAR(r.RecordViolationRate(), double(r.violating_records) / total,
              1e-12);
}

TEST(ViolationTest, EmptyAudit) {
  ViolationReport r = AuditViolations(
      std::vector<std::pair<uint64_t, double>>{}, Params(0.3, 0.3, 0.5, 2));
  EXPECT_EQ(r.GroupViolationRate(), 0.0);
  EXPECT_EQ(r.RecordViolationRate(), 0.0);
}

TEST(ViolationTest, IndexOverloadMatchesProfiles) {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"G", *Dictionary::FromValues({"a", "b", "c"})});
  attrs.push_back(Attribute{"SA", *Dictionary::FromValues({"s0", "s1"})});
  auto schema =
      std::make_shared<Schema>(*Schema::Make(std::move(attrs), 1));
  Table t(schema);
  // Group a: 500 records, 90% s0 (violates at defaults).
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        t.AppendRow(std::vector<uint32_t>{0, (i % 10) < 9 ? 0u : 1u}).ok());
  }
  // Group b: 30 records, 50/50 (private).
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(t.AppendRow(std::vector<uint32_t>{1, uint32_t(i % 2)}).ok());
  }
  // Group c: 4000 records, 60/40 (violates).
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(
        t.AppendRow(std::vector<uint32_t>{2, (i % 10) < 6 ? 0u : 1u}).ok());
  }
  GroupIndex idx = GroupIndex::Build(t);
  auto params = Params(0.3, 0.3, 0.5, 2);
  ViolationReport r = AuditViolations(idx, params);
  EXPECT_EQ(r.num_groups, 3u);
  EXPECT_EQ(r.num_records, 4530u);
  EXPECT_EQ(r.violating_groups, 2u);
  EXPECT_EQ(r.violating_records, 4500u);

  // Cross-check against the profile-based overload.
  std::vector<std::pair<uint64_t, double>> profiles;
  for (const auto& g : idx.groups()) {
    profiles.emplace_back(g.size(), g.MaxFrequency());
  }
  ViolationReport r2 = AuditViolations(profiles, params);
  EXPECT_EQ(r2.violating_groups, r.violating_groups);
  EXPECT_EQ(r2.violating_records, r.violating_records);
}

TEST(ViolationTest, StricterParametersViolateMore) {
  // Larger lambda or delta shrink s_g, so violations can only grow.
  std::vector<std::pair<uint64_t, double>> profiles;
  for (uint64_t size : {20, 50, 100, 300, 800, 2000}) {
    profiles.emplace_back(size, 0.6);
  }
  auto loose = AuditViolations(profiles, Params(0.1, 0.1, 0.5, 2));
  auto tight = AuditViolations(profiles, Params(0.5, 0.5, 0.5, 2));
  EXPECT_GE(tight.violating_groups, loose.violating_groups);
}

}  // namespace
}  // namespace recpriv::core
