// Tests for the perturbation matrix (Eq. 3), the uniform perturbation
// operator, and the record-level vs count-level path equivalence.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/random.h"
#include "perturb/perturbation_matrix.h"
#include "perturb/uniform_perturbation.h"
#include "table/schema.h"

namespace recpriv::perturb {
namespace {

using recpriv::table::Attribute;
using recpriv::table::Dictionary;
using recpriv::table::Schema;
using recpriv::table::SchemaPtr;
using recpriv::table::Table;

TEST(PerturbationMatrixTest, Eq3Entries) {
  auto p = MakeUniformPerturbationMatrix(4, 0.6);
  ASSERT_TRUE(p.ok());
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      const double expected = (i == j) ? 0.6 + 0.4 / 4.0 : 0.4 / 4.0;
      EXPECT_DOUBLE_EQ(p->at(j, i), expected);
    }
  }
}

TEST(PerturbationMatrixTest, ColumnsSumToOne) {
  auto p = MakeUniformPerturbationMatrix(7, 0.35);
  ASSERT_TRUE(p.ok());
  for (size_t i = 0; i < 7; ++i) {
    double col = 0.0;
    for (size_t j = 0; j < 7; ++j) col += p->at(j, i);
    EXPECT_NEAR(col, 1.0, 1e-12);
  }
}

TEST(PerturbationMatrixTest, ClosedFormInverseMatchesGaussJordan) {
  for (size_t m : {2u, 5u, 10u, 50u}) {
    for (double p : {0.1, 0.5, 0.9}) {
      auto mat = MakeUniformPerturbationMatrix(m, p);
      ASSERT_TRUE(mat.ok());
      auto inv_numeric = mat->Inverse();
      ASSERT_TRUE(inv_numeric.ok());
      auto inv_closed = MakeUniformPerturbationInverse(m, p);
      ASSERT_TRUE(inv_closed.ok());
      EXPECT_LT(inv_numeric->MaxAbsDiff(*inv_closed), 1e-9)
          << "m=" << m << " p=" << p;
    }
  }
}

TEST(PerturbationMatrixTest, InverseTimesMatrixIsIdentity) {
  auto mat = *MakeUniformPerturbationMatrix(5, 0.4);
  auto inv = *MakeUniformPerturbationInverse(5, 0.4);
  // Apply P then P^{-1} to a probe vector.
  std::vector<double> probe{0.1, 0.2, 0.3, 0.15, 0.25};
  auto round_trip = inv.Apply(mat.Apply(probe));
  for (size_t i = 0; i < probe.size(); ++i) {
    EXPECT_NEAR(round_trip[i], probe[i], 1e-12);
  }
}

TEST(PerturbationMatrixTest, SingularMatrixRejected) {
  Matrix singular(2, 1.0);  // all ones
  EXPECT_FALSE(singular.Inverse().ok());
}

TEST(PerturbationMatrixTest, ParameterValidation) {
  EXPECT_FALSE(MakeUniformPerturbationMatrix(1, 0.5).ok());
  EXPECT_FALSE(MakeUniformPerturbationMatrix(3, 0.0).ok());
  EXPECT_FALSE(MakeUniformPerturbationMatrix(3, 1.0).ok());
  EXPECT_FALSE(MakeUniformPerturbationInverse(1, 0.5).ok());
}

TEST(UniformPerturbationTest, Validation) {
  EXPECT_TRUE((UniformPerturbation{0.5, 10}).Validate().ok());
  EXPECT_FALSE((UniformPerturbation{0.0, 10}).Validate().ok());
  EXPECT_FALSE((UniformPerturbation{1.0, 10}).Validate().ok());
  EXPECT_FALSE((UniformPerturbation{0.5, 1}).Validate().ok());
}

TEST(UniformPerturbationTest, RetentionRateMatchesEq3) {
  // Pr[output == input] = p + (1-p)/m.
  Rng rng(17);
  const UniformPerturbation up{0.5, 4};
  const int n = 200000;
  int kept = 0;
  for (int i = 0; i < n; ++i) kept += (PerturbValue(up, 2, rng) == 2);
  const double expected = 0.5 + 0.5 / 4.0;
  EXPECT_NEAR(kept / double(n), expected, 0.005);
}

TEST(UniformPerturbationTest, OffDiagonalRateMatchesEq3) {
  Rng rng(18);
  const UniformPerturbation up{0.3, 5};
  const int n = 200000;
  std::vector<int> hist(5, 0);
  for (int i = 0; i < n; ++i) ++hist[PerturbValue(up, 0, rng)];
  for (size_t j = 1; j < 5; ++j) {
    EXPECT_NEAR(hist[j] / double(n), 0.7 / 5.0, 0.005);
  }
}

TEST(UniformMultinomialTest, ConservesTotalAndIsUniform) {
  Rng rng(23);
  const uint64_t n = 60000;
  auto cells = UniformMultinomial(n, 6, rng);
  uint64_t total = 0;
  for (uint64_t c : cells) total += c;
  EXPECT_EQ(total, n);
  for (uint64_t c : cells) {
    EXPECT_NEAR(double(c), n / 6.0, 6 * std::sqrt(n / 6.0));
  }
}

TEST(UniformMultinomialTest, DegenerateInputs) {
  Rng rng(1);
  auto zero = UniformMultinomial(0, 3, rng);
  EXPECT_EQ(zero, (std::vector<uint64_t>{0, 0, 0}));
  auto one_cell = UniformMultinomial(100, 1, rng);
  EXPECT_EQ(one_cell, (std::vector<uint64_t>{100}));
}

TEST(PerturbCountsTest, ConservesTotal) {
  Rng rng(29);
  const UniformPerturbation up{0.5, 3};
  std::vector<uint64_t> counts{100, 50, 850};
  for (int i = 0; i < 50; ++i) {
    auto observed = PerturbCounts(up, counts, rng);
    ASSERT_TRUE(observed.ok());
    uint64_t total = 0;
    for (uint64_t c : *observed) total += c;
    EXPECT_EQ(total, 1000u);
  }
}

TEST(PerturbCountsTest, MeanMatchesLemma2) {
  // E[O*_i] = |S| (f_i p + (1-p)/m).
  Rng rng(31);
  const UniformPerturbation up{0.4, 3};
  std::vector<uint64_t> counts{600, 300, 100};
  const int reps = 4000;
  std::vector<double> sums(3, 0.0);
  for (int i = 0; i < reps; ++i) {
    auto observed = *PerturbCounts(up, counts, rng);
    for (size_t j = 0; j < 3; ++j) sums[j] += double(observed[j]);
  }
  for (size_t j = 0; j < 3; ++j) {
    const double f = counts[j] / 1000.0;
    const double expected = 1000.0 * (f * 0.4 + 0.6 / 3.0);
    EXPECT_NEAR(sums[j] / reps, expected, 0.02 * expected + 1.0);
  }
}

TEST(PerturbCountsTest, RejectsWrongArity) {
  Rng rng(1);
  const UniformPerturbation up{0.5, 3};
  const std::vector<uint64_t> counts{1, 2};
  EXPECT_FALSE(PerturbCounts(up, counts, rng).ok());
}

SchemaPtr SmallSchema() {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"G", *Dictionary::FromValues({"a", "b"})});
  attrs.push_back(
      Attribute{"SA", *Dictionary::FromValues({"s0", "s1", "s2"})});
  return std::make_shared<Schema>(*Schema::Make(std::move(attrs), 1));
}

TEST(PerturbTableTest, OnlySensitiveColumnChanges) {
  Rng rng(37);
  auto schema = SmallSchema();
  Table t(schema);
  for (uint32_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(t.AppendRow(std::vector<uint32_t>{i % 2, i % 3}).ok());
  }
  const UniformPerturbation up{0.5, 3};
  auto perturbed = PerturbTable(up, t, rng);
  ASSERT_TRUE(perturbed.ok());
  EXPECT_EQ(perturbed->num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(perturbed->at(r, 0), t.at(r, 0));  // NA untouched
  }
  // SA should change for roughly (1-p)(1 - 1/m) of rows.
  size_t changed = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    changed += (perturbed->at(r, 1) != t.at(r, 1));
  }
  EXPECT_GT(changed, 100u);
  EXPECT_LT(changed, 250u);
}

TEST(PerturbTableTest, DomainMismatchRejected) {
  Rng rng(1);
  Table t(SmallSchema());
  const UniformPerturbation up{0.5, 7};
  EXPECT_FALSE(PerturbTable(up, t, rng).ok());
}

TEST(PathEquivalenceTest, RecordAndCountPathsMatchInDistribution) {
  // Perturb the same histogram both ways many times; the per-value means
  // must agree within Monte-Carlo error.
  const UniformPerturbation up{0.3, 4};
  std::vector<uint64_t> counts{400, 300, 200, 100};
  const int reps = 3000;

  Rng rng_record(101), rng_count(202);
  std::vector<double> record_means(4, 0.0), count_means(4, 0.0);
  // Record path: a column with the given histogram.
  std::vector<uint32_t> column;
  for (uint32_t v = 0; v < 4; ++v) {
    for (uint64_t k = 0; k < counts[v]; ++k) column.push_back(v);
  }
  for (int i = 0; i < reps; ++i) {
    std::vector<uint32_t> copy = column;
    ASSERT_TRUE(PerturbColumn(up, copy, rng_record).ok());
    std::vector<uint64_t> hist(4, 0);
    for (uint32_t v : copy) ++hist[v];
    for (size_t j = 0; j < 4; ++j) record_means[j] += double(hist[j]);

    auto observed = *PerturbCounts(up, counts, rng_count);
    for (size_t j = 0; j < 4; ++j) count_means[j] += double(observed[j]);
  }
  for (size_t j = 0; j < 4; ++j) {
    record_means[j] /= reps;
    count_means[j] /= reps;
    EXPECT_NEAR(record_means[j], count_means[j],
                0.02 * record_means[j] + 1.0)
        << "value " << j;
  }
}

}  // namespace
}  // namespace recpriv::perturb
