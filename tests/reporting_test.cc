// Tests for the experiment reporting helpers.

#include "exp/reporting.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace recpriv::exp {
namespace {

TEST(AsciiTableTest, AlignsColumns) {
  AsciiTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // Header separator row present.
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(AsciiTableTest, WriteCsv) {
  AsciiTable t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  const std::string path = ::testing::TempDir() + "/recpriv_report.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(SeriesTest, PrintsAllSeries) {
  std::ostringstream os;
  PrintSeries(os, "p", {"0.1", "0.5"},
              {Series{"vg", {0.1, 0.2}}, Series{"vr", {0.9, 0.95}}}, 2);
  const std::string out = os.str();
  EXPECT_NE(out.find("vg"), std::string::npos);
  EXPECT_NE(out.find("vr"), std::string::npos);
  EXPECT_NE(out.find("0.95"), std::string::npos);
}

TEST(BannerTest, ContainsTitleAndReference) {
  std::ostringstream os;
  PrintBanner(os, "Table 1", "EDBT'15 Table 1");
  EXPECT_NE(os.str().find("Table 1"), std::string::npos);
  EXPECT_NE(os.str().find("reproduces"), std::string::npos);
}

}  // namespace
}  // namespace recpriv::exp
