// A guided tour of the typed serving client (client/client.h): one
// interface, two backends — embedded (InProcessClient) and wire-protocol
// (LineProtocolClient) — plus the v2 protocol features an analysis session
// leans on: schema introspection instead of out-of-band knowledge, epoch
// pinning across republishes, and release retirement.
//
// Everything here works identically against a remote recpriv_serve
// process: construct LineProtocolClient over the process's stdin/stdout
// pipes instead of the loopback transport and change nothing else.

#include <cstdio>
#include <iostream>

#include "recpriv.h"

using namespace recpriv;  // NOLINT

namespace {

/// A small deterministic SPS release of the simple synthetic dataset.
analysis::ReleaseBundle MakeBundle(uint64_t seed) {
  datagen::SimpleDatasetSpec spec;
  spec.public_attributes = {"Job", "City"};
  spec.sensitive_attribute = "Disease";
  spec.sa_domain = {"flu", "hiv", "bc"};
  spec.groups.push_back(datagen::GroupSpec{{"eng", "north"}, 4000, {70, 20, 10}});
  spec.groups.push_back(datagen::GroupSpec{{"eng", "south"}, 3000, {70, 20, 10}});
  spec.groups.push_back(datagen::GroupSpec{{"law", "north"}, 2000, {20, 30, 50}});
  spec.groups.push_back(datagen::GroupSpec{{"law", "south"}, 1000, {20, 30, 50}});
  table::Table raw = *datagen::GenerateSimpleExact(spec);

  core::PrivacyParams params;
  params.domain_m = raw.schema()->sa_domain_size();
  Rng rng(seed);
  auto sps = *core::SpsPerturbTable(params, raw, rng);
  return analysis::ReleaseBundle{std::move(sps.table), params, "Disease", {}};
}

void PrintBatch(const char* tag, const client::BatchAnswer& batch) {
  std::printf("%s epoch %llu:", tag,
              static_cast<unsigned long long>(batch.epoch));
  for (const client::AnswerRow& a : batch.answers) {
    std::printf("  O*=%llu |S*|=%llu est=%.1f",
                static_cast<unsigned long long>(a.observed),
                static_cast<unsigned long long>(a.matched_size), a.estimate);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // --- an embedded serving stack, driven purely through the client API ---
  auto store = std::make_shared<serve::ReleaseStore>(/*retained_epochs=*/2);
  auto engine = std::make_shared<serve::QueryEngine>(store);
  client::InProcessClient embedded(engine);

  auto first = *embedded.PublishBundle("patients", MakeBundle(2015));
  std::cout << "published 'patients' epoch " << first.epoch << " ("
            << first.num_records << " records)\n";

  // Schema introspection: everything needed to build queries, no
  // out-of-band knowledge of the generator.
  auto schema = *embedded.GetSchema("patients");
  std::cout << "schema:";
  for (const client::AttributeInfo& attr : schema.attributes) {
    std::cout << " " << attr.name << (attr.sensitive ? "(SA)" : "") << "="
              << attr.values.size() << " values";
  }
  std::cout << "\n";

  client::QueryRequest req;
  req.release = "patients";
  req.queries.push_back(
      client::QuerySpec{{{"Job", "eng"}}, schema.attributes[2].values[0]});

  // Pin the current epoch: this session keeps reading the exact snapshot
  // it started on, even across the republish below.
  req.epoch = first.epoch;
  auto pinned_before = *embedded.Query(req);
  PrintBatch("pinned  ", pinned_before);

  auto second = *embedded.PublishBundle("patients", MakeBundle(99));
  std::cout << "republished as epoch " << second.epoch << " (retains "
            << second.retained_epochs << " epochs)\n";

  auto pinned_after = *embedded.Query(req);
  PrintBatch("pinned  ", pinned_after);  // identical: same snapshot

  client::QueryRequest unpinned = req;
  unpinned.epoch.reset();
  PrintBatch("current ", *embedded.Query(unpinned));  // the new epoch

  // --- the same session over the wire protocol ---
  // LoopbackTransport round-trips every call through the full v2 codec
  // (encode -> parse -> dispatch -> encode -> parse); swap in an
  // IoStreamTransport over a recpriv_serve process's pipes to go remote.
  client::LineProtocolClient remote(
      std::make_unique<client::LoopbackTransport>(*engine));
  auto remote_batch = *remote.Query(req);
  PrintBatch("remote  ", remote_batch);
  std::cout << "backends agree: "
            << (remote_batch.answers[0].observed ==
                        pinned_after.answers[0].observed
                    ? "yes"
                    : "NO")
            << "\n";

  // Errors carry the same taxonomy on both backends: pin an epoch that has
  // aged out of the retention window (window is 2; epoch 1 is still there,
  // so republish once more to retire it).
  *embedded.PublishBundle("patients", MakeBundle(7));
  auto stale = remote.Query(req);
  std::cout << "stale pin over the wire: " << stale.status().ToString()
            << "\n";

  // Retire the release: subsequent queries say NotFound on both backends.
  auto dropped = *remote.Drop("patients");
  std::cout << "dropped 'patients' (was epoch " << dropped.epoch << "); "
            << "queries now: "
            << embedded.Query(unpinned).status().ToString() << "\n";
  return 0;
}
