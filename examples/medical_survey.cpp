// Example 2 from the paper, end to end: a hospital publishes
// D(Gender, Job, Disease) with a 10-value Disease attribute under uniform
// perturbation, and an analyst-versus-adversary story unfolds:
//
//  * Bob is a male engineer. The adversary reconstructs the disease
//    distribution of the PERSONAL group D*(male, eng) — all records
//    matching everything it knows about Bob — to gauge whether Bob has
//    breast cancer ("bc").
//  * The analyst reconstructs the AGGREGATE group D*(*, eng) to learn that
//    career engineers skew to cervical spondylosis ("cs") — the paper's
//    "statistical relationship" the mechanism must keep learnable.
//
// The demo measures the reconstruction error of both, first under plain
// uniform perturbation (accurate personal reconstruction = privacy risk),
// then under SPS (personal reconstruction degraded, aggregate intact).

#include <cmath>
#include <iostream>

#include "recpriv.h"

using namespace recpriv;  // NOLINT

namespace {

/// Reconstruction error (absolute, in percentage points) of `sa` over the
/// given groups, averaged over `runs` randomized releases.
double MeasureError(const table::GroupIndex& index,
                    const std::vector<size_t>& group_ids, size_t sa,
                    const core::PrivacyParams& params, bool use_sps,
                    size_t runs, Rng& rng) {
  const perturb::UniformPerturbation up{params.retention_p, params.domain_m};
  // Truth over the union of the selected groups.
  uint64_t true_count = 0, true_size = 0;
  for (size_t gi : group_ids) {
    true_count += index.groups()[gi].sa_counts[sa];
    true_size += index.groups()[gi].size();
  }
  const double truth = double(true_count) / double(true_size);

  double total_err = 0.0;
  for (size_t run = 0; run < runs; ++run) {
    uint64_t observed = 0, size = 0;
    for (size_t gi : group_ids) {
      std::vector<uint64_t> obs;
      if (use_sps) {
        obs = core::SpsPerturbGroupCounts(params,
                                          index.groups()[gi].sa_counts, rng)
                  ->observed;
      } else {
        obs = *perturb::PerturbCounts(up, index.groups()[gi].sa_counts, rng);
      }
      observed += obs[sa];
      for (uint64_t c : obs) size += c;
    }
    const double estimate = perturb::MleFrequency(up, observed, size);
    total_err += std::abs(estimate - truth);
  }
  return total_err / double(runs);
}

}  // namespace

int main() {
  // --- the hospital table ---
  datagen::SimpleDatasetSpec spec;
  spec.public_attributes = {"Gender", "Job"};
  spec.sensitive_attribute = "Disease";
  spec.sa_domain = {"flu",      "diabetes", "hepatitis", "hiv",  "bc",
                    "cs",       "asthma",   "anemia",    "gout", "ulcer"};
  // Engineers (both genders) skew to cervical spondylosis; breast cancer
  // concentrates in the female groups — so D(male,eng) and D(female,eng)
  // genuinely differ and aggregation would mislead the adversary.
  spec.groups = {
      {{"male", "eng"}, 6000, {18, 8, 6, 4, 1, 30, 9, 6, 10, 8}},
      {{"female", "eng"}, 5000, {16, 7, 5, 3, 12, 28, 9, 8, 4, 8}},
      {{"male", "law"}, 4000, {20, 18, 6, 6, 1, 8, 10, 7, 14, 10}},
      {{"female", "law"}, 4000, {18, 16, 5, 5, 14, 7, 11, 10, 5, 9}},
  };
  Rng rng(2015);
  table::Table data = *datagen::GenerateSimple(spec, rng);

  core::PrivacyParams params;
  params.lambda = 0.3;
  params.delta = 0.3;
  params.retention_p = 0.2;  // Example 2 uses 20% retention
  params.domain_m = 10;

  table::GroupIndex index = table::GroupIndex::Build(data);
  const size_t bc = *data.schema()->sensitive().domain.GetCode("bc");
  const size_t cs = *data.schema()->sensitive().domain.GetCode("cs");

  // Bob's personal group and the analyst's aggregate group.
  const uint32_t male = *data.schema()->attribute(0).domain.GetCode("male");
  const uint32_t eng = *data.schema()->attribute(1).domain.GetCode("eng");
  std::vector<size_t> personal{*index.FindGroup({male, eng})};
  table::Predicate engineers(3);
  engineers.Bind(1, eng);
  std::vector<size_t> aggregate = index.MatchingGroups(engineers);

  std::cout << "D(Gender, Job, Disease): " << data.num_rows()
            << " records, m = 10 diseases, retention p = 0.2\n";
  std::cout << "personal group D(male, eng): "
            << index.groups()[personal[0]].size() << " records, bc rate "
            << FormatPercent(index.groups()[personal[0]].Frequency(bc))
            << "\n";

  const size_t runs = 200;
  std::cout << "\nmean |reconstruction error| over " << runs
            << " releases (percentage points):\n\n";
  exp::AsciiTable out({"reconstruction", "plain UP", "SPS"});
  auto row = [&](const std::string& label, const std::vector<size_t>& groups,
                 size_t sa) {
    Rng up_rng(1), sps_rng(2);
    out.AddRow({label,
                FormatPercent(MeasureError(index, groups, sa, params, false,
                                           runs, up_rng)),
                FormatPercent(MeasureError(index, groups, sa, params, true,
                                           runs, sps_rng))});
  };
  row("PERSONAL: bc in D*(male, eng)   [adversary]", personal, bc);
  row("AGGREGATE: cs in D*(*, eng)     [analyst]", aggregate, cs);
  out.Print(std::cout);

  std::cout
      << "\nreading: SPS degrades the adversary's personal reconstruction "
         "while the\nanalyst's aggregate reconstruction (more records = "
         "more random trials, the\nlaw of large numbers) stays accurate — "
         "the paper's split-role principle.\n";
  return 0;
}
