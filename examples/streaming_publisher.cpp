// Streaming publication demo (paper §3.1): data perturbation is friendly
// to record insertion — each arriving record is perturbed independently and
// appended to the release — while noisy *query answers* cannot be patched
// record-by-record. The demo also shows the publisher's dilemma: as a
// personal group grows past s_g, the append-only UP stream starts violating
// reconstruction privacy, and a periodic SPS snapshot is the fix.

#include <iostream>

#include "recpriv.h"
#include "core/streaming.h"

using namespace recpriv;  // NOLINT

int main() {
  // Schema: one public attribute (Clinic), one sensitive (Disease, m = 5).
  std::vector<table::Attribute> attrs;
  attrs.push_back(table::Attribute{
      "Clinic", *table::Dictionary::FromValues({"north", "south"})});
  attrs.push_back(table::Attribute{
      "Disease", *table::Dictionary::FromValues(
                     {"flu", "diabetes", "asthma", "hiv", "gout"})});
  auto schema = std::make_shared<table::Schema>(
      *table::Schema::Make(std::move(attrs), 1));

  core::PrivacyParams params;
  params.lambda = 0.3;
  params.delta = 0.3;
  params.retention_p = 0.5;
  params.domain_m = 5;
  auto publisher = *core::StreamingPublisher::Make(schema, params);

  // North clinic skews heavily to flu (f ~ 0.8) — it will outgrow s_g.
  const double s_g = core::MaxGroupSize(params, 0.8);
  std::cout << "append-only stream; north clinic has max frequency ~0.8, "
               "s_g = " << FormatDouble(s_g, 4) << "\n\n";

  Rng rng(11);
  exp::AsciiTable timeline({"records inserted", "violating groups",
                            "records at risk"});
  size_t inserted = 0;
  auto insert_batch = [&](size_t north, size_t south) {
    for (size_t i = 0; i < north; ++i) {
      uint32_t sa = (i % 10) < 8 ? 0u : uint32_t(1 + i % 4);
      (void)*publisher.InsertAndRelease(std::vector<uint32_t>{0, sa}, rng);
      ++inserted;
    }
    for (size_t i = 0; i < south; ++i) {
      (void)*publisher.InsertAndRelease(
          std::vector<uint32_t>{1, uint32_t(i % 5)}, rng);
      ++inserted;
    }
    auto audit = publisher.Audit();
    timeline.AddRow({std::to_string(inserted),
                     std::to_string(audit.violating_groups),
                     FormatPercent(audit.RecordViolationRate())});
  };
  for (int batch = 0; batch < 6; ++batch) insert_batch(60, 40);
  timeline.Print(std::cout);

  std::cout << "\nthe UP stream eventually violates; a periodic SPS snapshot "
               "restores privacy:\n";
  auto snapshot = *publisher.Publish(rng);
  std::cout << "  snapshot: " << snapshot.table.num_rows() << " records, "
            << snapshot.stats.groups_sampled
            << " group(s) sampled down to ~s_g trials\n";

  // Verify: the snapshot's groups all satisfy the criterion by audit of
  // the *input* profile (Theorem 4 is a property of the mechanism).
  auto audit = publisher.Audit();
  std::cout << "  (raw buffer still shows " << audit.violating_groups
            << " violating group(s) — the snapshot, not the stream, is what "
               "gets published)\n";
  return 0;
}
