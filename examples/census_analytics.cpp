// Statistical learning on an SPS-protected release: the paper's promise is
// that a data consumer can still learn statistical relationships from D*_2.
//
// This example plays the data-consumer role on the synthetic CENSUS data:
//   1. the publisher generalizes + SPS-perturbs the table and ships it;
//   2. the analyst (who only sees the release and the public parameters
//      p, m) reconstructs occupation distributions per education level and
//      computes occupation "lifts" (conditional share / global share) —
//      the "smokers tend to have lung cancer" pattern of the paper;
//   3. we score the analyst against the ground truth the publisher kept
//      private: the reconstructed lift of each education level's strongest
//      occupation, and the correlation of lifts across all cells.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "recpriv.h"

using namespace recpriv;  // NOLINT

int main() {
  // --- publisher side ---
  Rng rng(2015);
  datagen::CensusConfig config;
  config.num_records = 150000;
  table::Table raw = *datagen::GenerateCensus(config, rng);
  core::Generalization plan = *core::ComputeGeneralization(raw);
  table::Table generalized = *core::ApplyGeneralization(plan, raw);

  core::PrivacyParams params;
  params.lambda = 0.3;
  params.delta = 0.3;
  params.retention_p = 0.5;
  params.domain_m = 50;
  core::SpsTableResult release =
      *core::SpsPerturbTable(params, generalized, rng);
  std::cout << "publisher: " << raw.num_rows() << " records -> SPS release "
            << release.table.num_rows() << " records ("
            << release.stats.groups_sampled << "/" << release.stats.num_groups
            << " groups sampled)\n\n";

  // --- analyst side: sees only `release.table`, p, and m ---
  const table::Table& published = release.table;
  const perturb::UniformPerturbation up{params.retention_p, params.domain_m};
  const size_t edu_col = *published.schema()->IndexOf("Education");
  const size_t occ_col = published.schema()->sensitive_index();
  const size_t num_edu = published.schema()->attribute(edu_col).domain.size();

  // Reconstructed global occupation distribution.
  std::vector<double> global_est =
      *perturb::MleFrequencies(up, published.SaHistogram(),
                               published.num_rows());
  // True distributions (publisher's secret, used only to score).
  std::vector<double> global_truth(50, 0.0);
  for (size_t r = 0; r < raw.num_rows(); ++r) ++global_truth[raw.at(r, 5)];
  for (double& v : global_truth) v /= double(raw.num_rows());

  // Per-education conditional distributions, reconstructed and true.
  std::vector<std::vector<uint64_t>> cond_obs(num_edu,
                                              std::vector<uint64_t>(50, 0));
  std::vector<uint64_t> cond_sizes(num_edu, 0);
  for (size_t r = 0; r < published.num_rows(); ++r) {
    uint32_t e = published.at(r, edu_col);
    ++cond_obs[e][published.at(r, occ_col)];
    ++cond_sizes[e];
  }
  std::vector<std::vector<double>> cond_truth(num_edu,
                                              std::vector<double>(50, 0.0));
  std::vector<uint64_t> truth_sizes(num_edu, 0);
  for (size_t r = 0; r < raw.num_rows(); ++r) {
    uint32_t e = plan.MapCode(2, raw.at(r, 2));  // Education is column 2
    ++cond_truth[e][raw.at(r, 5)];
    ++truth_sizes[e];
  }

  exp::AsciiTable out({"education", "strongest occupation (truth)",
                       "true lift", "reconstructed lift"});
  std::vector<double> xs, ys;  // all (edu, occ) lift pairs for correlation
  for (uint32_t e = 0; e < num_edu; ++e) {
    if (cond_sizes[e] == 0 || truth_sizes[e] == 0) continue;
    for (double& v : cond_truth[e]) v /= double(truth_sizes[e]);
    std::vector<double> cond_est =
        *perturb::MleFrequencies(up, cond_obs[e], cond_sizes[e]);

    uint32_t best = 0;
    double best_lift = 0.0;
    for (uint32_t o = 0; o < 50; ++o) {
      const double t_lift = cond_truth[e][o] / global_truth[o];
      const double e_lift = std::max(0.0, cond_est[o]) /
                            std::max(1e-9, global_est[o]);
      xs.push_back(t_lift);
      ys.push_back(e_lift);
      if (t_lift > best_lift) {
        best_lift = t_lift;
        best = o;
      }
    }
    out.AddRow({published.schema()->attribute(edu_col).domain.value(e),
                raw.schema()->sensitive().domain.value(best),
                FormatDouble(best_lift, 3),
                FormatDouble(std::max(0.0, cond_est[best]) /
                                 std::max(1e-9, global_est[best]),
                             3)});
  }
  out.Print(std::cout);

  // Pearson correlation between true and reconstructed lifts.
  double mx = stats::Mean(xs), my = stats::Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  const double corr = sxy / std::sqrt(sxx * syy);
  std::cout << "\ncorrelation of true vs reconstructed lifts over "
            << xs.size() << " (education, occupation) cells: "
            << FormatDouble(corr, 3)
            << "\nreading: the release preserves which occupations are over-"
               "represented per\neducation level (aggregate reconstruction), "
               "while every personal group's\nreconstruction is capped by "
               "(lambda, delta).\n";
  return 0;
}
