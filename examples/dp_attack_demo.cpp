// Section-2 demo: why fixed-scale output perturbation (the differential-
// privacy Laplace mechanism) leaks through non-independent reasoning as the
// data grow — and how data perturbation with reconstruction privacy reacts
// differently.
//
// The adversary wants Pr[Income = >50K | t.NA] for a target t. Against a
// DP query interface it asks two count queries and forms Conf' = Y/X
// (Example 1); against a perturbed-data release it runs a personal
// reconstruction. We scale the matching population x and watch:
//   * DP:   Conf' -> Conf (Corollary 1) — the disclosure sharpens with x;
//   * SPS:  the reconstruction error is pinned by (lambda, delta)
//           regardless of x — the group is resampled to s_g trials.

#include <cmath>
#include <iostream>

#include "recpriv.h"

using namespace recpriv;  // NOLINT

int main() {
  std::cout << "adversary's goal: learn Pr[>50K] for the sub-population "
               "matching t.NA\n"
               "true rate in that sub-population: 80%\n\n";

  const double true_rate = 0.8;
  const size_t trials = 400;
  core::PrivacyParams params;
  params.lambda = 0.3;
  params.delta = 0.3;
  params.retention_p = 0.5;
  params.domain_m = 2;
  const perturb::UniformPerturbation up{params.retention_p, params.domain_m};

  exp::AsciiTable out({"x (group size)", "DP: mean |Conf'-Conf|",
                       "DP: 2(b/x)^2", "SPS: mean |F'-f|"});

  Rng rng(2015);
  for (uint64_t x : {100ULL, 500ULL, 2000ULL, 10000ULL, 50000ULL}) {
    const uint64_t y = uint64_t(true_rate * double(x));

    // --- DP interface: two noisy counts, b = 20 (eps = 0.1, Delta = 2).
    auto mech = *dp::LaplaceMechanism::Make(0.1, 2.0);
    double dp_err = 0.0;
    for (size_t i = 0; i < trials; ++i) {
      const double noisy_x = double(x) + SampleLaplace(rng, mech.scale());
      const double noisy_y = double(y) + SampleLaplace(rng, mech.scale());
      dp_err += std::abs(noisy_y / noisy_x - true_rate);
    }
    dp_err /= double(trials);

    // --- data perturbation with SPS enforcement.
    std::vector<uint64_t> counts{x - y, y};  // {<=50K, >50K}
    double sps_err = 0.0;
    for (size_t i = 0; i < trials; ++i) {
      auto r = *core::SpsPerturbGroupCounts(params, counts, rng);
      uint64_t size = r.observed[0] + r.observed[1];
      sps_err += std::abs(perturb::MleFrequency(up, r.observed[1], size) -
                          true_rate);
    }
    sps_err /= double(trials);

    out.AddRow({FormatWithCommas(int64_t(x)), FormatDouble(dp_err, 4),
                FormatDouble(stats::LaplaceRatioBiasBound(mech.scale(),
                                                          double(x)),
                             4),
                FormatDouble(sps_err, 4)});
  }
  out.Print(std::cout);

  std::cout
      << "\nreading: the DP ratio attack sharpens as x grows (error -> 0, "
         "tracking the\n2(b/x)^2 indicator of Table 2) — a personal "
         "disclosure for large groups. Under\nSPS the error is flat in x: "
         "sampling caps the number of random trials per\npersonal group at "
         "s_g, so no amount of data makes the personal reconstruction\n"
         "accurate. Aggregate statistics remain learnable (see "
         "example_medical_survey).\n";
  return 0;
}
