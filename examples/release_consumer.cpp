// The data-consumer workflow end to end, across a process boundary:
//
//   publisher process:  generate -> generalize -> SPS -> WriteRelease
//                       (CSV + JSON manifest)
//   consumer process:   LoadRelease -> Reconstructor -> estimates with
//                       confidence intervals
//
// The consumer never touches the raw data or the publisher's RNG; all it
// needs is the release bundle, exactly as the paper intends ("the
// reconstruction is performed by the user himself", §3.1).
//
// The tail of the example re-runs the same analysis through the serving
// stack's typed client API (client/in_process_client.h) — the path a
// consumer takes against a recpriv_serve deployment instead of a local
// file — and shows the two agree.

#include <cstdio>
#include <iostream>

#include "recpriv.h"

using namespace recpriv;  // NOLINT

namespace {

std::string PublishBundle(const std::string& basename) {
  Rng rng(2015);
  datagen::AdultConfig config;
  config.num_records = 45222;
  table::Table raw = *datagen::GenerateAdult(config, rng);
  core::Generalization plan = *core::ComputeGeneralization(raw);
  table::Table generalized = *core::ApplyGeneralization(plan, raw);

  core::PrivacyParams params;
  params.lambda = 0.3;
  params.delta = 0.3;
  params.retention_p = 0.5;
  params.domain_m = 2;
  auto release = *core::SpsPerturbTable(params, generalized, rng);

  analysis::ReleaseBundle bundle{release.table.Clone(), params, "Income", {}};
  for (const auto& merge : plan.merges) {
    bundle.generalization.push_back(merge.merged_names);
  }
  RECPRIV_CHECK_OK(analysis::WriteRelease(bundle, basename));
  std::cout << "[publisher] wrote " << bundle.data.num_rows()
            << " records to " << basename << ".csv (+ manifest)\n";

  // The publisher's ground truth, printed only for the comparison below.
  auto truth = generalized.SaHistogram();
  std::printf("[publisher] (secret) true >50K rate: %.4f\n\n",
              double(truth[1]) / double(generalized.num_rows()));
  return basename;
}

}  // namespace

int main() {
  const std::string base = "/tmp/recpriv_example_release";
  PublishBundle(base);

  // ----- consumer side: only the bundle exists from here on -----
  auto bundle = analysis::LoadRelease(base);
  if (!bundle.ok()) {
    std::cerr << bundle.status() << "\n";
    return 1;
  }
  std::cout << "[consumer] loaded " << bundle->data.num_rows()
            << " records; mechanism: p = " << bundle->params.retention_p
            << ", m = " << bundle->params.domain_m << ", privacy (lambda="
            << bundle->params.lambda << ", delta=" << bundle->params.delta
            << ")\n";

  auto rec = *analysis::MakeReconstructor(*bundle);
  const uint32_t high =
      *bundle->data.schema()->sensitive().domain.GetCode(">50K");

  // Global rate with a 95% CI.
  table::Predicate everyone(bundle->data.schema()->num_attributes());
  auto global = *rec.EstimateFrequency(bundle->data, everyone, high);
  std::printf("[consumer] >50K rate: %.4f  (95%% CI [%.4f, %.4f], n=%llu)\n",
              global.frequency, global.ci_low, global.ci_high,
              static_cast<unsigned long long>(global.subset_size));

  // Per-education rates: the statistical relationships survive.
  const auto& edu_domain = bundle->data.schema()->attribute(0).domain;
  std::cout << "\n[consumer] >50K rate by (generalized) education level:\n";
  for (uint32_t e = 0; e < edu_domain.size(); ++e) {
    table::Predicate pred(bundle->data.schema()->num_attributes());
    pred.Bind(0, e);
    auto est = *rec.EstimateFrequency(bundle->data, pred, high);
    if (est.subset_size == 0) continue;
    std::string label = edu_domain.value(e);
    if (label.size() > 34) label = label.substr(0, 31) + "...";
    std::printf("  %-35s %6.2f%%  CI [%5.2f%%, %5.2f%%]\n", label.c_str(),
                100 * est.frequency, 100 * est.ci_low, 100 * est.ci_high);
  }
  std::cout << "\nreading: the monotone education -> income gradient is "
               "fully learnable from the\nrelease, while every single "
               "personal group inside it is (0.3, 0.3)-\nreconstruction-"
               "private by construction.\n";

  // ----- the same analysis through the serving stack's client API -----
  // Publish the on-disk bundle into an in-process serving client and ask
  // the engine for the global count; the MLE estimate must agree with the
  // offline reconstruction above (both implement est = |S*| F', Lemma 2).
  client::InProcessClient cli(std::make_shared<serve::ReleaseStore>());
  auto desc = cli.Publish("adult", base);
  if (!desc.ok()) {
    std::cerr << desc.status() << "\n";
    return 1;
  }
  auto served_schema = *cli.GetSchema("adult");
  std::cout << "\n[consumer] served release 'adult' epoch " << desc->epoch
            << " with " << served_schema.attributes.size() << " attributes\n";

  client::QueryRequest req;
  req.release = "adult";
  req.queries.push_back(client::QuerySpec{{}, ">50K"});
  auto batch = *cli.Query(req);
  const double served_rate =
      batch.answers[0].estimate / double(batch.answers[0].matched_size);
  std::printf(
      "[consumer] engine-reconstructed >50K rate: %.4f (offline: %.4f)\n",
      served_rate, global.frequency);

  std::remove((base + ".csv").c_str());
  std::remove((base + ".manifest.json").c_str());
  return 0;
}
