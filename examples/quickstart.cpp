// Quickstart: the complete recpriv publish pipeline in ~80 lines.
//
//   1. build a table (public attributes + one sensitive attribute)
//   2. generalize NA values that have the same impact on SA   (paper §3.4)
//   3. audit (lambda, delta)-reconstruction privacy            (paper §4)
//   4. enforce it with the SPS algorithm                       (paper §5)
//   5. reconstruct aggregate statistics from the release       (paper §4.1)
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/example_quickstart

#include <iostream>

#include "recpriv.h"

using namespace recpriv;  // for brevity in the example

int main() {
  // --- 1. a hospital table: D(Gender, Job, Disease), Disease sensitive ---
  datagen::SimpleDatasetSpec spec;
  spec.public_attributes = {"Gender", "Job"};
  spec.sensitive_attribute = "Disease";
  spec.sa_domain = {"flu", "diabetes", "hepatitis", "hiv", "asthma", "gout"};
  // Each job has its own disease profile, identical across genders (so the
  // chi-squared merge collapses Gender). Group sizes vary: the large
  // skewed groups will violate reconstruction privacy, the small ones
  // won't.
  const std::vector<std::string> jobs = {"eng",   "law",    "doctor",
                                         "nurse", "teacher", "clerk"};
  const std::vector<std::vector<double>> profiles = {
      {55, 12, 9, 4, 12, 8},  {20, 40, 10, 6, 10, 14}, {25, 15, 20, 12, 16, 12},
      {30, 14, 12, 10, 24, 10}, {38, 18, 8, 6, 22, 8},  {26, 30, 12, 8, 12, 12},
  };
  const std::vector<size_t> sizes = {5000, 3000, 800, 700, 2500, 300};
  for (size_t j = 0; j < jobs.size(); ++j) {
    for (const char* gender : {"male", "female"}) {
      spec.groups.push_back(
          datagen::GroupSpec{{gender, jobs[j]}, sizes[j], profiles[j]});
    }
  }
  Rng rng(7);
  table::Table data = *datagen::GenerateSimple(spec, rng);
  std::cout << "raw data: " << data.num_rows() << " records\n";

  // --- 2. merge NA values with the same impact on SA ---
  core::Generalization plan = *core::ComputeGeneralization(data);
  table::Table publishable = *core::ApplyGeneralization(plan, data);
  for (size_t a = 0; a + 1 < publishable.num_columns(); ++a) {
    std::cout << "  " << data.schema()->attribute(a).name << ": "
              << plan.merges[a].domain_before << " -> "
              << plan.merges[a].domain_after << " generalized values\n";
  }

  // --- 3. audit reconstruction privacy under plain perturbation ---
  core::PrivacyParams params;
  params.lambda = 0.3;      // tolerated relative reconstruction error
  params.delta = 0.3;       // minimum tail-probability bound
  params.retention_p = 0.5; // perturbation retention probability
  params.domain_m = publishable.schema()->sa_domain_size();

  table::GroupIndex index = table::GroupIndex::Build(publishable);
  core::ViolationReport audit = core::AuditViolations(index, params);
  std::cout << "under plain uniform perturbation: " << audit.violating_groups
            << "/" << audit.num_groups << " personal groups would violate ("
            << FormatPercent(audit.RecordViolationRate())
            << " of records)\n";

  // --- 4. enforce with SPS ---
  core::SpsTableResult release = *core::SpsPerturbTable(params, publishable,
                                                        rng);
  std::cout << "SPS release: " << release.table.num_rows() << " records, "
            << release.stats.groups_sampled << " groups sampled\n";

  // --- 5. aggregate reconstruction still works ---
  // One release is one sample; the estimator is unbiased (Theorem 5), so
  // we show the single-release estimate and the mean over 20 releases.
  perturb::UniformPerturbation up{params.retention_p, params.domain_m};
  auto observed = release.table.SaHistogram();
  auto truth = publishable.SaHistogram();
  std::vector<double> mean_est(observed.size(), 0.0);
  const int releases = 20;
  for (int i = 0; i < releases; ++i) {
    auto another = *core::SpsPerturbTable(params, publishable, rng);
    auto hist = another.table.SaHistogram();
    for (size_t sa = 0; sa < hist.size(); ++sa) {
      mean_est[sa] += perturb::MleFrequency(up, hist[sa],
                                            another.table.num_rows());
    }
  }
  std::cout << "\nglobal disease distribution (true / one release / mean of "
            << releases << " releases):\n";
  for (size_t sa = 0; sa < observed.size(); ++sa) {
    double estimate = perturb::MleFrequency(up, observed[sa],
                                            release.table.num_rows());
    double actual = double(truth[sa]) / double(data.num_rows());
    std::cout << "  " << publishable.schema()->sensitive().domain.value(sa)
              << ": " << FormatPercent(actual) << " / "
              << FormatPercent(estimate) << " / "
              << FormatPercent(mean_est[sa] / releases) << "\n";
  }
  std::cout << "\npersonal reconstruction for any single group is capped at "
               "s_g trials,\nso no individual can be targeted with < "
            << FormatPercent(params.delta) << " error-bound confidence.\n";
  return 0;
}
